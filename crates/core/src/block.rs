//! Multiple transient covariates per test (§5): joint F-tests.
//!
//! §5: "This approach efficiently generalizes to the case of multiple
//! transient covariants (such as interaction terms)". Instead of one
//! column per test, each test m supplies a block `X_m` of q columns
//! (e.g. a variant and its variant×environment interaction); the null
//! `β_m = 0 ∈ ℝ^q` is tested with an F(q, N−K−q) statistic.
//!
//! The same sufficient-statistic structure applies blockwise: with
//! residualized quantities
//!
//! ```text
//! A_m = X_mᵀX_m − (QᵀX_m)ᵀ(QᵀX_m)   (q×q)
//! b_m = X_mᵀy  − (QᵀX_m)ᵀ(Qᵀy)     (q)
//! r²  = y·y − Qᵀy·Qᵀy
//! ```
//!
//! the joint estimate is `β̂_m = A_m⁻¹ b_m`, the model sum of squares is
//! `b_mᵀβ̂_m`, and `F = (b_mᵀβ̂_m / q) / ((r² − b_mᵀβ̂_m)/(N−K−q))`.
//! Everything is built from the same per-party summands as the scalar
//! scan (`X·y`, Gram blocks, `QᵀX`), so the secure aggregation carries
//! over unchanged; this module implements the plaintext evaluation.

use crate::error::CoreError;
use crate::model::PartyData;
use crate::suffstats::orthonormal_basis;
use dash_linalg::{
    cholesky_upper, dot, gemm_at_b, gemv_t, self_dot, solve_lower, solve_upper, Matrix,
};
use dash_stats::FDistribution;

/// One joint test: a named set of transient covariate columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientBlock {
    /// Label carried into reports.
    pub name: String,
    /// Column indices of X tested jointly.
    pub columns: Vec<usize>,
}

impl TransientBlock {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, columns: Vec<usize>) -> Self {
        TransientBlock {
            name: name.into(),
            columns,
        }
    }
}

/// Result of one joint block test.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTestResult {
    /// Joint effect estimates, one per block column.
    pub beta: Vec<f64>,
    /// The F statistic.
    pub f: f64,
    /// P-value against F(q, N−K−q).
    pub p: f64,
    /// Numerator degrees of freedom (block size q).
    pub df1: usize,
    /// Denominator degrees of freedom (N−K−q).
    pub df2: usize,
}

/// Tests each block of transient covariates jointly against the null
/// that all of its coefficients are zero, adjusting for `C`.
///
/// Blocks whose residualized Gram is singular (columns collinear with
/// each other or with C) yield NaN results rather than errors, matching
/// the scalar scan's degenerate-variant convention.
pub fn block_scan(
    data: &PartyData,
    blocks: &[TransientBlock],
) -> Result<Vec<BlockTestResult>, CoreError> {
    let n = data.n_samples();
    let k = data.n_covariates();
    if blocks.is_empty() {
        return Err(CoreError::BadConfig {
            what: "at least one transient block is required",
        });
    }
    for b in blocks {
        if b.columns.is_empty() {
            return Err(CoreError::BadConfig {
                what: "transient block with no columns",
            });
        }
        for &c in &b.columns {
            if c >= data.n_variants() {
                return Err(CoreError::ShapeMismatch {
                    what: "transient block column index",
                    expected: data.n_variants(),
                    got: c,
                });
            }
        }
    }
    let max_q = blocks.iter().map(|b| b.columns.len()).max().unwrap_or(0);
    if n <= k + max_q {
        return Err(CoreError::NotEnoughSamples { n, k: k + max_q });
    }

    let q_basis = orthonormal_basis(data.c())?;
    let y = data.y();
    let yy = self_dot(y);
    let qty = gemv_t(&q_basis, y)?;
    let r2 = yy - self_dot(&qty);

    let mut out = Vec::with_capacity(blocks.len());
    for block in blocks {
        let q = block.columns.len();
        // Materialize the block's columns once.
        let cols: Vec<&[f64]> = block.columns.iter().map(|&c| data.x().col(c)).collect();
        let xb = Matrix::from_cols(&cols)?;
        // Residualized Gram and cross-products.
        let qtx = gemm_at_b(&q_basis, &xb)?; // K×q
        let mut a = gemm_at_b(&xb, &xb)?; // q×q
        for i in 0..q {
            for j in 0..q {
                let v = a.get(i, j) - dot(qtx.col(i), qtx.col(j));
                a.set(i, j, v);
            }
        }
        let mut b_vec = Vec::with_capacity(q);
        for (i, col) in cols.iter().enumerate().take(q) {
            b_vec.push(dot(col, y) - dot(qtx.col(i), &qty));
        }
        // Solve A β = b via Cholesky; singular ⇒ degenerate block.
        let result = match cholesky_upper(&a) {
            Ok(u) => {
                let z = solve_lower(&u.transpose(), &b_vec)?;
                let beta = solve_upper(&u, &z)?;
                let model_ss: f64 = b_vec.iter().zip(&beta).map(|(bi, be)| bi * be).sum();
                let df2 = n - k - q;
                let resid_ss = (r2 - model_ss).max(0.0);
                let f_stat = if resid_ss > 0.0 {
                    (model_ss / q as f64) / (resid_ss / df2 as f64)
                } else {
                    f64::INFINITY
                };
                let p = if f_stat.is_finite() {
                    FDistribution::new(q as f64, df2 as f64)?.sf(f_stat)
                } else {
                    0.0
                };
                BlockTestResult {
                    beta,
                    f: f_stat,
                    p,
                    df1: q,
                    df2,
                }
            }
            Err(_) => BlockTestResult {
                beta: vec![f64::NAN; q],
                f: f64::NAN,
                p: f64::NAN,
                df1: q,
                df2: n - k - q,
            },
        };
        out.push(result);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::associate;

    fn gen_data(n: usize, m: usize, k: usize, seed: u64) -> PartyData {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(77);
        let mut next = move || {
            let mut acc = 0.0;
            for _ in 0..4 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (s >> 11) as f64 / (1u64 << 53) as f64;
            }
            (acc - 2.0) * (3.0f64).sqrt()
        };
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = Matrix::from_fn(n, m, |_, _| next());
        let c = Matrix::from_fn(n, k, |_, _| next());
        PartyData::new(y, x, c).unwrap()
    }

    #[test]
    fn single_column_block_matches_t_squared() {
        // F(1, d) of a one-column block equals t² of the scalar scan,
        // with identical p-values.
        let data = gen_data(60, 4, 2, 1);
        let scalar = associate(&data).unwrap();
        let blocks: Vec<TransientBlock> = (0..4)
            .map(|j| TransientBlock::new(format!("v{j}"), vec![j]))
            .collect();
        let joint = block_scan(&data, &blocks).unwrap();
        for (j, jb) in joint.iter().enumerate().take(4) {
            assert!(
                (jb.f - scalar.t[j] * scalar.t[j]).abs() < 1e-8 * (1.0 + jb.f.abs()),
                "j={j}: F {} vs t² {}",
                jb.f,
                scalar.t[j] * scalar.t[j]
            );
            assert!((joint[j].p - scalar.p[j]).abs() < 1e-9, "j={j}");
            assert!((joint[j].beta[0] - scalar.beta[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn joint_signal_detected() {
        // Signal split between two columns: jointly strong.
        let mut data = gen_data(300, 5, 1, 3);
        let x0: Vec<f64> = data.x().col(0).to_vec();
        let x1: Vec<f64> = data.x().col(1).to_vec();
        let y: Vec<f64> = data
            .y()
            .iter()
            .enumerate()
            .map(|(i, e)| 0.3 * x0[i] + 0.3 * x1[i] + e)
            .collect();
        data = PartyData::new(y, data.x().clone(), data.c().clone()).unwrap();
        let res = block_scan(
            &data,
            &[
                TransientBlock::new("pair", vec![0, 1]),
                TransientBlock::new("null", vec![2, 3]),
            ],
        )
        .unwrap();
        assert!(res[0].p < 1e-8, "joint p = {}", res[0].p);
        assert!(res[1].p > 1e-4, "null p = {}", res[1].p);
        assert_eq!(res[0].df1, 2);
        assert_eq!(res[0].df2, 300 - 1 - 2);
    }

    #[test]
    fn collinear_block_is_nan() {
        let n = 30;
        let base = gen_data(n, 1, 1, 5);
        // Duplicate a column within a block.
        let col: Vec<f64> = base.x().col(0).to_vec();
        let x = Matrix::from_cols(&[&col, &col]).unwrap();
        let data = PartyData::new(base.y().to_vec(), x, base.c().clone()).unwrap();
        let res = block_scan(&data, &[TransientBlock::new("dup", vec![0, 1])]).unwrap();
        assert!(res[0].f.is_nan());
        assert!(res[0].beta.iter().all(|b| b.is_nan()));
    }

    #[test]
    fn validation_errors() {
        let data = gen_data(20, 3, 1, 7);
        assert!(block_scan(&data, &[]).is_err());
        assert!(block_scan(&data, &[TransientBlock::new("e", vec![])]).is_err());
        assert!(block_scan(&data, &[TransientBlock::new("oob", vec![5])]).is_err());
        // q too large for N (needs N > K + q = 4).
        let tiny = gen_data(4, 3, 1, 8);
        assert!(block_scan(&tiny, &[TransientBlock::new("big", vec![0, 1, 2])]).is_err());
    }

    #[test]
    fn perfect_fit_gives_infinite_f() {
        // y exactly in the span of the block: residual 0 → F = ∞, p = 0.
        let n = 20;
        let base = gen_data(n, 2, 0, 9);
        let x0: Vec<f64> = base.x().col(0).to_vec();
        let y: Vec<f64> = x0.iter().map(|v| 2.0 * v).collect();
        let data = PartyData::new(y, base.x().clone(), base.c().clone()).unwrap();
        let res = block_scan(&data, &[TransientBlock::new("exact", vec![0])]).unwrap();
        assert!(res[0].f.is_infinite() || res[0].f > 1e10);
        assert!(res[0].p < 1e-12);
    }
}
