//! Case/control scans: logistic-regression score tests.
//!
//! The paper treats quantitative phenotypes; real GWAS are often binary
//! (disease status). The standard fast method — fit the *null* logistic
//! model `y ~ C` once, then score-test each variant — has exactly the
//! additive-summand structure DASH exploits:
//!
//! - the null fit's IRLS iterations need only the K×K and K aggregates
//!   `CᵀWC`, `Cᵀ(y−μ)` (W = diag(μ(1−μ))), so each iteration is one
//!   O(K²) secure sum;
//! - the per-variant score statistic
//!   `U_m = X_mᵀ(y−μ)`,
//!   `V_m = X_mᵀWX_m − (X_mᵀWC)(CᵀWC)⁻¹(CᵀWX_m)`
//!   needs the additive aggregates `Xᵀ(y−μ)` (M), `diag(XᵀWX)` (M) and
//!   `XᵀWC` (M×K) — one O(M·K) secure sum, the same footprint as the
//!   linear scan.
//!
//! Under the null, `U²/V ~ χ²(1)`; the signed `z = U/√V` plays the role
//! of the linear scan's t.

use crate::error::CoreError;
use crate::model::{validate_parties, PartyData};
use crate::secure::{NetworkReport, SecureScanConfig};
use dash_linalg::{cholesky_upper, dot, solve_lower, solve_upper, Matrix};
use dash_mpc::net::Network;
use dash_mpc::protocol::masked::{masked_sum_f64, masked_sum_ring};
use dash_mpc::{PartyCtx, R64};
use dash_stats::{ChiSquared, StatsError};

/// IRLS iteration cap for the null model.
const MAX_IRLS_ITER: usize = 30;
/// Convergence threshold on the Newton step's max-norm.
const IRLS_TOL: f64 = 1e-10;
/// Relative threshold below which the score variance counts as zero.
const DEGENERATE_RTOL: f64 = 1e-9;

/// The fitted null model `y ~ C` (shared across parties: β is a function
/// of aggregates only).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticNull {
    /// Coefficients of the permanent covariates.
    pub beta: Vec<f64>,
    /// IRLS iterations used.
    pub iterations: usize,
}

/// Per-variant score-test results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreScanResult {
    /// Score statistics `U_m = X_mᵀ(y−μ)`.
    pub u: Vec<f64>,
    /// Score variances `V_m`.
    pub v: Vec<f64>,
    /// Signed z-statistics `U/√V`.
    pub z: Vec<f64>,
    /// Two-sided p-values from χ²(1) on `z²`.
    pub p: Vec<f64>,
    /// Variants with (numerically) zero score variance.
    pub n_degenerate: usize,
}

impl ScoreScanResult {
    /// Number of variants.
    pub fn len(&self) -> usize {
        self.u.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.u.is_empty()
    }

    /// Indices with p below `alpha`.
    pub fn hits(&self, alpha: f64) -> Vec<usize> {
        self.p
            .iter()
            .enumerate()
            .filter(|(_, &p)| p < alpha)
            .map(|(i, _)| i)
            .collect()
    }

    /// Largest relative z difference vs another result (NaNs must match).
    pub fn max_rel_diff(&self, other: &ScoreScanResult) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        let mut worst = 0.0f64;
        for (a, b) in self.z.iter().zip(&other.z) {
            if a.is_nan() != b.is_nan() {
                return Some(f64::INFINITY);
            }
            if !a.is_nan() {
                worst = worst.max((a - b).abs() / (1.0 + a.abs().max(b.abs())));
            }
        }
        Some(worst)
    }
}

/// Checks that a response is strictly 0/1.
fn validate_binary(y: &[f64]) -> Result<(), CoreError> {
    if y.iter().any(|&v| v != 0.0 && v != 1.0) {
        return Err(CoreError::BadConfig {
            what: "logistic scan requires a 0/1 response",
        });
    }
    Ok(())
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One party's IRLS summands at the current β: `(CᵀWC, Cᵀ(y−μ))`.
fn irls_summands(y: &[f64], c: &Matrix, beta: &[f64]) -> (Matrix, Vec<f64>) {
    let n = y.len();
    let k = c.cols();
    let mut ctwc = Matrix::zeros(k, k);
    let mut score = vec![0.0; k];
    for (i, &yi) in y.iter().enumerate().take(n) {
        let mut eta = 0.0;
        for (j, &bj) in beta.iter().enumerate().take(k) {
            eta += c.get(i, j) * bj;
        }
        let mu = sigmoid(eta);
        let w = mu * (1.0 - mu);
        let r = yi - mu;
        for (j, sj) in score.iter_mut().enumerate().take(k) {
            let cij = c.get(i, j);
            *sj += cij * r;
            for l in j..k {
                let v = ctwc.get(j, l) + w * cij * c.get(i, l);
                ctwc.set(j, l, v);
                if l != j {
                    ctwc.set(l, j, v);
                }
            }
        }
    }
    (ctwc, score)
}

/// Solves `CᵀWC · step = score` via Cholesky.
fn newton_step(ctwc: &Matrix, score: &[f64]) -> Result<Vec<f64>, CoreError> {
    let u = cholesky_upper(ctwc)?;
    let z = solve_lower(&u.transpose(), score)?;
    Ok(solve_upper(&u, &z)?)
}

/// Fits the null logistic model `y ~ C` by IRLS on pooled data.
///
/// `C` should contain an intercept column (or centered data); K = 0 is
/// allowed and yields the empty model (μ = ½ everywhere).
pub fn fit_null_logistic(y: &[f64], c: &Matrix) -> Result<LogisticNull, CoreError> {
    validate_binary(y)?;
    if c.rows() != y.len() {
        return Err(CoreError::ShapeMismatch {
            what: "logistic null model rows",
            expected: y.len(),
            got: c.rows(),
        });
    }
    let k = c.cols();
    let mut beta = vec![0.0; k];
    if k == 0 {
        return Ok(LogisticNull {
            beta,
            iterations: 0,
        });
    }
    for it in 1..=MAX_IRLS_ITER {
        let (ctwc, score) = irls_summands(y, c, &beta);
        let step = newton_step(&ctwc, &score)?;
        let max_step = step.iter().fold(0.0f64, |a, &s| a.max(s.abs()));
        for (b, s) in beta.iter_mut().zip(&step) {
            *b += s;
        }
        if max_step < IRLS_TOL {
            return Ok(LogisticNull {
                beta,
                iterations: it,
            });
        }
    }
    Err(CoreError::Stats(StatsError::NoConvergence {
        what: "logistic IRLS (separation or extreme covariates?)",
        value: MAX_IRLS_ITER as f64,
    }))
}

/// The additive per-variant score summands at a fitted null model.
struct ScoreSummands {
    /// `X_mᵀ(y−μ)` per variant.
    xr: Vec<f64>,
    /// `X_mᵀWX_m` per variant.
    xwx: Vec<f64>,
    /// `XᵀWC`, K×M (column m = `CᵀW X_m`).
    xwc: Matrix,
    /// `CᵀWC` (for the projection term).
    ctwc: Matrix,
}

fn score_summands(y: &[f64], x: &Matrix, c: &Matrix, beta: &[f64]) -> ScoreSummands {
    let n = y.len();
    let m = x.cols();
    let k = c.cols();
    // Per-sample weights and residuals.
    let mut w = vec![0.0; n];
    let mut r = vec![0.0; n];
    for i in 0..n {
        let mut eta = 0.0;
        for (j, &bj) in beta.iter().enumerate().take(k) {
            eta += c.get(i, j) * bj;
        }
        let mu = sigmoid(eta);
        w[i] = mu * (1.0 - mu);
        r[i] = y[i] - mu;
    }
    let mut xr = Vec::with_capacity(m);
    let mut xwx = Vec::with_capacity(m);
    let mut xwc = Matrix::zeros(k, m);
    // Precompute W-scaled covariates once: (WC)ᵢⱼ = wᵢ·Cᵢⱼ.
    let mut wc = c.clone();
    for j in 0..k {
        for (v, wi) in wc.col_mut(j).iter_mut().zip(&w) {
            *v *= wi;
        }
    }
    for mi in 0..m {
        let col = x.col(mi);
        xr.push(dot(col, &r));
        let mut s = 0.0;
        for (xi, wi) in col.iter().zip(&w) {
            s += xi * xi * wi;
        }
        xwx.push(s);
        let dst = xwc.col_mut(mi);
        for (j, d) in dst.iter_mut().enumerate().take(k) {
            *d = dot(wc.col(j), col);
        }
    }
    let (ctwc, _) = irls_summands(y, c, beta);
    ScoreSummands { xr, xwx, xwc, ctwc }
}

/// Finalizes opened aggregates into score statistics.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(a > b)` deliberately catches NaN
fn finalize_scores(
    xr: &[f64],
    xwx: &[f64],
    xwc: &Matrix,
    ctwc: &Matrix,
) -> Result<ScoreScanResult, CoreError> {
    let m = xr.len();
    let k = ctwc.rows();
    let chi1 = ChiSquared::new(1.0)?;
    let chol = if k > 0 {
        Some(cholesky_upper(ctwc)?)
    } else {
        None
    };
    let mut u_out = Vec::with_capacity(m);
    let mut v_out = Vec::with_capacity(m);
    let mut z_out = Vec::with_capacity(m);
    let mut p_out = Vec::with_capacity(m);
    let mut n_degenerate = 0;
    for mi in 0..m {
        let u_stat = xr[mi];
        let proj = match &chol {
            Some(uch) => {
                let b = xwc.col(mi);
                let z = solve_lower(&uch.transpose(), b)?;
                dot(&z, &z)
            }
            None => 0.0,
        };
        let v_stat = xwx[mi] - proj;
        if !(v_stat > DEGENERATE_RTOL * xwx[mi]) {
            n_degenerate += 1;
            u_out.push(u_stat);
            v_out.push(f64::NAN);
            z_out.push(f64::NAN);
            p_out.push(f64::NAN);
            continue;
        }
        let z = u_stat / v_stat.sqrt();
        u_out.push(u_stat);
        v_out.push(v_stat);
        z_out.push(z);
        p_out.push(chi1.sf(z * z));
    }
    Ok(ScoreScanResult {
        u: u_out,
        v: v_out,
        z: z_out,
        p: p_out,
        n_degenerate,
    })
}

/// Plaintext (pooled) logistic score scan.
pub fn logistic_score_scan(data: &PartyData) -> Result<ScoreScanResult, CoreError> {
    let null = fit_null_logistic(data.y(), data.c())?;
    let s = score_summands(data.y(), data.x(), data.c(), &null.beta);
    finalize_scores(&s.xr, &s.xwx, &s.xwc, &s.ctwc)
}

/// Secure multi-party logistic score scan.
///
/// Communication: one O(K²) masked sum per IRLS iteration (the iteration
/// count is data-dependent but identical at every party, since the stop
/// rule reads only aggregates), plus one O(M·K) masked sum for the score
/// layer. Disclosed: the aggregate IRLS statistics per iteration and the
/// aggregate score summands — never per-party values.
pub fn secure_logistic_scan(
    parties: &[PartyData],
    cfg: &SecureScanConfig,
) -> Result<(ScoreScanResult, NetworkReport), CoreError> {
    let (_n, m, k) = validate_parties(parties)?;
    for p in parties {
        validate_binary(p.y())?;
    }
    let codec = cfg.ring_codec()?;
    let p_count = parties.len();

    let (results, stats, _audit) = Network::run_parties_detailed(p_count, cfg.seed, |ctx| {
        party_logistic(ctx, &parties[ctx.id()], m, k, &codec)
    });
    let mut iter = results.into_iter();
    let first = iter.next().ok_or(CoreError::NoParties)??;
    for r in iter {
        r?;
    }
    let report = NetworkReport::from_stats(&stats);
    Ok((first, report))
}

fn party_logistic(
    ctx: &mut PartyCtx,
    data: &PartyData,
    m: usize,
    k: usize,
    codec: &dash_mpc::FixedPointCodec,
) -> Result<ScoreScanResult, CoreError> {
    // Pooled N (reported in the audit log; also sanity-checks liveness).
    let _n_total =
        masked_sum_ring(ctx, &[R64(data.n_samples() as u64)], "total sample count N")?[0].0;

    // Null-model IRLS on aggregates.
    let mut beta = vec![0.0; k];
    let mut iterations = 0;
    if k > 0 {
        loop {
            iterations += 1;
            let (ctwc_k, score_k) = irls_summands(data.y(), data.c(), &beta);
            let mut payload = ctwc_k.as_slice().to_vec();
            payload.extend_from_slice(&score_k);
            let total = masked_sum_f64(ctx, codec, &payload, "IRLS aggregates CᵀWC, Cᵀ(y−μ)")?;
            let ctwc = Matrix::from_column_major(k, k, total[..k * k].to_vec())?;
            let score = &total[k * k..];
            let step = newton_step(&ctwc, score)?;
            let max_step = step.iter().fold(0.0f64, |a, &s| a.max(s.abs()));
            for (b, s) in beta.iter_mut().zip(&step) {
                *b += s;
            }
            if max_step < IRLS_TOL {
                break;
            }
            if iterations >= MAX_IRLS_ITER {
                return Err(CoreError::Stats(StatsError::NoConvergence {
                    what: "secure logistic IRLS",
                    value: MAX_IRLS_ITER as f64,
                }));
            }
        }
    }

    // Score layer: one masked sum of [Xᵀ(y−μ), diag(XᵀWX), XᵀWC, CᵀWC].
    let s = score_summands(data.y(), data.x(), data.c(), &beta);
    let mut payload = Vec::with_capacity(2 * m + k * m + k * k);
    payload.extend_from_slice(&s.xr);
    payload.extend_from_slice(&s.xwx);
    payload.extend_from_slice(s.xwc.as_slice());
    payload.extend_from_slice(s.ctwc.as_slice());
    let total = masked_sum_f64(
        ctx,
        codec,
        &payload,
        "aggregate score statistics Xᵀ(y−μ), diag(XᵀWX), XᵀWC, CᵀWC",
    )?;
    let xr = &total[..m];
    let xwx = &total[m..2 * m];
    let xwc = Matrix::from_column_major(k, m, total[2 * m..2 * m + k * m].to_vec())?;
    let ctwc = Matrix::from_column_major(k, k, total[2 * m + k * m..].to_vec())?;
    finalize_scores(xr, xwx, &xwc, &ctwc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pool_parties;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Binary-response dataset: logit(μ) = γ·C₀ + planted variant
    /// effects; C includes an intercept column.
    fn gen_binary(n: usize, m: usize, effects: &[(usize, f64)], seed: u64) -> PartyData {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, m, |_, _| {
            // Standardized-ish genotype stand-in.
            rng.gen_range(-1.0f64..1.0)
        });
        let cov: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        let ones = vec![1.0; n];
        let c = Matrix::from_cols(&[&ones, &cov]).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let mut eta = -0.2 + 0.5 * cov[i];
                for &(j, b) in effects {
                    eta += b * x.get(i, j);
                }
                (rng.gen::<f64>() < sigmoid(eta)) as u64 as f64
            })
            .collect();
        PartyData::new(y, x, c).unwrap()
    }

    #[test]
    fn non_binary_response_rejected() {
        let data = gen_binary(20, 2, &[], 1);
        let y_bad: Vec<f64> = data.y().iter().map(|v| v + 0.5).collect();
        let bad = PartyData::new(y_bad, data.x().clone(), data.c().clone()).unwrap();
        assert!(matches!(
            logistic_score_scan(&bad),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    fn null_fit_matches_prevalence_for_intercept_only() {
        // Intercept-only model: μ̂ = case fraction, β = logit(μ̂).
        let data = gen_binary(400, 1, &[], 2);
        let ones = Matrix::from_cols(&[&vec![1.0; 400]]).unwrap();
        let null = fit_null_logistic(data.y(), &ones).unwrap();
        let prev: f64 = data.y().iter().sum::<f64>() / 400.0;
        let expect = (prev / (1.0 - prev)).ln();
        assert!(
            (null.beta[0] - expect).abs() < 1e-8,
            "{} vs {expect}",
            null.beta[0]
        );
        assert!(null.iterations >= 2);
    }

    #[test]
    fn calibrated_under_null() {
        let data = gen_binary(500, 200, &[], 3);
        let res = logistic_score_scan(&data).unwrap();
        let frac = res.hits(0.05).len() as f64 / 200.0;
        assert!((0.0..0.12).contains(&frac), "5% bucket: {frac}");
        let lambda = dash_gwas_lambda(&res.p);
        assert!((0.75..1.25).contains(&lambda), "lambda {lambda}");
    }

    /// Local copy of lambda_GC to avoid a dev-dependency cycle with
    /// dash-gwas.
    fn dash_gwas_lambda(p: &[f64]) -> f64 {
        let chi = ChiSquared::new(1.0).unwrap();
        let mut stats: Vec<f64> = p
            .iter()
            .filter(|v| v.is_finite() && **v > 0.0)
            .map(|&v| chi.quantile(1.0 - v).unwrap())
            .collect();
        stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        stats[stats.len() / 2] / chi.quantile(0.5).unwrap()
    }

    #[test]
    fn planted_effect_detected_with_correct_sign() {
        let data = gen_binary(800, 10, &[(4, 0.9)], 4);
        let res = logistic_score_scan(&data).unwrap();
        assert!(res.p[4] < 1e-6, "p[4] = {}", res.p[4]);
        assert!(res.z[4] > 0.0, "sign should match the planted +0.9");
        let best = res
            .p
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 4);
    }

    #[test]
    fn degenerate_variant_flagged() {
        let data = gen_binary(60, 2, &[], 5);
        // Replace variant 1 with all zeros.
        let mut x = data.x().clone();
        for v in x.col_mut(1) {
            *v = 0.0;
        }
        let d = PartyData::new(data.y().to_vec(), x, data.c().clone()).unwrap();
        let res = logistic_score_scan(&d).unwrap();
        assert_eq!(res.n_degenerate, 1);
        assert!(res.z[1].is_nan());
        assert!(res.z[0].is_finite());
    }

    #[test]
    fn secure_equals_pooled_plaintext() {
        let pooled_data = gen_binary(300, 12, &[(0, 0.8)], 3);
        // Split into three parties.
        let cuts = [0usize, 90, 200, 300];
        let parties: Vec<PartyData> = cuts
            .windows(2)
            .map(|w| {
                PartyData::new(
                    pooled_data.y()[w[0]..w[1]].to_vec(),
                    pooled_data.x().row_block(w[0], w[1]),
                    pooled_data.c().row_block(w[0], w[1]),
                )
                .unwrap()
            })
            .collect();
        let reference = logistic_score_scan(&pool_parties(&parties).unwrap()).unwrap();
        let (secure, report) =
            secure_logistic_scan(&parties, &SecureScanConfig::paper_default(6)).unwrap();
        let d = secure.max_rel_diff(&reference).unwrap();
        assert!(d < 1e-6, "secure vs plaintext z diff: {d}");
        assert!(report.total_bytes > 0);
        // The planted hit survives end to end.
        assert!(secure.p[0] < 1e-4);
    }

    #[test]
    fn secure_communication_independent_of_n() {
        // Duplicating every row doubles all aggregates uniformly, so the
        // IRLS trajectory — and hence the message count — is identical;
        // total bytes must not move at 4x the sample count.
        let base = gen_binary(80, 6, &[], 7);
        let duplicate = |times: usize| -> Vec<PartyData> {
            let n = base.n_samples();
            let mut y = Vec::with_capacity(n * times);
            let mut x = Matrix::zeros(n * times, 6);
            let mut c = Matrix::zeros(n * times, 2);
            for t in 0..times {
                for i in 0..n {
                    y.push(base.y()[i]);
                    for j in 0..6 {
                        x.set(t * n + i, j, base.x().get(i, j));
                    }
                    for j in 0..2 {
                        c.set(t * n + i, j, base.c().get(i, j));
                    }
                }
            }
            let full = PartyData::new(y, x, c).unwrap();
            let half = full.n_samples() / 2;
            vec![
                PartyData::new(
                    full.y()[..half].to_vec(),
                    full.x().row_block(0, half),
                    full.c().row_block(0, half),
                )
                .unwrap(),
                PartyData::new(
                    full.y()[half..].to_vec(),
                    full.x().row_block(half, full.n_samples()),
                    full.c().row_block(half, full.n_samples()),
                )
                .unwrap(),
            ]
        };
        let cfg = SecureScanConfig::paper_default(9);
        let (_r1, rep1) = secure_logistic_scan(&duplicate(1), &cfg).unwrap();
        let (_r2, rep2) = secure_logistic_scan(&duplicate(4), &cfg).unwrap();
        // Fixed-point rounding near the IRLS stop rule may shift the
        // iteration count by one; allow up to two iterations' worth of
        // K-sized messages, but nothing that scales with N (one extra
        // sample would add ≥ 8 bytes·M if traffic leaked rows).
        let per_iteration = 2 * (12 + 8 * (2 * 2 + 2)) as u64; // 2 msgs of k²+k f64s
        let diff = rep1.total_bytes.abs_diff(rep2.total_bytes);
        assert!(
            diff <= 2 * per_iteration,
            "traffic grew with N: {} vs {} (diff {diff})",
            rep1.total_bytes,
            rep2.total_bytes
        );
    }

    #[test]
    fn score_and_wald_agree_on_moderate_signal() {
        // The score z and a full-fit Wald z are asymptotically equivalent;
        // check rank agreement on a moderate effect.
        let data = gen_binary(600, 5, &[(2, 0.5)], 10);
        let res = logistic_score_scan(&data).unwrap();
        // Full logistic fit for variant 2 via IRLS on [X_2 | C].
        let cols: Vec<&[f64]> = vec![data.x().col(2), data.c().col(0), data.c().col(1)];
        let design = Matrix::from_cols(&cols).unwrap();
        let full = fit_null_logistic(data.y(), &design).unwrap();
        // Wald z = β̂ / se(β̂) with se from the information matrix.
        let (info, _) = irls_summands(data.y(), &design, &full.beta);
        let u = cholesky_upper(&info).unwrap();
        let inv_col = {
            let mut e0 = vec![0.0; 3];
            e0[0] = 1.0;
            let z = solve_lower(&u.transpose(), &e0).unwrap();
            solve_upper(&u, &z).unwrap()
        };
        let wald_z = full.beta[0] / inv_col[0].sqrt();
        assert!(
            (res.z[2] - wald_z).abs() < 0.15 * (1.0 + wald_z.abs()),
            "score {} vs wald {wald_z}",
            res.z[2]
        );
    }
}
