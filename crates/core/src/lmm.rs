//! Linear mixed models via a shared kinship eigendecomposition (§5).
//!
//! The paper: "If an (eigendecomposition of) the kinship kernel can be
//! shared, then the approach extends to linear mixed models as well."
//! Model:
//!
//! ```text
//! y ~ Normal(X_m β + C γ, σ²_g · K_kin + σ²_e · I)
//! ```
//!
//! With the shared eigendecomposition `K_kin = U S Uᵀ`, rotating by `Uᵀ`
//! diagonalizes the covariance: `Uᵀy` has independent components with
//! variances `σ²_e (δ s_i + 1)`, `δ = σ²_g/σ²_e`. Scaling row i by
//! `1/√(δ s_i + 1)` then reduces the mixed model to an ordinary
//! association scan on the rotated, reweighted data — so the whole DASH
//! machinery (including the secure path) applies unchanged downstream.

use crate::error::CoreError;
use crate::model::{PartyData, ScanResult};
use crate::scan::associate;
use dash_linalg::{gemm_at_b, gemv_t, self_dot, Matrix};

/// A shared eigendecomposition of the kinship kernel.
#[derive(Debug, Clone)]
pub struct KinshipEigen {
    /// Orthonormal eigenvectors, N×N (columns).
    pub u: Matrix,
    /// Eigenvalues, length N, non-negative.
    pub s: Vec<f64>,
}

impl KinshipEigen {
    /// Validates shapes and eigenvalue signs.
    pub fn new(u: Matrix, s: Vec<f64>) -> Result<Self, CoreError> {
        if u.rows() != u.cols() {
            return Err(CoreError::ShapeMismatch {
                what: "kinship eigenvector matrix must be square",
                expected: u.rows(),
                got: u.cols(),
            });
        }
        if s.len() != u.rows() {
            return Err(CoreError::ShapeMismatch {
                what: "kinship eigenvalue count",
                expected: u.rows(),
                got: s.len(),
            });
        }
        if s.iter().any(|v| !v.is_finite() || *v < -1e-9) {
            return Err(CoreError::BadConfig {
                what: "kinship eigenvalues must be finite and non-negative",
            });
        }
        Ok(KinshipEigen { u, s })
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.s.len()
    }
}

/// Rotates data by `Uᵀ` and scales row i by `1/√(δ s_i + 1)`, returning a
/// dataset on which the *ordinary* scan is the mixed-model scan.
pub fn rotate_and_whiten(
    data: &PartyData,
    kin: &KinshipEigen,
    delta: f64,
) -> Result<PartyData, CoreError> {
    let n = data.n_samples();
    if kin.n() != n {
        return Err(CoreError::ShapeMismatch {
            what: "kinship dimension vs samples",
            expected: n,
            got: kin.n(),
        });
    }
    if !(delta >= 0.0 && delta.is_finite()) {
        return Err(CoreError::BadConfig {
            what: "delta must be finite and non-negative",
        });
    }
    let w: Vec<f64> = kin
        .s
        .iter()
        .map(|&si| (delta * si + 1.0).sqrt().recip())
        .collect();
    // Uᵀ y, Uᵀ X, Uᵀ C, then row scaling.
    let mut y_rot = gemv_t(&kin.u, data.y())?;
    for (v, wi) in y_rot.iter_mut().zip(&w) {
        *v *= wi;
    }
    let mut x_rot = gemm_at_b(&kin.u, data.x())?;
    let mut c_rot = gemm_at_b(&kin.u, data.c())?;
    for j in 0..x_rot.cols() {
        for (v, wi) in x_rot.col_mut(j).iter_mut().zip(&w) {
            *v *= wi;
        }
    }
    for j in 0..c_rot.cols() {
        for (v, wi) in c_rot.col_mut(j).iter_mut().zip(&w) {
            *v *= wi;
        }
    }
    PartyData::new(y_rot, x_rot, c_rot)
}

/// Mixed-model association scan at a fixed variance ratio `δ`.
pub fn lmm_scan(data: &PartyData, kin: &KinshipEigen, delta: f64) -> Result<ScanResult, CoreError> {
    associate(&rotate_and_whiten(data, kin, delta)?)
}

/// Estimates `δ = σ²_g/σ²_e` on the null model (`y ~ C` only) by profile
/// maximum likelihood over a log-spaced grid, the standard EMMA-style
/// first stage. Returns the maximizing δ.
pub fn estimate_delta(
    data: &PartyData,
    kin: &KinshipEigen,
    grid: &[f64],
) -> Result<f64, CoreError> {
    if grid.is_empty() {
        return Err(CoreError::BadConfig {
            what: "delta grid must be non-empty",
        });
    }
    let n = data.n_samples() as f64;
    let mut best = (f64::NEG_INFINITY, grid[0]);
    for &delta in grid {
        if !(delta >= 0.0 && delta.is_finite()) {
            return Err(CoreError::BadConfig {
                what: "delta grid values must be finite and non-negative",
            });
        }
        let rotated = rotate_and_whiten(data, kin, delta)?;
        // Null-model residual sum of squares after projecting y on C.
        let q = crate::suffstats::orthonormal_basis(rotated.c())?;
        let qty = gemv_t(&q, rotated.y())?;
        let rss = (self_dot(rotated.y()) - self_dot(&qty)).max(f64::MIN_POSITIVE);
        // Profile log-likelihood (dropping constants):
        //   −½ [ n ln(rss/n) + Σ ln(δ sᵢ + 1) ]
        let logdet: f64 = kin.s.iter().map(|&si| (delta * si + 1.0).ln()).sum();
        let ll = -0.5 * (n * (rss / n).ln() + logdet);
        if ll > best.0 {
            best = (ll, delta);
        }
    }
    Ok(best.1)
}

/// A convenient default grid: log-spaced from 10⁻³ to 10³ plus zero.
pub fn default_delta_grid() -> Vec<f64> {
    let mut grid = vec![0.0];
    for i in 0..=30 {
        grid.push(10f64.powf(-3.0 + i as f64 * 0.2));
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_linalg::qr_thin;

    /// Random orthonormal U via QR of a random square matrix.
    fn random_kinship(n: usize, seed: u64, scale: f64) -> KinshipEigen {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let u = qr_thin(&a).unwrap().q;
        let evals: Vec<f64> = (0..n).map(|i| scale * (i as f64) / n as f64).collect();
        KinshipEigen::new(u, evals).unwrap()
    }

    fn gen_data(n: usize, m: usize, k: usize, seed: u64) -> PartyData {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(31);
        let mut next = move || {
            let mut acc = 0.0;
            for _ in 0..4 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc += (s >> 11) as f64 / (1u64 << 53) as f64;
            }
            (acc - 2.0) * (3.0f64).sqrt()
        };
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = Matrix::from_fn(n, m, |_, _| next());
        let c = Matrix::from_fn(n, k, |_, _| next());
        PartyData::new(y, x, c).unwrap()
    }

    #[test]
    fn construction_validates() {
        let u = Matrix::identity(3);
        assert!(KinshipEigen::new(u.clone(), vec![1.0, 2.0]).is_err());
        assert!(KinshipEigen::new(Matrix::zeros(3, 2), vec![0.0; 3]).is_err());
        assert!(KinshipEigen::new(u.clone(), vec![1.0, -5.0, 0.0]).is_err());
        assert!(KinshipEigen::new(u, vec![1.0, 0.5, 0.0]).is_ok());
    }

    #[test]
    fn delta_zero_identity_kinship_is_plain_scan() {
        let data = gen_data(30, 4, 2, 1);
        let kin = KinshipEigen::new(Matrix::identity(30), vec![1.0; 30]).unwrap();
        let lmm = lmm_scan(&data, &kin, 0.0).unwrap();
        let plain = associate(&data).unwrap();
        let d = lmm.max_rel_diff(&plain).unwrap();
        assert!(d < 1e-10, "diff {d}");
    }

    #[test]
    fn rotation_by_orthonormal_u_preserves_plain_scan_at_delta_zero() {
        // At δ = 0 the weights are 1 and rotation by any orthonormal U
        // leaves all inner products unchanged.
        let data = gen_data(25, 3, 1, 2);
        let kin = random_kinship(25, 3, 2.0);
        let lmm = lmm_scan(&data, &kin, 0.0).unwrap();
        let plain = associate(&data).unwrap();
        let d = lmm.max_rel_diff(&plain).unwrap();
        assert!(d < 1e-8, "diff {d}");
    }

    #[test]
    fn whitening_changes_results_when_delta_positive() {
        let data = gen_data(25, 3, 1, 4);
        let kin = random_kinship(25, 5, 3.0);
        let lmm = lmm_scan(&data, &kin, 2.0).unwrap();
        let plain = associate(&data).unwrap();
        assert!(lmm.max_rel_diff(&plain).unwrap() > 1e-4);
    }

    #[test]
    fn estimate_delta_recovers_confounded_structure() {
        // Build y with a strong genetic (kinship-aligned) component: the
        // estimated delta should be clearly positive. Then build
        // independent noise: delta should be near zero.
        let n = 60;
        let kin = random_kinship(n, 7, 4.0);
        let base = gen_data(n, 2, 1, 8);
        // Genetic effect: g = U sqrt(S) z for standard normal z.
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let z: Vec<f64> = (0..n).map(|_| next() * 1.7).collect();
        let mut g = vec![0.0; n];
        for (j, &zj) in z.iter().enumerate().take(n) {
            let coef = kin.s[j].sqrt() * zj;
            for (gi, ui) in g.iter_mut().zip(kin.u.col(j)) {
                *gi += coef * ui;
            }
        }
        let y_gen: Vec<f64> = base
            .y()
            .iter()
            .zip(&g)
            .map(|(e, gi)| 3.0 * gi + e)
            .collect();
        let data_gen = PartyData::new(y_gen, base.x().clone(), base.c().clone()).unwrap();
        let grid = default_delta_grid();
        let delta_gen = estimate_delta(&data_gen, &kin, &grid).unwrap();
        let delta_null = estimate_delta(&base, &kin, &grid).unwrap();
        assert!(delta_gen > 0.5, "delta_gen = {delta_gen}");
        assert!(
            delta_null < delta_gen,
            "null {delta_null} vs gen {delta_gen}"
        );
    }

    #[test]
    fn bad_inputs_rejected() {
        let data = gen_data(10, 2, 1, 9);
        let kin = random_kinship(10, 1, 1.0);
        assert!(lmm_scan(&data, &kin, -1.0).is_err());
        assert!(lmm_scan(&data, &kin, f64::NAN).is_err());
        let wrong_n = random_kinship(9, 1, 1.0);
        assert!(lmm_scan(&data, &wrong_n, 1.0).is_err());
        assert!(estimate_delta(&data, &kin, &[]).is_err());
        assert!(estimate_delta(&data, &kin, &[-0.5]).is_err());
    }
}
