//! The leakage ladder must be invariant to blocking: splitting the
//! aggregation into variant blocks changes *when* values open, but must
//! not change *what* leaks. For every rung of the mode matrix and every
//! block size, the blocked pipeline's [`DisclosureLog`] must account for
//! exactly the leakage of the monolithic path:
//!
//! - the per-party disclosures (the quantity the stricter modes drive to
//!   zero) are identical entry for entry — same party, same label, same
//!   scalar count;
//! - the aggregate disclosures total the same number of opened scalars
//!   (the blocked path opens the same values under round-scoped labels);
//! - the strictest rung (GramAggregate + a secure aggregation) leaks no
//!   per-party value in either path.

// Test code asserts freely; the panic-free discipline applies to the
// protocol code proper.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::model::PartyData;
use dash_core::secure::{
    secure_scan, AggregationMode, RFactorMode, SecureScanConfig, SecureScanOutput,
};
use dash_linalg::Matrix;
use dash_mpc::audit::Disclosure;

fn gen_parties(sizes: &[usize], m: usize, k: usize, seed: u64) -> Vec<PartyData> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    sizes
        .iter()
        .map(|&n| {
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = Matrix::from_fn(n, m, |_, _| next());
            let c = Matrix::from_fn(n, k, |_, _| next());
            PartyData::new(y, x, c).unwrap()
        })
        .collect()
}

/// Parties run on threads, so the interleaving of log entries across
/// parties is nondeterministic — compare as a sorted multiset.
fn sorted(mut entries: Vec<Disclosure>) -> Vec<(Option<usize>, String, usize)> {
    entries.sort_by(|a, b| {
        (a.source_party, &a.label, a.scalars).cmp(&(b.source_party, &b.label, b.scalars))
    });
    entries
        .into_iter()
        .map(|d| (d.source_party, d.label, d.scalars))
        .collect()
}

fn per_party(entries: &[Disclosure]) -> Vec<Disclosure> {
    entries
        .iter()
        .filter(|d| d.source_party.is_some())
        .cloned()
        .collect()
}

fn aggregate_scalars(entries: &[Disclosure]) -> usize {
    entries
        .iter()
        .filter(|d| d.source_party.is_none())
        .map(|d| d.scalars)
        .sum()
}

const ALL_RF: [RFactorMode; 3] = [
    RFactorMode::PublicStack,
    RFactorMode::PairwiseTree,
    RFactorMode::GramAggregate,
];
const ALL_AGG: [AggregationMode; 5] = [
    AggregationMode::Public,
    AggregationMode::SecureShares,
    AggregationMode::MaskedPrg,
    AggregationMode::MaskedStar,
    AggregationMode::BeaverDots,
];

fn run(parties: &[PartyData], cfg: &SecureScanConfig) -> SecureScanOutput {
    secure_scan(parties, cfg).unwrap()
}

#[test]
fn blocked_leakage_identical_across_modes_and_block_sizes() {
    let m = 6;
    let k = 2;
    let parties = gen_parties(&[13, 18, 11], m, k, 77);
    for rf in ALL_RF {
        for agg in ALL_AGG {
            let base = SecureScanConfig {
                rfactor: rf,
                aggregation: agg,
                seed: 29,
                ..SecureScanConfig::default()
            };
            let mono = run(&parties, &base);
            for block in [1, 3, 4, m, m + 3] {
                let what = format!("{rf:?}/{agg:?} block={block}");
                let blocked = run(
                    &parties,
                    &SecureScanConfig {
                        block_size: Some(block),
                        ..base
                    },
                );
                // Per-party leakage: identical entry for entry.
                assert_eq!(
                    sorted(per_party(&blocked.disclosures)),
                    sorted(per_party(&mono.disclosures)),
                    "{what}: per-party disclosures must match the monolithic path"
                );
                // Aggregate leakage: same total opened scalars (labels
                // are round-scoped, so entry counts legitimately differ).
                assert_eq!(
                    aggregate_scalars(&blocked.disclosures),
                    aggregate_scalars(&mono.disclosures),
                    "{what}: aggregate scalars must match the monolithic path"
                );
                // Public aggregation leaks whole summand vectors
                // per-party; splitting into blocks must not re-label or
                // re-size that disclosure.
                if agg == AggregationMode::Public {
                    assert!(
                        per_party(&blocked.disclosures)
                            .iter()
                            .any(|d| d.scalars == 1 + 2 * m + k + k * m),
                        "{what}: Public mode records the full summand vector once"
                    );
                }
            }
        }
    }
}

/// The top rung of the ladder must stay leak-free under blocking: with
/// aggregate-only R factors and any secure aggregation, *no* per-party
/// value opens in either path.
#[test]
fn strictest_rung_leaks_nothing_per_party_blocked_or_not() {
    let parties = gen_parties(&[12, 15], 4, 2, 5);
    for agg in [
        AggregationMode::SecureShares,
        AggregationMode::MaskedPrg,
        AggregationMode::MaskedStar,
        AggregationMode::BeaverDots,
    ] {
        let base = SecureScanConfig {
            rfactor: RFactorMode::GramAggregate,
            aggregation: agg,
            seed: 31,
            ..SecureScanConfig::default()
        };
        for block in [None, Some(2)] {
            let out = run(
                &parties,
                &SecureScanConfig {
                    block_size: block,
                    ..base
                },
            );
            let leaked = per_party(&out.disclosures);
            assert!(
                leaked.is_empty(),
                "{agg:?} block={block:?}: per-party disclosures {leaked:?}"
            );
        }
    }
}

/// Moving up the ladder never leaks more: per-party scalar counts are
/// monotonically non-increasing as the R-factor mode tightens, in both
/// the monolithic and the blocked pipeline.
#[test]
fn ladder_monotone_under_blocking() {
    let parties = gen_parties(&[16, 13, 10], 5, 2, 13);
    for block in [None, Some(2)] {
        let mut prev: Option<usize> = None;
        for rf in ALL_RF {
            let out = run(
                &parties,
                &SecureScanConfig {
                    rfactor: rf,
                    aggregation: AggregationMode::MaskedPrg,
                    seed: 3,
                    block_size: block,
                    ..SecureScanConfig::default()
                },
            );
            let leaked: usize = per_party(&out.disclosures).iter().map(|d| d.scalars).sum();
            if let Some(p) = prev {
                assert!(
                    leaked <= p,
                    "{rf:?} block={block:?}: leaked {leaked} > previous rung {p}"
                );
            }
            prev = Some(leaked);
        }
    }
}
