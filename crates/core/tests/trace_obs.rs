//! Observability contract of the secure scan: the trace mirror must
//! agree **exactly** with the transport's own accounting, the span tree
//! must reflect the protocol structure, and — the disclosure-size
//! invariant — the [`DisclosureLog`]'s claimed scalar counts must equal
//! the number of opened words the trace observed at the protocol's
//! opening sites. A mismatch in either direction means the audit log is
//! lying about what left the parties' machines.
//!
//! These tests exercise the *blocked* pipeline (the production path) and
//! a fault-injected run, so the equalities are pinned under retransmission
//! and duplication too.

// Test code asserts freely; the panic-free discipline applies to the
// protocol code proper.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::model::PartyData;
use dash_core::secure::{
    secure_scan, secure_scan_traced, AggregationMode, RFactorMode, SecureScanConfig, TraceCounter,
    TraceHandle,
};
use dash_linalg::Matrix;
use dash_mpc::transport::FaultPlan;
use std::time::Duration;

fn gen_parties(sizes: &[usize], m: usize, k: usize, seed: u64) -> Vec<PartyData> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    sizes
        .iter()
        .map(|&n| {
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = Matrix::from_fn(n, m, |_, _| next());
            let c = Matrix::from_fn(n, k, |_, _| next());
            PartyData::new(y, x, c).unwrap()
        })
        .collect()
}

/// Fully-secure modes: every disclosure flows through an instrumented
/// opening site (masked sums, share-based sums, Beaver openings), so the
/// audit log's claims and the trace's observed counts must coincide.
const SECURE_AGG: [AggregationMode; 4] = [
    AggregationMode::SecureShares,
    AggregationMode::MaskedPrg,
    AggregationMode::MaskedStar,
    AggregationMode::BeaverDots,
];

/// Disclosure-size verification: for every fully-secure mode on the
/// blocked path, the scalars the [`DisclosureLog`] *claims* were opened
/// equal the opened-word count the trace *observed* at the protocol's
/// opening sites.
#[test]
fn disclosure_log_matches_trace_observed_openings() {
    let parties = gen_parties(&[14, 19, 12], 6, 2, 41);
    for agg in SECURE_AGG {
        let cfg = SecureScanConfig {
            rfactor: RFactorMode::GramAggregate,
            aggregation: agg,
            block_size: Some(2),
            seed: 23,
            ..SecureScanConfig::default()
        };
        let trace = TraceHandle::enabled(parties.len());
        let out = secure_scan_traced(&parties, &cfg, trace.clone()).unwrap();
        let claimed: u64 = out.disclosures.iter().map(|d| d.scalars as u64).sum();
        let observed = trace.counter_total(TraceCounter::OpenedScalars);
        assert!(claimed > 0, "{agg:?}: a scan must disclose something");
        assert_eq!(
            claimed, observed,
            "{agg:?}: disclosure log claims {claimed} opened scalars but the \
             trace observed {observed}"
        );
    }
}

/// The trace's per-party byte/message counters must equal the
/// transport's own [`NetworkStats`] totals exactly — the mirror lives at
/// the single accounting point, so any divergence is a wiring bug.
#[test]
fn trace_totals_match_network_report_exactly() {
    let parties = gen_parties(&[16, 13, 18], 5, 2, 7);
    let cfg = SecureScanConfig {
        rfactor: RFactorMode::GramAggregate,
        aggregation: AggregationMode::BeaverDots,
        block_size: Some(2),
        seed: 11,
        ..SecureScanConfig::default()
    };
    let trace = TraceHandle::enabled(parties.len());
    let out = secure_scan_traced(&parties, &cfg, trace.clone()).unwrap();
    let sent = trace.counter_total(TraceCounter::BytesSent);
    let received = trace.counter_total(TraceCounter::BytesReceived);
    assert_eq!(sent, out.network.total_bytes, "trace sent vs report");
    assert_eq!(
        received, out.network.total_bytes,
        "trace received vs report"
    );
    assert_eq!(
        trace.counter_total(TraceCounter::MessagesSent),
        out.network.total_messages,
        "trace messages vs report"
    );
    assert_eq!(
        trace.counter_total(TraceCounter::Retries),
        out.network.total_retries
    );
    assert_eq!(
        trace.counter_total(TraceCounter::Timeouts),
        out.network.total_timeouts
    );
    let max_sent = (0..parties.len())
        .map(|p| trace.counter(p, TraceCounter::BytesSent))
        .max()
        .unwrap();
    assert_eq!(max_sent, out.network.max_party_bytes, "per-party maximum");
}

/// Under injected duplication and transient send failures the mirror
/// equalities still hold (duplicates and retries are real traffic and
/// are counted identically on both sides), and every retry appears in
/// the trace.
#[test]
fn trace_matches_stats_under_fault_injection() {
    let parties = gen_parties(&[12, 15], 4, 1, 77);
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::MaskedPrg,
        block_size: Some(2),
        seed: 5,
        deadline_ms: 60_000,
        faults: Some(FaultPlan {
            seed: 9,
            dup_prob: 0.3,
            transient_prob: 0.3,
            delay_prob: 0.2,
            max_delay: Duration::from_millis(1),
            ..FaultPlan::default()
        }),
        ..SecureScanConfig::default()
    };
    let trace = TraceHandle::enabled(parties.len());
    let out = secure_scan_traced(&parties, &cfg, trace.clone()).unwrap();
    assert_eq!(
        trace.counter_total(TraceCounter::BytesSent),
        out.network.total_bytes,
        "byte mirror under faults"
    );
    assert!(
        out.network.total_retries > 0,
        "transient_prob 0.3 must force at least one retry"
    );
    assert_eq!(
        trace.counter_total(TraceCounter::Retries),
        out.network.total_retries,
        "retry mirror under faults"
    );
    // The blocked per-block partition survives fault injection: block
    // rounds plus unscoped traffic still account for every byte.
    assert!(
        out.per_block_bytes.iter().sum::<u64>() < out.network.total_bytes,
        "unscoped phases also move bytes"
    );
}

/// The span tree reflects the protocol structure: every party records
/// one `scan` root, the three phase spans beneath it, and one `block`
/// span per variant block, each wrapping a `round:secure` span.
#[test]
fn span_tree_reflects_blocked_protocol_structure() {
    let m = 6;
    let block = 2;
    let parties = gen_parties(&[10, 12, 9], m, 2, 3);
    let cfg = SecureScanConfig {
        rfactor: RFactorMode::GramAggregate,
        aggregation: AggregationMode::MaskedStar,
        block_size: Some(block),
        seed: 2,
        ..SecureScanConfig::default()
    };
    let trace = TraceHandle::enabled(parties.len());
    secure_scan_traced(&parties, &cfg, trace.clone()).unwrap();
    assert_eq!(trace.dropped_spans(), 0, "default capacity must suffice");
    let spans = trace.spans();
    let n_blocks = m.div_ceil(block) as u64;
    for p in 0..parties.len() {
        let mine: Vec<_> = spans.iter().filter(|s| s.party == p).collect();
        let count = |name: &str| mine.iter().filter(|s| s.name == name).count() as u64;
        assert_eq!(count("scan"), 1, "party {p}: one scan root");
        assert_eq!(count("phase:count"), 1, "party {p}");
        assert_eq!(count("phase:rfactor"), 1, "party {p}");
        assert_eq!(count("phase:aggregate"), 1, "party {p}");
        assert_eq!(count("block"), n_blocks, "party {p}: one span per block");
        assert_eq!(count("round:secure"), n_blocks, "party {p}");
        for s in &mine {
            assert!(s.end_ns >= s.start_ns, "span {}: monotone", s.name);
            if s.name == "scan" {
                assert_eq!(s.depth, 0, "scan is the root span");
            } else {
                assert!(s.depth >= 1, "span {} nests under scan", s.name);
            }
        }
        // Block spans carry their block index, in order.
        let blocks: Vec<u64> = mine
            .iter()
            .filter(|s| s.name == "block")
            .map(|s| s.index.unwrap())
            .collect();
        assert_eq!(blocks, (0..n_blocks).collect::<Vec<_>>(), "party {p}");
    }
}

/// A disabled handle changes nothing: same results bit for bit, no
/// recorded spans, and `secure_scan` itself equals the traced variant.
#[test]
fn disabled_trace_is_transparent() {
    let parties = gen_parties(&[11, 14], 4, 1, 19);
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::BeaverDots,
        rfactor: RFactorMode::GramAggregate,
        block_size: Some(3),
        seed: 13,
        ..SecureScanConfig::default()
    };
    let plain = secure_scan(&parties, &cfg).unwrap();
    let disabled = TraceHandle::disabled();
    let traced = secure_scan_traced(&parties, &cfg, disabled.clone()).unwrap();
    assert!(!disabled.is_enabled());
    assert!(disabled.spans().is_empty());
    assert_eq!(disabled.counter_total(TraceCounter::BytesSent), 0);
    assert_eq!(plain.network.total_bytes, traced.network.total_bytes);
    for (a, b) in plain.result.beta.iter().zip(traced.result.beta.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The exported JSON is well-formed enough to round-trip the headline
/// numbers: schema tag, party count, and the byte totals embedded in the
/// counters section match the live handle.
#[test]
fn json_export_carries_exact_byte_totals() {
    let parties = gen_parties(&[9, 10], 3, 1, 29);
    let cfg = SecureScanConfig {
        block_size: Some(2),
        seed: 31,
        ..SecureScanConfig::default()
    };
    let trace = TraceHandle::enabled(parties.len());
    let out = secure_scan_traced(&parties, &cfg, trace.clone()).unwrap();
    let json = trace.export_json();
    assert!(json.contains("\"schema\": \"dash-trace/1\""));
    assert!(json.contains("\"n_parties\": 2"));
    // Every per-party sent-byte figure appears verbatim in the export,
    // and their sum is the network report total.
    let mut sum = 0;
    for p in 0..parties.len() {
        let sent = trace.counter(p, TraceCounter::BytesSent);
        assert!(
            json.contains(&format!("\"bytes_sent\": {sent}")),
            "party {p} sent bytes missing from export"
        );
        sum += sent;
    }
    assert_eq!(sum, out.network.total_bytes);
}
