//! Checkpoint/resume at the library level: a checkpointed run must be
//! indistinguishable from a plain run (checkpoint writes are pure
//! observers), the files it leaves must be loadable and complete, and a
//! full-fleet resume from those files must reproduce the same output —
//! results, traffic accounting, disclosures — without re-running any
//! completed round. The harsher single-party `kill -9` mid-run path is
//! covered end-to-end by the `dash` CLI crash/resume test, which spawns
//! real processes.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::model::PartyData;
use dash_core::secure::checkpoint::{self, CheckpointPolicy};
use dash_core::secure::{
    secure_scan, secure_scan_party_checkpointed, AggregationMode, SecureScanConfig,
    SecureScanOutput,
};
use dash_core::CoreError;
use dash_linalg::Matrix;
use dash_mpc::tcp::{LinkSupervision, ResumeState, TcpConfig, TcpTransport};
use dash_mpc::NetworkStats;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn gen_parties(sizes: &[usize], m: usize, k: usize, seed: u64) -> Vec<PartyData> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    sizes
        .iter()
        .map(|&n| {
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = Matrix::from_fn(n, m, |_, _| next());
            let c = Matrix::from_fn(n, k, |_, _| next());
            PartyData::new(y, x, c).unwrap()
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dash_ckpt_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Runs every party of a checkpointed scan on its own thread with its
/// own stats sink and transport — the in-process stand-in for one OS
/// process per party. With `resume`, each party loads its checkpoint
/// from `dir` and rejoins through `connect_resume`.
fn run_tcp_checkpointed(
    parties: &[PartyData],
    cfg: &SecureScanConfig,
    dir: &Path,
    resume: bool,
) -> Vec<Result<SecureScanOutput, CoreError>> {
    let p = parties.len();
    let mut listeners = Vec::with_capacity(p);
    let mut addrs = Vec::with_capacity(p);
    for _ in 0..p {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(l.local_addr().unwrap());
        listeners.push(l);
    }
    // Checkpoints need the supervised transport: only it keeps the
    // replay buffers and cursors a resume reconciles against.
    let tcp_cfg = TcpConfig {
        run_id: cfg.seed,
        supervision: Some(LinkSupervision::default()),
        ..TcpConfig::default()
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let addrs = &addrs;
                scope.spawn(move || -> Result<SecureScanOutput, CoreError> {
                    let resume_from = if resume {
                        Some(Box::new(checkpoint::load(&checkpoint::checkpoint_path(
                            dir, i,
                        ))?))
                    } else {
                        None
                    };
                    let rs =
                        resume_from
                            .as_ref()
                            .and_then(|c| c.links.clone())
                            .map(|l| ResumeState {
                                send_next: l.send_next,
                                recv_next: l.recv_next,
                                replay: l.replay,
                            });
                    let stats = Arc::new(NetworkStats::with_trace(
                        p,
                        dash_core::TraceHandle::disabled(),
                    ));
                    let tcp = TcpTransport::connect_resume(i, listener, addrs, tcp_cfg, stats, rs)
                        .map_err(CoreError::Mpc)?;
                    let policy = CheckpointPolicy {
                        dir: dir.to_path_buf(),
                        resume_from,
                        crash_after_block: None,
                    };
                    secure_scan_party_checkpointed(&parties[i], cfg, tcp, &policy)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn sorted_disclosures(outs: &[SecureScanOutput]) -> Vec<(Option<usize>, String, usize)> {
    let mut v: Vec<_> = outs
        .iter()
        .flat_map(|o| o.disclosures.iter())
        .map(|d| (d.source_party, d.label.clone(), d.scalars))
        .collect();
    v.sort();
    v
}

#[test]
fn checkpointed_run_matches_plain_run_and_leaves_complete_checkpoints() {
    let parties = gen_parties(&[9, 7, 8], 6, 2, 0xC0FFEE);
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::MaskedPrg,
        block_size: Some(2),
        seed: 0x5AFE,
        ..SecureScanConfig::default()
    };
    let dir = temp_dir("clean");
    let reference = secure_scan(&parties, &cfg).unwrap();
    let outs: Vec<_> = run_tcp_checkpointed(&parties, &cfg, &dir, false)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();

    // Checkpointing is a pure observer: bit-identical results, and the
    // per-process outbound traffic sums to the shared-network total.
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(
            o.result, reference.result,
            "party {i} diverged from the plain run"
        );
    }
    let summed: u64 = outs.iter().map(|o| o.network.total_bytes).sum();
    assert_eq!(summed, reference.network.total_bytes, "traffic total");
    assert_eq!(
        sorted_disclosures(&outs),
        {
            let mut v: Vec<_> = reference
                .disclosures
                .iter()
                .map(|d| (d.source_party, d.label.clone(), d.scalars))
                .collect();
            v.sort();
            v
        },
        "disclosure multiset"
    );

    // Every party left a complete, loadable checkpoint at the final
    // boundary.
    for i in 0..parties.len() {
        let cp = checkpoint::load(&checkpoint::checkpoint_path(&dir, i)).unwrap();
        assert_eq!(cp.next_block, 3, "party {i} final boundary");
        assert_eq!(cp.fingerprint.party, i as u64);
        assert_eq!(cp.fingerprint.seed, cfg.seed);
        assert!(cp.links.is_some(), "TCP runs must persist link cursors");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_fleet_resume_reproduces_identical_output() {
    let parties = gen_parties(&[8, 6, 7], 5, 2, 0xFEED);
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::MaskedStar,
        block_size: Some(2),
        seed: 0xACE,
        ..SecureScanConfig::default()
    };
    let dir = temp_dir("fleet");
    let first: Vec<_> = run_tcp_checkpointed(&parties, &cfg, &dir, false)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();

    // Kill the whole fleet (here: let it finish and drop every socket),
    // then restart all parties from their checkpoints. The resumed run
    // must restore to the same final state: identical results, traffic
    // totals, and disclosure multiset — with no protocol round re-run.
    let resumed: Vec<_> = run_tcp_checkpointed(&parties, &cfg, &dir, true)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();
    for (i, (a, b)) in first.iter().zip(&resumed).enumerate() {
        assert_eq!(a.result, b.result, "party {i} result");
        assert_eq!(a.network, b.network, "party {i} network report");
        assert_eq!(a.per_block_bytes, b.per_block_bytes, "party {i} blocks");
    }
    assert_eq!(
        sorted_disclosures(&first),
        sorted_disclosures(&resumed),
        "disclosure multiset"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsupported_configurations_fail_structurally() {
    let parties = gen_parties(&[6, 6], 2, 1, 0xBAD);
    let dir = temp_dir("guards");

    // Monolithic pipeline: no block boundaries to checkpoint at.
    let monolithic = SecureScanConfig {
        block_size: None,
        seed: 7,
        ..SecureScanConfig::default()
    };
    for r in run_tcp_checkpointed(&parties, &monolithic, &dir, false) {
        match r {
            Err(CoreError::Checkpoint { what }) => {
                assert!(what.contains("block"), "{what}")
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }

    // Beaver mode: the y aggregate stays secret-shared; persisting it
    // would write share material to disk.
    let beaver = SecureScanConfig {
        aggregation: AggregationMode::BeaverDots,
        block_size: Some(1),
        seed: 7,
        ..SecureScanConfig::default()
    };
    for r in run_tcp_checkpointed(&parties, &beaver, &dir, false) {
        match r {
            Err(CoreError::Checkpoint { what }) => {
                assert!(what.contains("Beaver"), "{what}")
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }

    // A checkpoint from a different run (different seed) must be
    // rejected by its fingerprint, not silently diverge.
    let good = SecureScanConfig {
        block_size: Some(1),
        seed: 21,
        ..SecureScanConfig::default()
    };
    run_tcp_checkpointed(&parties, &good, &dir, false)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    let other_seed = SecureScanConfig { seed: 22, ..good };
    for r in run_tcp_checkpointed(&parties, &other_seed, &dir, true) {
        match r {
            Err(CoreError::Checkpoint { what }) => {
                assert!(what.contains("different run"), "{what}")
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
