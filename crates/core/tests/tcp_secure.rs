//! The real-socket transport must be **indistinguishable** from the
//! in-process mpsc network at the protocol level: bit-identical scan
//! results, identical `NetworkStats` totals (both paths record at the
//! same sender-side accounting point) and identical disclosure logs —
//! healthy or under the deterministic fault-injection matrix
//! (duplicates, reorders, transient send failures, delays), since
//! [`dash_mpc::FaultyTransport`] wraps either transport through the same
//! `FrameTransport` interface with the same fate hashes.

// Test code asserts freely; the panic-free discipline applies to the
// protocol code proper.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::model::PartyData;
use dash_core::secure::{
    secure_scan, secure_scan_tcp_local, AggregationMode, RFactorMode, SecureScanConfig,
    SecureScanOutput,
};
use dash_core::ScanResult;
use dash_linalg::Matrix;
use dash_mpc::transport::FaultPlan;

fn gen_parties(sizes: &[usize], m: usize, k: usize, seed: u64) -> Vec<PartyData> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    sizes
        .iter()
        .map(|&n| {
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = Matrix::from_fn(n, m, |_, _| next());
            let c = Matrix::from_fn(n, k, |_, _| next());
            PartyData::new(y, x, c).unwrap()
        })
        .collect()
}

/// Bitwise equality, treating NaN (degenerate variants) as equal to
/// itself — `assert_eq!` on f64 would reject NaN == NaN.
fn assert_bits_eq(got: &ScanResult, want: &ScanResult, what: &str) {
    assert_eq!(got.df, want.df, "{what}: df");
    assert_eq!(got.n_degenerate, want.n_degenerate, "{what}: n_degenerate");
    for (name, g, w) in [
        ("beta", &got.beta, &want.beta),
        ("se", &got.se, &want.se),
        ("t", &got.t, &want.t),
        ("p", &got.p, &want.p),
    ] {
        assert_eq!(g.len(), w.len(), "{what}: {name} length");
        for (j, (a, b)) in g.iter().zip(w.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {name}[{j}] {a} vs {b}");
        }
    }
}

/// Disclosure log as a sorted multiset — threads append concurrently in
/// both paths, so only the content (not the interleaving) is pinned.
fn sorted_disclosures(out: &SecureScanOutput) -> Vec<(Option<usize>, String, usize)> {
    let mut v: Vec<_> = out
        .disclosures
        .iter()
        .map(|d| (d.source_party, d.label.clone(), d.scalars))
        .collect();
    v.sort();
    v
}

/// Runs both paths under one configuration and asserts full equivalence:
/// results, traffic accounting, per-block attribution, disclosures.
fn assert_tcp_matches_inprocess(parties: &[PartyData], cfg: &SecureScanConfig, what: &str) {
    let mpsc =
        secure_scan(parties, cfg).unwrap_or_else(|e| panic!("{what}: mpsc path failed: {e:?}"));
    let tcp = secure_scan_tcp_local(parties, cfg)
        .unwrap_or_else(|e| panic!("{what}: tcp path failed: {e:?}"));
    assert_bits_eq(&tcp.result, &mpsc.result, what);
    assert_eq!(tcp.network, mpsc.network, "{what}: network report");
    assert_eq!(
        tcp.per_block_bytes, mpsc.per_block_bytes,
        "{what}: per-block bytes"
    );
    assert_eq!(tcp.n_parties, mpsc.n_parties, "{what}: party count");
    assert_eq!(
        sorted_disclosures(&tcp),
        sorted_disclosures(&mpsc),
        "{what}: disclosure log"
    );
}

#[test]
fn tcp_matches_inprocess_across_aggregation_modes() {
    let parties = gen_parties(&[7, 5, 6], 4, 2, 0xA11CE);
    for agg in [
        AggregationMode::Public,
        AggregationMode::SecureShares,
        AggregationMode::MaskedPrg,
        AggregationMode::MaskedStar,
        AggregationMode::BeaverDots,
    ] {
        let cfg = SecureScanConfig {
            aggregation: agg,
            seed: 0xBEEF,
            ..SecureScanConfig::default()
        };
        assert_tcp_matches_inprocess(&parties, &cfg, &format!("{agg:?}"));
    }
}

#[test]
fn tcp_matches_inprocess_strict_ladder_and_blocked() {
    let parties = gen_parties(&[8, 6], 5, 2, 0x5EED);
    // Strictest rung: aggregate-only R + Beaver dot products.
    let strict = SecureScanConfig {
        rfactor: RFactorMode::GramAggregate,
        aggregation: AggregationMode::BeaverDots,
        seed: 42,
        ..SecureScanConfig::default()
    };
    assert_tcp_matches_inprocess(&parties, &strict, "gram+beaver");
    // Blocked pipeline: per-block tag attribution must agree too.
    let blocked = SecureScanConfig {
        aggregation: AggregationMode::MaskedPrg,
        block_size: Some(2),
        threads: 2,
        seed: 43,
        ..SecureScanConfig::default()
    };
    assert_tcp_matches_inprocess(&parties, &blocked, "blocked");
}

#[test]
fn tcp_matches_inprocess_under_fault_matrix() {
    // The deterministic fault plans (pure fate hashes of seed × link ×
    // message index) drive identical fault sequences over mpsc and TCP,
    // so even the faulted runs must agree exactly — including retry
    // counters.
    let parties = gen_parties(&[6, 5, 7], 3, 2, 0xFA117);
    let profiles: [(&str, FaultPlan); 4] = [
        (
            "dup",
            FaultPlan {
                seed: 3,
                dup_prob: 0.5,
                ..FaultPlan::default()
            },
        ),
        (
            "reorder",
            FaultPlan {
                seed: 5,
                reorder_prob: 0.5,
                ..FaultPlan::default()
            },
        ),
        (
            "transient",
            FaultPlan {
                seed: 7,
                transient_prob: 0.5,
                ..FaultPlan::default()
            },
        ),
        (
            "delay",
            FaultPlan {
                seed: 9,
                delay_prob: 0.3,
                ..FaultPlan::default()
            },
        ),
    ];
    for (name, plan) in profiles {
        for agg in [AggregationMode::MaskedPrg, AggregationMode::BeaverDots] {
            let cfg = SecureScanConfig {
                aggregation: agg,
                faults: Some(plan),
                seed: 0xD15EA5E,
                ..SecureScanConfig::default()
            };
            assert_tcp_matches_inprocess(&parties, &cfg, &format!("{name}/{agg:?}"));
        }
    }
}

#[test]
fn tcp_fails_structurally_under_message_loss() {
    // Heavy loss with a short deadline: both paths must fail with a
    // structured transport error (never hang, never panic). The exact
    // variant each party observes first is scheduling-dependent, so only
    // the structural outcome is pinned.
    let parties = gen_parties(&[6, 5], 3, 2, 0xDEAD);
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::MaskedPrg,
        faults: Some(FaultPlan {
            seed: 1,
            drop_prob: 0.7,
            ..FaultPlan::default()
        }),
        deadline_ms: 400,
        max_retries: 1,
        seed: 77,
        ..SecureScanConfig::default()
    };
    let started = std::time::Instant::now();
    let mpsc = secure_scan(&parties, &cfg);
    let tcp = secure_scan_tcp_local(&parties, &cfg);
    assert!(mpsc.is_err(), "mpsc path must fail under heavy loss");
    assert!(tcp.is_err(), "tcp path must fail under heavy loss");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "structured failure must beat the deadline bound, not hang"
    );
}
