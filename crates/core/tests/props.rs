//! Property-based tests for the scan's statistical invariances.

// Test code asserts freely; the panic-free discipline applies to the
// protocol code proper.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::block::{block_scan, TransientBlock};
use dash_core::model::PartyData;
use dash_core::scan::{associate, per_variant_ols};
use dash_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic dataset from a seed.
fn dataset(n: usize, m: usize, k: usize, seed: u64) -> PartyData {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let y: Vec<f64> = (0..n).map(|_| next()).collect();
    let x = Matrix::from_fn(n, m, |_, _| next());
    let c = Matrix::from_fn(n, k, |_, _| next());
    PartyData::new(y, x, c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn t_and_p_invariant_under_response_scaling(
        seed in 0u64..500,
        scale in prop_oneof![0.001f64..0.1, 1.0f64..1000.0],
    ) {
        let data = dataset(30, 4, 2, seed);
        let base = associate(&data).unwrap();
        let y_scaled: Vec<f64> = data.y().iter().map(|v| v * scale).collect();
        let scaled = associate(
            &PartyData::new(y_scaled, data.x().clone(), data.c().clone()).unwrap(),
        )
        .unwrap();
        for j in 0..4 {
            // beta scales with y; t and p do not.
            prop_assert!((scaled.beta[j] - scale * base.beta[j]).abs()
                < 1e-8 * (1.0 + (scale * base.beta[j]).abs()));
            prop_assert!((scaled.t[j] - base.t[j]).abs() < 1e-8 * (1.0 + base.t[j].abs()));
            prop_assert!((scaled.p[j] - base.p[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn t_and_p_invariant_under_variant_scaling(
        seed in 0u64..500,
        scale in 0.01f64..100.0,
    ) {
        let data = dataset(25, 3, 1, seed);
        let base = associate(&data).unwrap();
        let mut x = data.x().clone();
        for v in x.col_mut(1) {
            *v *= scale;
        }
        let scaled =
            associate(&PartyData::new(data.y().to_vec(), x, data.c().clone()).unwrap()).unwrap();
        // Variant 1's beta rescales by 1/scale; t unchanged; others
        // untouched entirely.
        prop_assert!((scaled.beta[1] * scale - base.beta[1]).abs()
            < 1e-8 * (1.0 + base.beta[1].abs()));
        prop_assert!((scaled.t[1] - base.t[1]).abs() < 1e-8 * (1.0 + base.t[1].abs()));
        prop_assert!((scaled.t[0] - base.t[0]).abs() < 1e-10);
        prop_assert!((scaled.t[2] - base.t[2]).abs() < 1e-10);
    }

    #[test]
    fn row_permutation_invariance(seed in 0u64..500, rot in 1usize..24) {
        // Rotating the rows (a specific permutation) changes nothing.
        let n = 25;
        let data = dataset(n, 3, 2, seed);
        let perm: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let y: Vec<f64> = perm.iter().map(|&i| data.y()[i]).collect();
        let x = Matrix::from_fn(n, 3, |r, c| data.x().get(perm[r], c));
        let c = Matrix::from_fn(n, 2, |r, cc| data.c().get(perm[r], cc));
        let permuted = associate(&PartyData::new(y, x, c).unwrap()).unwrap();
        let base = associate(&data).unwrap();
        let d = permuted.max_rel_diff(&base).unwrap();
        prop_assert!(d < 1e-9, "diff {d}");
    }

    #[test]
    fn scan_equals_ols_oracle(seed in 0u64..300) {
        let data = dataset(32, 5, 2, seed);
        let fast = associate(&data).unwrap();
        let slow = per_variant_ols(&data).unwrap();
        let d = fast.max_rel_diff(&slow).unwrap();
        prop_assert!(d < 1e-7, "diff {d}");
    }

    #[test]
    fn single_column_blocks_equal_scalar_scan(seed in 0u64..300) {
        let data = dataset(28, 4, 1, seed);
        let scalar = associate(&data).unwrap();
        let blocks: Vec<TransientBlock> = (0..4)
            .map(|j| TransientBlock::new(format!("v{j}"), vec![j]))
            .collect();
        let joint = block_scan(&data, &blocks).unwrap();
        for (j, jb) in joint.iter().enumerate().take(4) {
            prop_assert!((jb.p - scalar.p[j]).abs() < 1e-8, "j={j}");
        }
    }

    #[test]
    fn covariate_order_does_not_matter(seed in 0u64..300) {
        // Swapping covariate columns spans the same space → identical
        // results.
        let data = dataset(30, 3, 3, seed);
        let c = data.c();
        let swapped = Matrix::from_cols(&[c.col(2), c.col(0), c.col(1)]).unwrap();
        let base = associate(&data).unwrap();
        let reordered = associate(
            &PartyData::new(data.y().to_vec(), data.x().clone(), swapped).unwrap(),
        )
        .unwrap();
        let d = base.max_rel_diff(&reordered).unwrap();
        prop_assert!(d < 1e-8, "diff {d}");
    }

    #[test]
    fn adding_pure_noise_covariate_never_flips_everything(seed in 0u64..200) {
        // Adding one covariate costs one df and perturbs estimates, but
        // finite results stay finite and df drops by exactly 1.
        let data = dataset(30, 3, 1, seed);
        let base = associate(&data).unwrap();
        let extra = dataset(30, 1, 1, seed.wrapping_add(9999));
        let c_new = Matrix::from_cols(&[data.c().col(0), extra.x().col(0)]).unwrap();
        let wider = associate(
            &PartyData::new(data.y().to_vec(), data.x().clone(), c_new).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(wider.df + 1, base.df);
        prop_assert!(wider.beta.iter().all(|b| b.is_finite()));
    }
}
