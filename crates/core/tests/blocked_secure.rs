//! The blocked secure-scan pipeline must be **bit-identical** to the
//! monolithic path — not merely close. Fixed-point secure sums are exact
//! per element, PRG masks cancel exactly however the summand vector is
//! split across rounds, and Beaver triples are consumed in the monolithic
//! order; these tests pin that equivalence for every security mode,
//! block size shape (1, odd divisor, non-divisor, M, > M), party count,
//! and thread count.
//!
//! CI bounds the property test's case count via the `DASH_BLOCKED_CASES`
//! environment variable (see `scripts/check.sh`).

// Test code asserts freely; the panic-free discipline applies to the
// protocol code proper.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use dash_core::model::{pool_parties, PartyData};
use dash_core::scan::associate;
use dash_core::secure::{
    secure_scan, AggregationMode, RFactorMode, SecureScanConfig, SecureScanOutput,
};
use dash_core::{CoreError, ScanResult};
use dash_linalg::Matrix;
use proptest::prelude::*;

fn gen_parties(sizes: &[usize], m: usize, k: usize, seed: u64) -> Vec<PartyData> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    sizes
        .iter()
        .map(|&n| {
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = Matrix::from_fn(n, m, |_, _| next());
            let c = Matrix::from_fn(n, k, |_, _| next());
            PartyData::new(y, x, c).unwrap()
        })
        .collect()
}

/// Bitwise equality, treating NaN (degenerate variants) as equal to
/// itself — `assert_eq!` on f64 would reject NaN == NaN.
fn assert_bits_eq(got: &ScanResult, want: &ScanResult, what: &str) {
    assert_eq!(got.df, want.df, "{what}: df");
    assert_eq!(got.n_degenerate, want.n_degenerate, "{what}: n_degenerate");
    for (name, g, w) in [
        ("beta", &got.beta, &want.beta),
        ("se", &got.se, &want.se),
        ("t", &got.t, &want.t),
        ("p", &got.p, &want.p),
    ] {
        assert_eq!(g.len(), w.len(), "{what}: {name} length");
        for (j, (a, b)) in g.iter().zip(w.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: {name}[{j}] {a} vs {b}");
        }
    }
}

fn run(parties: &[PartyData], cfg: &SecureScanConfig) -> SecureScanOutput {
    secure_scan(parties, cfg).unwrap()
}

const ALL_RF: [RFactorMode; 3] = [
    RFactorMode::PublicStack,
    RFactorMode::PairwiseTree,
    RFactorMode::GramAggregate,
];
const ALL_AGG: [AggregationMode; 5] = [
    AggregationMode::Public,
    AggregationMode::SecureShares,
    AggregationMode::MaskedPrg,
    AggregationMode::MaskedStar,
    AggregationMode::BeaverDots,
];

/// The full mode matrix × block sizes {1, odd divisor, non-divisor, M,
/// larger than M}: every blocked run must reproduce the monolithic run
/// bit for bit.
#[test]
fn blocked_bit_identical_across_modes_and_block_sizes() {
    let m = 6;
    let parties = gen_parties(&[14, 19, 12], m, 2, 41);
    for rf in ALL_RF {
        for agg in ALL_AGG {
            let base = SecureScanConfig {
                rfactor: rf,
                aggregation: agg,
                seed: 23,
                ..SecureScanConfig::default()
            };
            let mono = run(&parties, &base);
            for block in [1, 3, 4, m, m + 3] {
                let blocked = run(
                    &parties,
                    &SecureScanConfig {
                        block_size: Some(block),
                        ..base
                    },
                );
                assert_bits_eq(
                    &blocked.result,
                    &mono.result,
                    &format!("{rf:?}/{agg:?} block={block}"),
                );
                assert_eq!(
                    blocked.per_block_bytes.len(),
                    m.div_ceil(block),
                    "{rf:?}/{agg:?} block={block}: one traffic entry per block"
                );
                assert!(
                    blocked.per_block_bytes.iter().all(|&b| b > 0),
                    "{rf:?}/{agg:?} block={block}: every block round moves bytes"
                );
                assert!(
                    blocked.per_block_bytes.iter().sum::<u64>() < blocked.network.total_bytes,
                    "{rf:?}/{agg:?} block={block}: unscoped phases also move bytes"
                );
            }
            assert!(
                mono.per_block_bytes.is_empty(),
                "monolithic runs report no per-block traffic"
            );
        }
    }
}

/// Party counts 2 and 4 (the matrix above covers 3).
#[test]
fn blocked_bit_identical_for_two_and_four_parties() {
    for (sizes, seed) in [(&[20, 15][..], 7u64), (&[9, 14, 11, 16][..], 8)] {
        let parties = gen_parties(sizes, 5, 2, seed);
        for agg in [AggregationMode::MaskedStar, AggregationMode::BeaverDots] {
            let base = SecureScanConfig {
                rfactor: RFactorMode::GramAggregate,
                aggregation: agg,
                seed,
                ..SecureScanConfig::default()
            };
            let mono = run(&parties, &base);
            let blocked = run(
                &parties,
                &SecureScanConfig {
                    block_size: Some(2),
                    ..base
                },
            );
            assert_bits_eq(
                &blocked.result,
                &mono.result,
                &format!("p={} {agg:?}", sizes.len()),
            );
        }
    }
}

/// The worker-thread count of the block producer must never change the
/// results (each column's dots are computed by exactly one worker, in
/// column order).
#[test]
fn blocked_thread_count_does_not_change_bits() {
    let parties = gen_parties(&[25, 30], 9, 3, 99);
    let base = SecureScanConfig {
        block_size: Some(4),
        seed: 3,
        ..SecureScanConfig::default()
    };
    let one = run(&parties, &base);
    for threads in [2, 3, 8] {
        let multi = run(&parties, &SecureScanConfig { threads, ..base });
        assert_bits_eq(&multi.result, &one.result, &format!("threads={threads}"));
    }
}

/// Blocked runs must also agree with the *plaintext pooled* scan to
/// numerical precision (the end-to-end correctness anchor).
#[test]
fn blocked_matches_pooled_plaintext() {
    let parties = gen_parties(&[22, 17, 21], 7, 2, 55);
    let reference = associate(&pool_parties(&parties).unwrap()).unwrap();
    let cfg = SecureScanConfig {
        aggregation: AggregationMode::BeaverDots,
        rfactor: RFactorMode::GramAggregate,
        block_size: Some(3),
        threads: 2,
        seed: 17,
        ..SecureScanConfig::default()
    };
    let out = run(&parties, &cfg);
    let d = out.result.max_rel_diff(&reference).unwrap();
    assert!(d < 2e-5, "blocked secure vs pooled plaintext: {d}");
}

#[test]
fn zero_block_size_and_zero_threads_rejected() {
    let parties = gen_parties(&[10, 10], 2, 1, 1);
    let cfg = SecureScanConfig {
        block_size: Some(0),
        ..SecureScanConfig::default()
    };
    assert!(matches!(
        secure_scan(&parties, &cfg),
        Err(CoreError::BadConfig { .. })
    ));
    let cfg = SecureScanConfig {
        threads: 0,
        ..SecureScanConfig::default()
    };
    assert!(matches!(
        secure_scan(&parties, &cfg),
        Err(CoreError::BadConfig { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(6, "DASH_BLOCKED_CASES"))]

    /// Randomized partitions, shapes, modes, and block sizes: blocked
    /// results are bit-identical to monolithic ones.
    #[test]
    fn blocked_equals_monolithic_bitwise(
        sizes in proptest::collection::vec(6usize..25, 2..5),
        m in 1usize..11,
        k in 0usize..4,
        block in 1usize..14,
        threads in 1usize..5,
        seed in 0u64..1000,
        agg_idx in 0usize..5,
    ) {
        let total: usize = sizes.iter().sum();
        prop_assume!(total > k + 3);
        let parties = gen_parties(&sizes, m, k, seed);
        let base = SecureScanConfig {
            aggregation: ALL_AGG[agg_idx],
            seed,
            ..SecureScanConfig::default()
        };
        let mono = secure_scan(&parties, &base).unwrap();
        let blocked = secure_scan(&parties, &SecureScanConfig {
            block_size: Some(block),
            threads,
            ..base
        }).unwrap();
        prop_assert_eq!(blocked.result.df, mono.result.df);
        prop_assert_eq!(blocked.result.n_degenerate, mono.result.n_degenerate);
        for j in 0..m {
            prop_assert_eq!(blocked.result.beta[j].to_bits(), mono.result.beta[j].to_bits(),
                "beta[{}] {} vs {}", j, blocked.result.beta[j], mono.result.beta[j]);
            prop_assert_eq!(blocked.result.se[j].to_bits(), mono.result.se[j].to_bits());
            prop_assert_eq!(blocked.result.t[j].to_bits(), mono.result.t[j].to_bits());
            prop_assert_eq!(blocked.result.p[j].to_bits(), mono.result.p[j].to_bits());
        }
    }
}
