//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of criterion's API the workspace benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`, and
//! `BenchmarkId`. Each benchmark runs a warmup pass plus `sample_size`
//! timed samples and prints the median wall-clock time (with derived
//! throughput when configured). There are no statistics, plots, or
//! saved baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver passed to every target function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares work-per-iteration so results include throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark, handing `input` to the closure alongside the
    /// [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; exists for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value (for groups benching one function over a
    /// sweep).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever an id is expected (`&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work performed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive so the work is
    /// not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.sample = Some(start.elapsed());
    }
}

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    // One untimed warmup pass, then `sample_size` timed samples.
    for i in 0..=sample_size {
        let mut b = Bencher { sample: None };
        f(&mut b);
        let sample = b
            .sample
            .expect("benchmark closure never called Bencher::iter");
        if i > 0 {
            samples.push(sample);
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mut line = format!("bench {label:<48} median {}", format_duration(median));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                let _ = write!(line, "  ({:.3e} elem/s)", per_sec(n));
            }
            Throughput::Bytes(n) => {
                let _ = write!(line, "  ({:.3e} B/s)", per_sec(n));
            }
        }
    }
    println!("{line}");
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(250)), "250.00 us");
        assert_eq!(format_duration(Duration::from_millis(42)), "42.00 ms");
    }
}
