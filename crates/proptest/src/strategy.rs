//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a sampler: it draws
/// a value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick the next strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing the predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Sizes accepted by [`vec`]: a fixed length or a length range.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// `proptest::collection::vec` — a vector of values from `element`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Boxes a strategy, pinning its value type (helper for `prop_oneof!`
/// so type inference never sees an unconstrained trait object).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies (the `prop_oneof!` macro).
pub fn one_of<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

/// See [`one_of`].
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (1usize..=4).sample(&mut r);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_lengths_respected() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(0.0f64..1.0, 2..5).sample(&mut r);
            assert!((2..5).contains(&v.len()));
            let w = vec(0u64..10, 7usize).sample(&mut r);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn map_flat_map_filter_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| vec(0.0f64..1.0, n))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&n| n > 0);
        for _ in 0..50 {
            let n = s.sample(&mut r);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn tuples_and_one_of() {
        let mut r = rng();
        let (a, b) = (0u64..4, -1.0f64..1.0).sample(&mut r);
        assert!(a < 4 && (-1.0..1.0).contains(&b));
        let s = one_of::<f64>(vec![Box::new(0.0f64..1.0), Box::new(10.0f64..11.0)]);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.sample(&mut r);
            if v < 1.0 {
                low = true;
            } else {
                assert!((10.0..11.0).contains(&v));
                high = true;
            }
        }
        assert!(low && high);
    }
}
