//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest this workspace's property tests
//! use: the [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros,
//! range / tuple / vec / map / flat-map / one-of strategies, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics versus the real crate:
//! - cases are generated from a deterministic per-test seed (derived from
//!   the test's module path and name), so failures reproduce exactly;
//! - there is **no shrinking** — a failing case reports its inputs via
//!   the panic message instead of a minimized counterexample;
//! - `prop_assume!` rejections are retried with fresh inputs, up to a
//!   bounded number of attempts.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `proptest::collection` — sized vector strategies.
    pub use crate::strategy::vec;
}

/// Samples a uniform value of type `T` (the `any::<T>()` strategy).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            let __max_attempts = __cfg.cases as u64 * 20 + 100;
            while __accepted < __cfg.cases {
                assert!(
                    __attempt < __max_attempts,
                    "proptest: too many prop_assume! rejections \
                     ({}/{} cases accepted after {} attempts)",
                    __accepted,
                    __cfg.cases,
                    __attempt,
                );
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempt,
                );
                __attempt += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {} of {} failed (deterministic; rerun \
                         reproduces it): {}",
                        __attempt - 1,
                        stringify!($name),
                        msg,
                    ),
                }
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)) => {};
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted) if the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
