//! Case generation and the test-runner configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property over `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Like [`ProptestConfig::with_cases`], but an environment variable
    /// named `var` overrides the count at runtime — how CI bounds an
    /// expensive property without a separate test body. Unset, empty, or
    /// unparsable values fall back to `cases`; an explicit `0` is clamped
    /// to 1 so the property still executes.
    pub fn with_cases_env(cases: u32, var: &str) -> Self {
        let cases = std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .map_or(cases, |v| v.max(1));
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case (`Err` half of the implicit result the
/// macros thread through the test body).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic per-case random source.
///
/// The stream is a pure function of the test's identity and the case
/// index, so every failure reproduces without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for case `case` of the test named `test_path`.
    pub fn deterministic(test_path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// Uniform `f64` in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        use rand::Rng;
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_env_override() {
        // Process-wide env mutation: use a variable unique to this test.
        const VAR: &str = "DASH_PROPTEST_CASES_ENV_TEST";
        std::env::remove_var(VAR);
        assert_eq!(ProptestConfig::with_cases_env(9, VAR).cases, 9);
        std::env::set_var(VAR, "3");
        assert_eq!(ProptestConfig::with_cases_env(9, VAR).cases, 3);
        std::env::set_var(VAR, "0");
        assert_eq!(ProptestConfig::with_cases_env(9, VAR).cases, 1);
        std::env::set_var(VAR, "not a number");
        assert_eq!(ProptestConfig::with_cases_env(9, VAR).cases, 9);
        std::env::remove_var(VAR);
    }

    #[test]
    fn reproducible_and_distinct() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        let mut c = TestRng::deterministic("mod::test", 4);
        let mut d = TestRng::deterministic("mod::other", 3);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }
}
