//! Case generation and the test-runner configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property over `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case (`Err` half of the implicit result the
/// macros thread through the test body).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic per-case random source.
///
/// The stream is a pure function of the test's identity and the case
/// index, so every failure reproduces without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for case `case` of the test named `test_path`.
    pub fn deterministic(test_path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    /// Uniform `f64` in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        use rand::Rng;
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_distinct() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        let mut c = TestRng::deterministic("mod::test", 4);
        let mut d = TestRng::deterministic("mod::other", 3);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }
}
