//! The `dash` command-line tool.
//!
//! File-based front end to the DASH suite: simulate multi-party GWAS
//! workloads, run plaintext / secure / meta analyses on TSV matrices, and
//! inspect results — without writing Rust.
//!
//! ```text
//! dash simulate    --out DIR --samples 500,600 [--variants 1000] [--causal 10] …
//! dash scan        --y y.tsv --x x.tsv --c c.tsv --out results.tsv
//! dash secure-scan --dir DIR [--mode default|max|public] --out results.tsv
//! dash party       --id K --peers HOST:PORT,… --dir DIR/partyK --out results.tsv
//! dash meta        --dir DIR --out results.tsv
//! dash top         --results results.tsv [--alpha 5e-8] [--limit 10]
//! ```
//!
//! The library surface ([`run`]) takes argv and a writer, so the whole
//! tool is unit-testable without spawning processes.

pub mod args;
pub mod commands;
pub mod error;

pub use error::CliError;

use std::io::Write;

/// Entry point: dispatches `argv[1..]` to a subcommand, writing human
/// output to `out`. Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "simulate" => commands::simulate::run(rest, out),
        "scan" => commands::scan::run(rest, out),
        "secure-scan" => commands::secure_scan::run(rest, out),
        "party" => commands::party::run(rest, out),
        "chaos" => commands::chaos::run(rest, out),
        "meta" => commands::meta::run(rest, out),
        "pca" => commands::pca::run(rest, out),
        "perm" => commands::perm::run(rest, out),
        "top" => commands::top::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
dash — secure multi-party linear regression (association scans)

USAGE:
    dash <COMMAND> [OPTIONS]

COMMANDS:
    simulate     Generate a synthetic multi-party GWAS workload as TSV files
    scan         Plaintext association scan on one dataset
    secure-scan  Secure multi-party scan across party directories
    party        Run ONE party of the secure scan over TCP (one process each)
    chaos        TCP fault-injection proxy for resilience testing
    meta         Inverse-variance meta-analysis of per-party scans
    pca          Secure distributed PCA (ancestry covariates)
    perm         Max-T permutation scan (empirical FWER control)
    top          Show the strongest associations from a results file
    help         Show this message

Run a command with no options to see its specific usage.";

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> (Result<(), CliError>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let res = run(&argv, &mut buf);
        (res, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_command_is_usage_error() {
        let (res, _) = run_str(&[]);
        assert!(matches!(res, Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_rejected() {
        let (res, _) = run_str(&["frobnicate"]);
        let err = res.unwrap_err().to_string();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn help_prints_usage() {
        let (res, out) = run_str(&["help"]);
        assert!(res.is_ok());
        assert!(out.contains("secure-scan"));
    }
}
