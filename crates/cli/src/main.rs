//! Binary entry point for the `dash` CLI.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match dash_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
