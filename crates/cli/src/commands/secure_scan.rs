//! `dash secure-scan` — the multi-party protocol over party directories.

use crate::args::Flags;
use crate::commands::load_all_parties;
use crate::error::CliError;
use dash_core::secure::{secure_scan, AggregationMode, RFactorMode, SecureScanConfig};
use dash_gwas::io::write_scan_tsv;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash secure-scan — secure multi-party association scan

REQUIRED:
    --dir DIR       directory containing party0/, party1/, … each with
                    y.tsv / x.tsv / c.tsv

OPTIONS:
    --mode MODE     security mode: public | default | star | tree | max
                    [default: default]
                      public  : everything broadcast (baseline)
                      default : public K x K R factors, masked secure sums
                      star    : like default, but masked sums via an
                                aggregator (O(P*M) total traffic)
                      tree    : pairwise-tree R factors, masked secure sums
                      max     : aggregate-only R, Beaver dot products
    --out FILE      write results TSV here
    --seed S        protocol seed [default: 42]
    --audit BOOL    print the disclosure log (true/false) [default: true]";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let dir = PathBuf::from(flags.required("dir", USAGE)?);
    let mode = flags.optional("mode").unwrap_or_else(|| "default".into());
    let out_path = flags.optional("out").map(PathBuf::from);
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    let audit = flags.parse_or("audit", true, "true or false")?;
    flags.reject_unknown(USAGE)?;

    let cfg = match mode.as_str() {
        "public" => SecureScanConfig {
            rfactor: RFactorMode::PublicStack,
            aggregation: AggregationMode::Public,
            seed,
            ..SecureScanConfig::default()
        },
        "default" => SecureScanConfig::paper_default(seed),
        "star" => SecureScanConfig {
            aggregation: AggregationMode::MaskedStar,
            seed,
            ..SecureScanConfig::default()
        },
        "tree" => SecureScanConfig {
            rfactor: RFactorMode::PairwiseTree,
            aggregation: AggregationMode::MaskedPrg,
            seed,
            ..SecureScanConfig::default()
        },
        "max" => SecureScanConfig::max_security(seed),
        other => {
            return Err(CliError::BadValue {
                flag: "--mode".into(),
                value: other.into(),
                expected: "one of public|default|star|tree|max",
            })
        }
    };

    let parties = load_all_parties(&dir)?;
    let output = secure_scan(&parties, &cfg)?;
    writeln!(
        out,
        "secure scan over {} parties, {} variants (mode: {mode})",
        output.n_parties,
        output.result.len()
    )?;
    writeln!(
        out,
        "traffic: {} bytes total, {} bytes worst party, {} messages",
        output.network.total_bytes, output.network.max_party_bytes, output.network.total_messages
    )?;
    writeln!(
        out,
        "simulated network time: LAN {:.1} ms, WAN {:.1} ms",
        output.network.lan_seconds * 1e3,
        output.network.wan_seconds * 1e3
    )?;
    let per_party: usize = output
        .disclosures
        .iter()
        .filter(|d| d.source_party.is_some())
        .map(|d| d.scalars)
        .sum();
    writeln!(out, "per-party scalars disclosed: {per_party}")?;
    if audit {
        writeln!(out, "disclosure log:")?;
        for d in &output.disclosures {
            writeln!(out, "  {d}")?;
        }
    }
    super::scan::summarize(&output.result, out)?;
    if let Some(path) = out_path {
        write_scan_tsv(&path, &output.result)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn setup(tag: &str) -> std::path::PathBuf {
        let dir = tmp_dir(tag);
        write_party(&dir.join("party0"), &toy_party(25, 5, 2, 1));
        write_party(&dir.join("party1"), &toy_party(30, 5, 2, 2));
        dir
    }

    #[test]
    fn all_modes_run_and_agree() {
        let dir = setup("secure");
        let mut reference: Option<dash_core::model::ScanResult> = None;
        for mode in ["public", "default", "star", "tree", "max"] {
            let res_file = dir.join(format!("res_{mode}.tsv"));
            let mut buf = Vec::new();
            run(
                &argv(&[
                    "--dir",
                    dir.to_str().unwrap(),
                    "--mode",
                    mode,
                    "--out",
                    res_file.to_str().unwrap(),
                    "--audit",
                    "false",
                ]),
                &mut buf,
            )
            .unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("secure scan over 2 parties"), "{mode}");
            let result = dash_gwas::io::read_scan_tsv(&res_file, 1).unwrap();
            if let Some(r) = &reference {
                for j in 0..r.len() {
                    assert!(
                        (r.beta[j] - result.beta[j]).abs() < 1e-5,
                        "{mode}: beta[{j}]"
                    );
                }
            } else {
                reference = Some(result);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_mode_reports_zero_disclosure() {
        let dir = setup("audit");
        let mut buf = Vec::new();
        run(
            &argv(&["--dir", dir.to_str().unwrap(), "--mode", "max"]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("per-party scalars disclosed: 0"));
        assert!(text.contains("disclosure log:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_mode_rejected() {
        let dir = setup("badmode");
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--mode", "yolo"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--mode"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
