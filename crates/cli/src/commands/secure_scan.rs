//! `dash secure-scan` — the multi-party protocol over party directories.

use crate::args::Flags;
use crate::commands::{load_all_parties, mode_config, report_secure_output};
use crate::error::CliError;
use dash_core::secure::{secure_scan_traced, TraceHandle};
use dash_gwas::io::write_scan_tsv;
use dash_mpc::{CrashPoint, FaultPlan};
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash secure-scan — secure multi-party association scan

REQUIRED:
    --dir DIR       directory containing party0/, party1/, … each with
                    y.tsv / x.tsv / c.tsv

OPTIONS:
    --mode MODE     security mode: public | default | star | tree | max
                    [default: default]
                      public  : everything broadcast (baseline)
                      default : public K x K R factors, masked secure sums
                      star    : like default, but masked sums via an
                                aggregator (O(P*M) total traffic)
                      tree    : pairwise-tree R factors, masked secure sums
                      max     : aggregate-only R, Beaver dot products
    --out FILE      write results TSV here
    --seed S        protocol seed [default: 42]
    --audit BOOL    print the disclosure log (true/false) [default: true]

OBSERVABILITY:
    --trace-out FILE  write a dash-trace/1 JSON trace (per-party spans and
                      counters) to FILE after the run
    --metrics BOOL    print the per-party metrics summary (true/false)
                      [default: false]

BLOCKED PIPELINE (results are bit-identical for any block size):
    --block-size B  aggregate variants in blocks of B columns; peak summand
                    memory is O(N*B) instead of O(N*M), and each block's
                    secure round overlaps the next block's local compute.
                    'off' selects the monolithic single-round path
                    [default: 4096]
    --threads T     worker threads for per-block summand compute, >= 1
                    [default: 1]

TRANSPORT:
    --deadline-ms N  per-receive deadline in milliseconds [default: 60000]
    --retries N      max send retries on transient failure [default: 3]
    --backoff-ms N   initial retry backoff in ms, doubles per retry [default: 1]

FAULT INJECTION (deterministic; any flag below enables the injector):
    --fault-seed S      fault stream seed [default: protocol seed]
    --fault-delay P     per-message delay probability in [0,1]
    --fault-drop P      per-message drop probability in [0,1]
    --fault-dup P       per-message duplication probability in [0,1]
    --fault-reorder P   per-message reorder probability in [0,1]
    --fault-transient P per-message transient send-failure probability
    --fault-crash P:N   party P crashes after its N-th send (e.g. 1:5)";

/// Parses `party:after_sends` for `--fault-crash`.
fn parse_crash(raw: &str) -> Option<CrashPoint> {
    let (party, after) = raw.split_once(':')?;
    Some(CrashPoint {
        party: party.trim().parse().ok()?,
        after_sends: after.trim().parse().ok()?,
    })
}

/// Builds the fault plan if any `--fault-*` flag was given.
fn fault_plan(flags: &Flags, seed: u64) -> Result<Option<FaultPlan>, CliError> {
    let fault_seed = flags.parse_or("fault-seed", seed, "an integer seed")?;
    let prob = |name: &'static str| -> Result<f64, CliError> {
        let p: f64 = flags.parse_or(name, 0.0, "a probability in [0,1]")?;
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(CliError::BadValue {
                flag: format!("--{name}"),
                value: p.to_string(),
                expected: "a probability in [0,1]",
            })
        }
    };
    let delay_prob = prob("fault-delay")?;
    let drop_prob = prob("fault-drop")?;
    let dup_prob = prob("fault-dup")?;
    let reorder_prob = prob("fault-reorder")?;
    let transient_prob = prob("fault-transient")?;
    let crash = match flags.optional("fault-crash") {
        None => None,
        Some(raw) => Some(parse_crash(&raw).ok_or_else(|| CliError::BadValue {
            flag: "--fault-crash".into(),
            value: raw,
            expected: "party:after_sends (e.g. 1:5)",
        })?),
    };
    let enabled = delay_prob > 0.0
        || drop_prob > 0.0
        || dup_prob > 0.0
        || reorder_prob > 0.0
        || transient_prob > 0.0
        || crash.is_some();
    Ok(enabled.then(|| FaultPlan {
        seed: fault_seed,
        delay_prob,
        drop_prob,
        dup_prob,
        reorder_prob,
        transient_prob,
        crash,
        ..FaultPlan::default()
    }))
}

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let dir = PathBuf::from(flags.required("dir", USAGE)?);
    let mode = flags.optional("mode").unwrap_or_else(|| "default".into());
    let out_path = flags.optional("out").map(PathBuf::from);
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    let audit = flags.parse_or("audit", true, "true or false")?;
    let trace_out = flags.optional("trace-out").map(PathBuf::from);
    let metrics = flags.parse_or("metrics", false, "true or false")?;
    let deadline_ms = flags.parse_or("deadline-ms", 60_000u64, "milliseconds")?;
    let max_retries = flags.parse_or("retries", 3u32, "a retry count")?;
    let retry_backoff_ms = flags.parse_or("backoff-ms", 1u64, "milliseconds")?;
    let faults = fault_plan(&flags, seed)?;
    let block_size = match flags.optional("block-size") {
        None => Some(4096),
        Some(raw) if raw == "off" => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(b) if b >= 1 => Some(b),
            _ => {
                return Err(CliError::BadValue {
                    flag: "--block-size".into(),
                    value: raw,
                    expected: "a positive block size, or 'off' for the monolithic path",
                })
            }
        },
    };
    let threads = flags.parse_or("threads", 1usize, "a positive integer")?;
    if threads == 0 {
        return Err(CliError::BadValue {
            flag: "--threads".into(),
            value: "0".into(),
            expected: "a positive integer (use 1 for serial block compute)",
        });
    }
    flags.reject_unknown(USAGE)?;

    let mut cfg = mode_config(&mode, seed)?;
    cfg.deadline_ms = deadline_ms;
    cfg.max_retries = max_retries;
    cfg.retry_backoff_ms = retry_backoff_ms;
    cfg.faults = faults;
    cfg.block_size = block_size;
    cfg.threads = threads;

    let parties = load_all_parties(&dir)?;
    let trace = if trace_out.is_some() || metrics {
        TraceHandle::enabled(parties.len())
    } else {
        TraceHandle::disabled()
    };
    let output = secure_scan_traced(&parties, &cfg, trace.clone())?;
    report_secure_output(out, &output, &mode, block_size, threads, audit)?;
    if metrics {
        out.write_all(trace.summary().as_bytes())?;
    }
    super::scan::summarize(&output.result, out)?;
    if let Some(path) = out_path {
        write_scan_tsv(&path, &output.result)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, trace.export_json()).map_err(CliError::Io)?;
        writeln!(
            out,
            "trace written to {} ({} spans)",
            path.display(),
            trace.spans().len()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn setup(tag: &str) -> std::path::PathBuf {
        let dir = tmp_dir(tag);
        write_party(&dir.join("party0"), &toy_party(25, 5, 2, 1));
        write_party(&dir.join("party1"), &toy_party(30, 5, 2, 2));
        dir
    }

    #[test]
    fn all_modes_run_and_agree() {
        let dir = setup("secure");
        let mut reference: Option<dash_core::model::ScanResult> = None;
        for mode in ["public", "default", "star", "tree", "max"] {
            let res_file = dir.join(format!("res_{mode}.tsv"));
            let mut buf = Vec::new();
            run(
                &argv(&[
                    "--dir",
                    dir.to_str().unwrap(),
                    "--mode",
                    mode,
                    "--out",
                    res_file.to_str().unwrap(),
                    "--audit",
                    "false",
                ]),
                &mut buf,
            )
            .unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("secure scan over 2 parties"), "{mode}");
            let result = dash_gwas::io::read_scan_tsv(&res_file, 1).unwrap();
            if let Some(r) = &reference {
                for j in 0..r.len() {
                    assert!(
                        (r.beta[j] - result.beta[j]).abs() < 1e-5,
                        "{mode}: beta[{j}]"
                    );
                }
            } else {
                reference = Some(result);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_mode_reports_zero_disclosure() {
        let dir = setup("audit");
        let mut buf = Vec::new();
        run(
            &argv(&["--dir", dir.to_str().unwrap(), "--mode", "max"]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("per-party scalars disclosed: 0"));
        assert!(text.contains("disclosure log:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_recover_and_report_retries() {
        let dir = setup("transient");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--audit",
                "false",
                "--fault-transient",
                "0.6",
                "--fault-seed",
                "9",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("secure scan over 2 parties"), "{text}");
        // At a 60% transient-failure rate the retry loop must have fired
        // (fault fates are deterministic for a fixed --fault-seed).
        let retries: u64 = text
            .lines()
            .find(|l| l.starts_with("transport:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(retries > 0, "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_party_yields_structured_error() {
        let dir = setup("crash");
        let mut buf = Vec::new();
        let err = run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--fault-crash",
                "1:0",
                "--deadline-ms",
                "500",
            ]),
            &mut buf,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("party 1") || msg.contains("timed out") || msg.contains("closed"),
            "unexpected error: {msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_crash_spec_rejected() {
        let dir = setup("badcrash");
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--fault-crash", "nope"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--fault-crash"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_probability_out_of_range_rejected() {
        let dir = setup("badprob");
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--fault-drop", "1.5"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--fault-drop"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocked_pipeline_reported_and_matches_monolithic() {
        let dir = setup("blocked");
        let mut blocked_buf = Vec::new();
        let blocked_res = dir.join("blocked.tsv");
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--block-size",
                "2",
                "--threads",
                "2",
                "--audit",
                "false",
                "--out",
                blocked_res.to_str().unwrap(),
            ]),
            &mut blocked_buf,
        )
        .unwrap();
        let text = String::from_utf8(blocked_buf).unwrap();
        // 5 variants in blocks of 2 -> 3 block rounds.
        assert!(
            text.contains("blocked pipeline: 3 blocks of <= 2 variants"),
            "{text}"
        );

        let mut mono_buf = Vec::new();
        let mono_res = dir.join("mono.tsv");
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--block-size",
                "off",
                "--audit",
                "false",
                "--out",
                mono_res.to_str().unwrap(),
            ]),
            &mut mono_buf,
        )
        .unwrap();
        let mono_text = String::from_utf8(mono_buf).unwrap();
        assert!(!mono_text.contains("blocked pipeline"), "{mono_text}");

        // Written results are bit-identical across the two paths.
        let a = std::fs::read_to_string(&blocked_res).unwrap();
        let b = std::fs::read_to_string(&mono_res).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_block_size_and_threads_rejected() {
        let dir = setup("badblock");
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--block-size", "0"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--block-size"));
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--threads", "0"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--threads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sums every `"key": <int>` occurrence in a JSON text (the trace
    /// counters section has one per party).
    fn sum_json_ints(json: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\": ");
        json.match_indices(&pat)
            .map(|(i, _)| {
                json[i + pat.len()..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum()
    }

    /// Acceptance criterion: the per-party byte totals in the emitted
    /// JSON trace must equal the `NetworkStats` totals the command
    /// itself reports — exactly, not approximately.
    #[test]
    fn trace_out_json_byte_totals_match_reported_stats() {
        let dir = setup("traceout");
        let trace_file = dir.join("trace.json");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--mode",
                "max",
                "--block-size",
                "2",
                "--audit",
                "false",
                "--metrics",
                "true",
                "--trace-out",
                trace_file.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // "traffic: N bytes total, ..." is the command's own report of
        // NetworkStats::total_bytes().
        let reported: u64 = text
            .lines()
            .find(|l| l.starts_with("traffic:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(reported > 0);
        let json = std::fs::read_to_string(&trace_file).unwrap();
        assert!(json.contains("\"schema\": \"dash-trace/1\""), "{json}");
        assert!(json.contains("\"n_parties\": 2"), "{json}");
        assert_eq!(sum_json_ints(&json, "bytes_sent"), reported, "{json}");
        assert_eq!(sum_json_ints(&json, "bytes_received"), reported);
        assert!(json.contains("\"name\": \"scan\""), "span tree exported");
        assert!(json.contains("\"name\": \"block\""), "block spans exported");
        // --metrics prints the summary table; the trace path is echoed.
        assert!(text.contains("per-party counters"), "{text}");
        assert!(text.contains("trace written to"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Without the observability flags no trace file appears and the
    /// output is byte-identical to a plain run (the handle is disabled).
    #[test]
    fn trace_flags_off_by_default() {
        let dir = setup("notrace");
        let mut buf = Vec::new();
        run(
            &argv(&["--dir", dir.to_str().unwrap(), "--audit", "false"]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("per-party counters"), "{text}");
        assert!(!text.contains("trace written to"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_mode_rejected() {
        let dir = setup("badmode");
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--mode", "yolo"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--mode"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
