//! `dash party` — one protocol party as its own OS process over TCP.
//!
//! Where `dash secure-scan` simulates every party inside one process
//! (threads over in-memory channels), `dash party` runs exactly one
//! party against real sockets: launch P processes — one per data owner,
//! on one machine or several — pointing each at its own data directory
//! and the shared ordered peer list. The protocol, seeds, and framing
//! are identical, so the results are bit-identical to the in-process
//! run with the same `--seed`.
//!
//! ```text
//! dash party --id 0 --peers 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102 \
//!            --dir workload/party0 --out party0.tsv &
//! dash party --id 1 --peers ... --dir workload/party1 --out party1.tsv &
//! dash party --id 2 --peers ... --dir workload/party2 --out party2.tsv
//! ```

use crate::args::Flags;
use crate::commands::{load_party_dir, mode_config, report_secure_output};
use crate::error::CliError;
use dash_core::secure::checkpoint::{self, CheckpointPolicy};
use dash_core::secure::{secure_scan_party_checkpointed, secure_scan_party_with, TraceHandle};
use dash_core::CoreError;
use dash_gwas::io::write_scan_tsv;
use dash_mpc::net::NetworkStats;
use dash_mpc::tcp::{LinkSupervision, ResumeState, TcpConfig, TcpTransport};
use dash_mpc::transport::Transport;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
dash party — run ONE party of the secure scan as its own process (TCP)

REQUIRED:
    --id K          this party's index, 0-based, into the peer list
    --peers LIST    comma-separated ordered addresses of ALL parties
                    (host:port; entry K is this party's own address)
    --dir DIR       this party's data directory with y.tsv / x.tsv / c.tsv

OPTIONS:
    --listen ADDR   bind address [default: the peer list's entry K]
    --mode MODE     security mode: public | default | star | tree | max
                    [default: default]
    --out FILE      write results TSV here
    --seed S        protocol seed — must match at every party [default: 42]
    --run-id R      handshake run identifier; rejects peers from a
                    different run [default: the protocol seed]
    --audit BOOL    print the disclosure log (true/false) [default: true]

OBSERVABILITY:
    --trace-out FILE  write a dash-trace/1 JSON trace for this party
    --metrics BOOL    print the per-party metrics summary [default: false]

BLOCKED PIPELINE:
    --block-size B  variant block size, or 'off' [default: 4096]
    --threads T     worker threads for block compute, >= 1 [default: 1]

TRANSPORT:
    --deadline-ms N         per-receive deadline in ms [default: 60000]
    --retries N             max send retries on transient failure [default: 3]
    --backoff-ms N          initial retry backoff in ms [default: 1]
    --connect-timeout-ms N  per-attempt dial/hello timeout in ms [default: 2000]
    --connect-retries N     dial attempts per lower-id peer [default: 30]
    --accept-timeout-ms N   total wait for higher-id peers in ms [default: 30000]

SUPERVISION & CRASH RECOVERY:
    --supervise BOOL        idle-link heartbeats, slow-vs-dead liveness
                            verdicts and bounded reconnect [default: true]
    --heartbeat-ms N        idle-link heartbeat interval [default: 250]
    --liveness-timeout-ms N silence before a peer is declared dead
                            [default: 15000]
    --reconnect-window-ms N total time a broken link may spend
                            reconnecting [default: 15000]
    --checkpoint-dir DIR    persist resumable protocol state to
                            DIR/party-K.ckpt at every block boundary
                            (needs --supervise true and the blocked path)
    --resume BOOL           rejoin an interrupted run from the checkpoint
                            in --checkpoint-dir [default: false]";

/// Parses the full ordered `host:port,host:port,…` peer list.
fn parse_peers(raw: &str) -> Result<Vec<SocketAddr>, CliError> {
    raw.split(',')
        .map(|tok| {
            tok.trim().parse().map_err(|_| CliError::BadValue {
                flag: "--peers".into(),
                value: tok.trim().to_string(),
                expected: "a socket address (host:port)",
            })
        })
        .collect()
}

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let id_raw = flags.required("id", USAGE)?;
    let id: usize = id_raw.parse().map_err(|_| CliError::BadValue {
        flag: "--id".into(),
        value: id_raw,
        expected: "a 0-based party index",
    })?;
    let peers = parse_peers(&flags.required("peers", USAGE)?)?;
    let dir = PathBuf::from(flags.required("dir", USAGE)?);
    let mode = flags.optional("mode").unwrap_or_else(|| "default".into());
    let out_path = flags.optional("out").map(PathBuf::from);
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    let run_id = flags.parse_or("run-id", seed, "an integer run identifier")?;
    let audit = flags.parse_or("audit", true, "true or false")?;
    let trace_out = flags.optional("trace-out").map(PathBuf::from);
    let metrics = flags.parse_or("metrics", false, "true or false")?;
    let deadline_ms = flags.parse_or("deadline-ms", 60_000u64, "milliseconds")?;
    let max_retries = flags.parse_or("retries", 3u32, "a retry count")?;
    let retry_backoff_ms = flags.parse_or("backoff-ms", 1u64, "milliseconds")?;
    let connect_timeout_ms = flags.parse_or("connect-timeout-ms", 2_000u64, "milliseconds")?;
    let connect_retries = flags.parse_or("connect-retries", 30u32, "an attempt count")?;
    let accept_timeout_ms = flags.parse_or("accept-timeout-ms", 30_000u64, "milliseconds")?;
    let block_size = match flags.optional("block-size") {
        None => Some(4096),
        Some(raw) if raw == "off" => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(b) if b >= 1 => Some(b),
            _ => {
                return Err(CliError::BadValue {
                    flag: "--block-size".into(),
                    value: raw,
                    expected: "a positive block size, or 'off' for the monolithic path",
                })
            }
        },
    };
    let threads = flags.parse_or("threads", 1usize, "a positive integer")?;
    if threads == 0 {
        return Err(CliError::BadValue {
            flag: "--threads".into(),
            value: "0".into(),
            expected: "a positive integer (use 1 for serial block compute)",
        });
    }
    let listen = flags.optional("listen");
    let supervise = flags.parse_or("supervise", true, "true or false")?;
    let heartbeat_ms = flags.parse_or("heartbeat-ms", 250u64, "milliseconds")?;
    let liveness_timeout_ms = flags.parse_or("liveness-timeout-ms", 15_000u64, "milliseconds")?;
    let reconnect_window_ms = flags.parse_or("reconnect-window-ms", 15_000u64, "milliseconds")?;
    let checkpoint_dir = flags.optional("checkpoint-dir").map(PathBuf::from);
    let resume = flags.parse_or("resume", false, "true or false")?;
    // Undocumented crash-injection hook for the recovery test matrix:
    // abort the process right after block N's checkpoint is durable.
    let crash_after_block = match flags.optional("crash-after-block") {
        None => None,
        Some(raw) => Some(raw.parse::<u32>().map_err(|_| CliError::BadValue {
            flag: "--crash-after-block".into(),
            value: raw,
            expected: "a 0-based block index",
        })?),
    };
    flags.reject_unknown(USAGE)?;

    if checkpoint_dir.is_some() && !supervise {
        return Err(CliError::BadValue {
            flag: "--checkpoint-dir".into(),
            value: "with --supervise false".into(),
            expected: "supervision enabled (checkpoints resume through the supervised link state)",
        });
    }
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::BadValue {
            flag: "--resume".into(),
            value: "true".into(),
            expected: "--checkpoint-dir pointing at the interrupted run's checkpoints",
        });
    }

    let n = peers.len();
    if id >= n {
        return Err(CliError::BadValue {
            flag: "--id".into(),
            value: id.to_string(),
            expected: "an index into the --peers list",
        });
    }
    if n < 2 {
        return Err(CliError::BadValue {
            flag: "--peers".into(),
            value: n.to_string(),
            expected: "at least two party addresses",
        });
    }

    let mut cfg = mode_config(&mode, seed)?;
    cfg.deadline_ms = deadline_ms;
    cfg.max_retries = max_retries;
    cfg.retry_backoff_ms = retry_backoff_ms;
    cfg.block_size = block_size;
    cfg.threads = threads;

    let data = load_party_dir(&dir)?;

    let trace = if trace_out.is_some() || metrics {
        TraceHandle::enabled(n)
    } else {
        TraceHandle::disabled()
    };
    let stats = Arc::new(NetworkStats::with_trace(n, trace.clone()));
    let own = listen.as_deref().unwrap_or("");
    let bind_addr = if own.is_empty() {
        peers.get(id).map(|a| a.to_string()).unwrap_or_default()
    } else {
        own.to_string()
    };
    let listener = TcpListener::bind(&bind_addr)?;
    writeln!(
        out,
        "party {id} of {n} listening on {} (run id {run_id})",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or(bind_addr),
    )?;
    out.flush()?;

    let tcp_cfg = TcpConfig {
        run_id,
        connect_timeout: Duration::from_millis(connect_timeout_ms),
        connect_retries,
        accept_timeout: Duration::from_millis(accept_timeout_ms),
        supervision: supervise.then(|| LinkSupervision {
            heartbeat_interval: Duration::from_millis(heartbeat_ms),
            liveness_deadline: Duration::from_millis(liveness_timeout_ms),
            reconnect_window: Duration::from_millis(reconnect_window_ms),
            ..LinkSupervision::default()
        }),
        ..TcpConfig::default()
    };

    // When resuming, the checkpoint must be loaded *before* connecting:
    // the hello handshake carries its per-link receive cursors so
    // surviving peers replay exactly the frames this process lost.
    let loaded = if resume {
        let dir = checkpoint_dir
            .as_deref()
            .unwrap_or(std::path::Path::new("."));
        Some(Box::new(checkpoint::load(&checkpoint::checkpoint_path(
            dir, id,
        ))?))
    } else {
        None
    };
    let resume_state = loaded
        .as_ref()
        .and_then(|c| c.links.clone())
        .map(|l| ResumeState {
            send_next: l.send_next,
            recv_next: l.recv_next,
            replay: l.replay,
        });
    if resume {
        writeln!(
            out,
            "party {id}: resuming from block {}",
            loaded.as_ref().map(|c| c.next_block).unwrap_or(0)
        )?;
        out.flush()?;
    }
    let transport =
        TcpTransport::connect_resume(id, listener, &peers, tcp_cfg, stats, resume_state)
            .map_err(|e| CliError::Core(CoreError::Mpc(e)))?;
    writeln!(out, "party {id}: all {n} parties connected")?;
    out.flush()?;

    let output = match checkpoint_dir {
        Some(dir) => {
            // Advertise the durable receive cursors immediately (zeros on
            // a fresh run, the checkpoint's on resume) so peers never
            // prune replay frames this process could still re-request
            // after a crash.
            let durable = loaded
                .as_ref()
                .and_then(|c| c.links.as_ref().map(|l| l.recv_next.clone()))
                .unwrap_or_else(|| vec![0; n]);
            transport.note_durable(&durable);
            let policy = CheckpointPolicy {
                dir,
                resume_from: loaded,
                crash_after_block,
            };
            secure_scan_party_checkpointed(&data, &cfg, transport, &policy)?
        }
        None => secure_scan_party_with(&data, &cfg, transport)?,
    };
    report_secure_output(out, &output, &mode, block_size, threads, audit)?;
    if metrics {
        out.write_all(trace.summary().as_bytes())?;
    }
    super::scan::summarize(&output.result, out)?;
    if let Some(path) = out_path {
        write_scan_tsv(&path, &output.result)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, trace.export_json()).map_err(CliError::Io)?;
        writeln!(
            out,
            "trace written to {} ({} spans)",
            path.display(),
            trace.spans().len()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bad_id_and_peer_list_rejected() {
        let mut buf = Vec::new();
        let err = run(
            &argv(&[
                "--id",
                "3",
                "--peers",
                "127.0.0.1:1,127.0.0.1:2",
                "--dir",
                "x",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--id"), "{err}");
        let err = run(
            &argv(&["--id", "0", "--peers", "127.0.0.1:1", "--dir", "x"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--peers"), "{err}");
        let err = run(
            &argv(&["--id", "0", "--peers", "not-an-addr", "--dir", "x"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("socket address"), "{err}");
    }

    #[test]
    fn missing_required_flags_show_usage() {
        let mut buf = Vec::new();
        let err = run(&argv(&[]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("--id"), "{err}");
    }

    /// Full in-test run: three `run()` calls on three threads over real
    /// loopback sockets must agree bit-for-bit with the in-process scan.
    #[test]
    fn three_parties_over_loopback_match_inprocess() {
        let dir = tmp_dir("party_cmd");
        let datasets = [
            toy_party(14, 4, 2, 21),
            toy_party(11, 4, 2, 22),
            toy_party(9, 4, 2, 23),
        ];
        for (i, p) in datasets.iter().enumerate() {
            write_party(&dir.join(format!("party{i}")), p);
        }
        // Reserve three distinct loopback ports, then release them for
        // the parties to bind (the race window is negligible in tests).
        let holders: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let peers = holders
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(",");
        drop(holders);

        let outputs: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let dir = dir.clone();
                    let peers = peers.clone();
                    s.spawn(move || {
                        let res_file = dir.join(format!("res{i}.tsv"));
                        let mut buf = Vec::new();
                        run(
                            &argv(&[
                                "--id",
                                &i.to_string(),
                                "--peers",
                                &peers,
                                "--dir",
                                dir.join(format!("party{i}")).to_str().unwrap(),
                                "--seed",
                                "99",
                                "--audit",
                                "false",
                                "--out",
                                res_file.to_str().unwrap(),
                            ]),
                            &mut buf,
                        )
                        .unwrap();
                        String::from_utf8(buf).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, text) in outputs.iter().enumerate() {
            assert!(
                text.contains("secure scan over 3 parties"),
                "party {i}: {text}"
            );
        }

        // Reference: the in-process path with the same seed.
        let cfg = dash_core::secure::SecureScanConfig {
            block_size: Some(4096),
            ..dash_core::secure::SecureScanConfig::paper_default(99)
        };
        let reference = dash_core::secure_scan(&datasets, &cfg).unwrap();
        let ref_file = dir.join("ref.tsv");
        write_scan_tsv(&ref_file, &reference.result).unwrap();
        let want = std::fs::read_to_string(&ref_file).unwrap();
        for i in 0..3 {
            let got = std::fs::read_to_string(dir.join(format!("res{i}.tsv"))).unwrap();
            assert_eq!(got, want, "party {i} results differ from in-process run");
        }
        // Each party reports its own outbound traffic; together the three
        // processes account for exactly the in-process total.
        let sent: u64 = outputs
            .iter()
            .map(|text| {
                text.lines()
                    .find(|l| l.starts_with("traffic:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap()
            })
            .sum();
        assert_eq!(sent, reference.network.total_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
}
