//! `dash scan` — plaintext association scan on one dataset.

use crate::args::Flags;
use crate::commands::load_party_dir;
use crate::error::CliError;
use dash_core::model::PartyData;
use dash_core::scan::associate_parallel;
use dash_gwas::io::{read_matrix_tsv, write_scan_tsv};
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash scan — plaintext association scan

INPUT (either):
    --dir DIR              directory with y.tsv / x.tsv / c.tsv
    --y FILE --x FILE --c FILE   explicit paths

OPTIONS:
    --out FILE             write results TSV here [default: print summary only]
    --threads T            worker threads, >= 1 [default: 1]";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let data = load_input(&flags)?;
    let out_path = flags.optional("out").map(PathBuf::from);
    let threads = flags.parse_or("threads", 1usize, "a positive integer")?;
    if threads == 0 {
        // `--threads 0` used to silently run the serial path; make the
        // bad value loud instead.
        return Err(CliError::BadValue {
            flag: "--threads".into(),
            value: "0".into(),
            expected: "a positive integer (use 1 for a serial scan)",
        });
    }
    flags.reject_unknown(USAGE)?;

    // `associate_parallel(_, 1)` runs the same kernel as `associate` on
    // one worker (bit-identical results), so every thread count takes the
    // same code path.
    let result = associate_parallel(&data, threads)?;
    writeln!(
        out,
        "scanned {} variants over {} samples (K = {}, df = {})",
        result.len(),
        data.n_samples(),
        data.n_covariates(),
        result.df
    )?;
    summarize(&result, out)?;
    if let Some(path) = out_path {
        write_scan_tsv(&path, &result)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    Ok(())
}

/// Loads from `--dir` or from explicit `--y/--x/--c` paths.
pub(crate) fn load_input(flags: &Flags) -> Result<PartyData, CliError> {
    if let Some(dir) = flags.optional("dir") {
        return load_party_dir(&PathBuf::from(dir));
    }
    let (Some(yp), Some(xp), Some(cp)) = (
        flags.optional("y"),
        flags.optional("x"),
        flags.optional("c"),
    ) else {
        return Err(CliError::Usage(format!(
            "provide --dir, or all of --y/--x/--c\n{USAGE}"
        )));
    };
    let y_mat = read_matrix_tsv(&PathBuf::from(yp))?;
    if y_mat.cols() != 1 {
        return Err(CliError::Usage(
            "--y file must have exactly one column".into(),
        ));
    }
    let x = read_matrix_tsv(&PathBuf::from(xp))?;
    let c = read_matrix_tsv(&PathBuf::from(cp))?;
    Ok(PartyData::new(y_mat.col(0).to_vec(), x, c)?)
}

/// Prints hit counts and the best association.
pub(crate) fn summarize(
    result: &dash_core::model::ScanResult,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let gw = result.hits(5e-8).len();
    let sugg = result.hits(1e-5).len();
    writeln!(out, "hits: {gw} at p<5e-8, {sugg} at p<1e-5")?;
    if let Some((best, bp)) = result
        .p
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
    {
        writeln!(
            out,
            "top association: variant {best} (beta = {:.4}, p = {:.3e})",
            result.beta[best], bp
        )?;
    }
    if result.n_degenerate > 0 {
        writeln!(
            out,
            "note: {} degenerate variants (NaN)",
            result.n_degenerate
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scan_from_dir_and_write_results() {
        let dir = tmp_dir("scan");
        write_party(&dir, &toy_party(40, 6, 2, 1));
        let results = dir.join("res.tsv");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--out",
                results.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("scanned 6 variants over 40 samples"));
        assert!(results.is_file());
        let back = dash_gwas::io::read_scan_tsv(&results, 37).unwrap();
        assert_eq!(back.len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_from_explicit_paths_with_threads() {
        let dir = tmp_dir("scan2");
        write_party(&dir, &toy_party(30, 4, 1, 2));
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--y",
                dir.join("y.tsv").to_str().unwrap(),
                "--x",
                dir.join("x.tsv").to_str().unwrap(),
                "--c",
                dir.join("c.tsv").to_str().unwrap(),
                "--threads",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("top association"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_threads_rejected_loudly() {
        let dir = tmp_dir("scan0");
        write_party(&dir, &toy_party(20, 3, 1, 3));
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--threads", "0"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(
            matches!(&err, CliError::BadValue { flag, .. } if flag == "--threads"),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn one_thread_matches_serial_scan() {
        // `--threads 1` now routes through `associate_parallel`, which
        // must be bit-identical to the serial scan.
        let dir = tmp_dir("scan1");
        let party = toy_party(35, 5, 2, 4);
        write_party(&dir, &party);
        let mut buf = Vec::new();
        run(
            &argv(&["--dir", dir.to_str().unwrap(), "--threads", "1"]),
            &mut buf,
        )
        .unwrap();
        let serial = dash_core::scan::associate(&party).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(&format!("df = {}", serial.df)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_input_is_usage_error() {
        let mut buf = Vec::new();
        let err = run(&argv(&[]), &mut buf).unwrap_err();
        assert!(err.to_string().contains("--dir"));
    }
}
