//! `dash chaos` — socket-level fault-injection proxy for resilience
//! testing.
//!
//! Sits between one party and the rest of the mesh and injects the
//! failures a supervised transport must survive (or fail structurally
//! on): connection resets mid-stream, network partitions, stalls, and
//! slow-loris trickle. Point the *dialing* party's `--peers` entry for
//! the victim at the proxy's listen address; the proxy forwards to the
//! victim's real address.
//!
//! ```text
//! dash chaos --listen 127.0.0.1:9200 --upstream 127.0.0.1:9100 \
//!            --fault rst-after=4096 --policy first-connection &
//! dash party --id 1 --peers 127.0.0.1:9200,127.0.0.1:9101 ...
//! ```
//!
//! The proxy runs until killed (or until `--duration-ms` elapses) and
//! prints a connection/byte summary on exit.

use crate::args::Flags;
use crate::error::CliError;
use dash_mpc::chaos::{ChaosMode, ChaosPolicy, ChaosProxy};
use std::io::Write;
use std::net::TcpListener;
use std::time::Duration;

const USAGE: &str = "\
dash chaos — TCP fault-injection proxy (resilience testing)

REQUIRED:
    --listen ADDR     address to accept party connections on (host:port)
    --upstream ADDR   real address of the party being proxied

OPTIONS:
    --fault SPEC      fault to inject [default: passthrough]
                        passthrough           forward verbatim
                        rst-after=N           reset the connection after N bytes
                        stall-after=N:MS      forward N bytes, then freeze MS ms
                        slow-loris=CHUNK:MS   trickle CHUNK bytes every MS ms
                        partition-after=N:MS  after N bytes, black-hole ALL
                                              traffic for MS ms
    --policy P        which connections are faulted: every-connection |
                      first-connection [default: every-connection]
    --duration-ms N   stop after N ms (0 = run until killed) [default: 0]";

fn bad(flag: &str, value: &str, expected: &'static str) -> CliError {
    CliError::BadValue {
        flag: flag.into(),
        value: value.into(),
        expected,
    }
}

/// Parses `N:MS` pairs used by the stall/slow-loris/partition specs.
fn parse_pair(flag: &str, body: &str, expected: &'static str) -> Result<(u64, u64), CliError> {
    let (a, b) = body
        .split_once(':')
        .ok_or_else(|| bad(flag, body, expected))?;
    let a = a.parse().map_err(|_| bad(flag, body, expected))?;
    let b = b.parse().map_err(|_| bad(flag, body, expected))?;
    Ok((a, b))
}

/// Parses a `--fault` specification into a [`ChaosMode`].
pub(crate) fn parse_fault(raw: &str) -> Result<ChaosMode, CliError> {
    if raw == "passthrough" {
        return Ok(ChaosMode::Passthrough);
    }
    let (kind, body) = raw.split_once('=').ok_or_else(|| {
        bad(
            "--fault",
            raw,
            "passthrough | rst-after=N | stall-after=N:MS | slow-loris=CHUNK:MS | partition-after=N:MS",
        )
    })?;
    match kind {
        "rst-after" => {
            let n = body
                .parse()
                .map_err(|_| bad("--fault", raw, "rst-after=N with N a byte count"))?;
            Ok(ChaosMode::RstAfterBytes(n))
        }
        "stall-after" => {
            let (n, ms) = parse_pair("--fault", body, "stall-after=N:MS")?;
            Ok(ChaosMode::StallAfterBytes {
                bytes: n,
                stall: Duration::from_millis(ms),
            })
        }
        "slow-loris" => {
            let (chunk, ms) = parse_pair("--fault", body, "slow-loris=CHUNK:MS")?;
            if chunk == 0 {
                return Err(bad("--fault", raw, "a chunk size of at least 1 byte"));
            }
            Ok(ChaosMode::SlowLoris {
                chunk: chunk as usize,
                delay: Duration::from_millis(ms),
            })
        }
        "partition-after" => {
            let (n, ms) = parse_pair("--fault", body, "partition-after=N:MS")?;
            Ok(ChaosMode::PartitionAfterBytes {
                bytes: n,
                window: Duration::from_millis(ms),
            })
        }
        _ => Err(bad(
            "--fault",
            raw,
            "passthrough | rst-after=N | stall-after=N:MS | slow-loris=CHUNK:MS | partition-after=N:MS",
        )),
    }
}

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let listen = flags.required("listen", USAGE)?;
    let upstream_raw = flags.required("upstream", USAGE)?;
    let upstream = upstream_raw
        .parse()
        .map_err(|_| bad("--upstream", &upstream_raw, "a socket address (host:port)"))?;
    let fault = parse_fault(
        &flags
            .optional("fault")
            .unwrap_or_else(|| "passthrough".into()),
    )?;
    let policy_raw = flags
        .optional("policy")
        .unwrap_or_else(|| "every-connection".into());
    let policy = match policy_raw.as_str() {
        "every-connection" => ChaosPolicy::EveryConnection,
        "first-connection" => ChaosPolicy::FirstConnectionOnly,
        other => {
            return Err(bad(
                "--policy",
                other,
                "every-connection or first-connection",
            ))
        }
    };
    let duration_ms = flags.parse_or("duration-ms", 0u64, "milliseconds (0 = forever)")?;
    flags.reject_unknown(USAGE)?;

    let listener = TcpListener::bind(&listen)
        .map_err(|e| CliError::Usage(format!("cannot bind --listen {listen}: {e}")))?;
    let bound = listener.local_addr().map_err(CliError::Io)?;
    let proxy = ChaosProxy::start_on(listener, upstream, fault, policy).map_err(CliError::Io)?;
    writeln!(
        out,
        "chaos proxy on {bound} -> {upstream} fault={fault:?} policy={policy:?}"
    )?;
    out.flush()?;

    if duration_ms == 0 {
        // Foreground service: park until killed. The proxy threads do
        // the work; SIGTERM/SIGKILL is the expected exit.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    writeln!(
        out,
        "chaos proxy served {} connections, forwarded {} bytes",
        proxy.connections(),
        proxy.forwarded_bytes()
    )?;
    proxy.stop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpStream;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fault_specs_parse() {
        assert_eq!(parse_fault("passthrough").unwrap(), ChaosMode::Passthrough);
        assert_eq!(
            parse_fault("rst-after=512").unwrap(),
            ChaosMode::RstAfterBytes(512)
        );
        assert_eq!(
            parse_fault("stall-after=100:250").unwrap(),
            ChaosMode::StallAfterBytes {
                bytes: 100,
                stall: Duration::from_millis(250)
            }
        );
        assert_eq!(
            parse_fault("slow-loris=8:5").unwrap(),
            ChaosMode::SlowLoris {
                chunk: 8,
                delay: Duration::from_millis(5)
            }
        );
        assert_eq!(
            parse_fault("partition-after=64:1000").unwrap(),
            ChaosMode::PartitionAfterBytes {
                bytes: 64,
                window: Duration::from_millis(1000)
            }
        );
        for bogus in [
            "rst-after",
            "rst-after=x",
            "stall-after=5",
            "slow-loris=0:5",
            "meteor-strike=9",
        ] {
            assert!(parse_fault(bogus).is_err(), "{bogus} should not parse");
        }
    }

    #[test]
    fn bad_flags_rejected() {
        let mut buf = Vec::new();
        assert!(run(&argv(&[]), &mut buf).is_err());
        assert!(run(
            &argv(&["--listen", "127.0.0.1:0", "--upstream", "nope"]),
            &mut buf
        )
        .is_err());
        assert!(run(
            &argv(&[
                "--listen",
                "127.0.0.1:0",
                "--upstream",
                "127.0.0.1:1",
                "--fault",
                "bogus"
            ]),
            &mut buf
        )
        .is_err());
    }

    /// End-to-end through the command path: a timed passthrough proxy
    /// must relay bytes both ways and report its totals.
    #[test]
    fn timed_passthrough_relays() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            if let Ok((mut s, _)) = upstream.accept() {
                let mut buf = [0u8; 5];
                s.read_exact(&mut buf).ok();
                s.write_all(&buf).ok();
            }
        });

        // Reserve a port for the proxy, then run the command on it.
        let holder = TcpListener::bind("127.0.0.1:0").unwrap();
        let listen = holder.local_addr().unwrap().to_string();
        drop(holder);
        let listen_arg = listen.clone();
        let cmd = std::thread::spawn(move || {
            let mut buf = Vec::new();
            run(
                &argv(&[
                    "--listen",
                    &listen_arg,
                    "--upstream",
                    &up_addr.to_string(),
                    "--duration-ms",
                    "1500",
                ]),
                &mut buf,
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        });

        // Give the proxy a moment to bind, then bounce a message.
        let mut client = None;
        for _ in 0..50 {
            match TcpStream::connect(&listen) {
                Ok(s) => {
                    client = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("proxy did not come up");
        client.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        drop(client);
        echo.join().unwrap();

        let report = cmd.join().unwrap();
        assert!(report.contains("chaos proxy on"), "{report}");
        assert!(report.contains("served 1 connections"), "{report}");
        assert!(report.contains("forwarded 10 bytes"), "{report}");
    }
}
