//! `dash perm` — max-T permutation testing on one dataset.

use crate::args::Flags;
use crate::error::CliError;
use dash_core::permutation::permutation_scan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash perm — Westfall–Young max-T permutation scan (empirical
family-wise error control)

INPUT (either):
    --dir DIR              directory with y.tsv / x.tsv / c.tsv
    --y FILE --x FILE --c FILE   explicit paths

OPTIONS:
    --permutations B   number of permutations [default: 999]
    --alpha A          family-wise level for the threshold [default: 0.05]
    --seed S           RNG seed [default: 42]
    --out FILE         write per-variant table (variant, t, parametric p,
                       max-T adjusted p)";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let data = super::scan::load_input(&flags)?;
    let b = flags.parse_or("permutations", 999usize, "a positive integer")?;
    let alpha = flags.parse_or("alpha", 0.05f64, "a number in (0, 1)")?;
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    let out_path = flags.optional("out").map(PathBuf::from);
    flags.reject_unknown(USAGE)?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(CliError::BadValue {
            flag: "--alpha".into(),
            value: alpha.to_string(),
            expected: "a number in (0, 1)",
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let res = permutation_scan(&data, b, &mut rng)?;
    let threshold = res.threshold(alpha);
    writeln!(
        out,
        "{b} permutations over {} variants; empirical |t| threshold at FWER {alpha}: {threshold:.3}",
        res.observed.len()
    )?;
    let survivors: Vec<usize> = res
        .maxt_p
        .iter()
        .enumerate()
        .filter(|(_, &p)| p < alpha)
        .map(|(i, _)| i)
        .collect();
    writeln!(
        out,
        "variants significant after max-T adjustment: {}",
        survivors.len()
    )?;
    for &j in survivors.iter().take(10) {
        writeln!(
            out,
            "  variant {j}: t = {:.3}, parametric p = {:.2e}, adjusted p = {:.4}",
            res.observed.t[j], res.observed.p[j], res.maxt_p[j]
        )?;
    }
    if let Some(path) = out_path {
        let mut text = String::from("variant\tt\tp_parametric\tp_maxt\n");
        for j in 0..res.observed.len() {
            text.push_str(&format!(
                "{j}\t{}\t{}\t{}\n",
                res.observed.t[j], res.observed.p[j], res.maxt_p[j]
            ));
        }
        std::fs::write(&path, text)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_and_writes_table() {
        let dir = tmp_dir("perm");
        write_party(&dir, &toy_party(50, 4, 1, 1));
        let res = dir.join("perm.tsv");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--permutations",
                "49",
                "--out",
                res.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("49 permutations over 4 variants"));
        let table = std::fs::read_to_string(&res).unwrap();
        assert!(table.starts_with("variant\tt\tp_parametric\tp_maxt"));
        assert_eq!(table.lines().count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_flags_rejected() {
        let dir = tmp_dir("permbad");
        write_party(&dir, &toy_party(20, 2, 1, 2));
        let mut buf = Vec::new();
        assert!(run(
            &argv(&["--dir", dir.to_str().unwrap(), "--alpha", "1.5"]),
            &mut buf
        )
        .is_err());
        assert!(run(
            &argv(&["--dir", dir.to_str().unwrap(), "--permutations", "0"]),
            &mut buf
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
