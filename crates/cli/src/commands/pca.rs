//! `dash pca` — secure multi-party PCA over party directories.

use crate::args::Flags;
use crate::commands::load_all_parties;
use crate::error::CliError;
use dash_core::pca::{secure_pca, PcaConfig};
use dash_gwas::io::write_matrix_tsv;
use dash_linalg::Matrix;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash pca — secure distributed PCA of the variant covariance

REQUIRED:
    --dir DIR            directory containing party0/, party1/, …

OPTIONS:
    --components R       leading components [default: 4]
    --iterations I       subspace iterations [default: 20]
    --seed S             protocol seed [default: 42]
    --update-covariates BOOL
                         append each party's private PC scores to its
                         c.tsv (ready for a structure-corrected
                         secure-scan) [default: false]

Writes loadings.tsv (M x R, aggregate-level) into DIR and scores.tsv
(N_k x R, private) into each party directory.";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let dir = PathBuf::from(flags.required("dir", USAGE)?);
    let components = flags.parse_or("components", 4usize, "a positive integer")?;
    let iterations = flags.parse_or("iterations", 20usize, "a positive integer")?;
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    let update = flags.parse_or("update-covariates", false, "true or false")?;
    flags.reject_unknown(USAGE)?;

    let parties = load_all_parties(&dir)?;
    let cfg = PcaConfig {
        components,
        iterations,
        seed,
        ..Default::default()
    };
    let pca = secure_pca(&parties, &cfg)?;
    writeln!(
        out,
        "secure PCA over {} parties: {} components in {} iterations, {} bytes",
        parties.len(),
        components,
        iterations,
        pca.network.total_bytes
    )?;
    write!(out, "eigenvalues:")?;
    for v in &pca.eigenvalues {
        write!(out, " {v:.2}")?;
    }
    writeln!(out)?;
    write_matrix_tsv(&dir.join("loadings.tsv"), &pca.loadings)?;
    writeln!(
        out,
        "loadings written to {}",
        dir.join("loadings.tsv").display()
    )?;
    for (i, (party, scores)) in parties.iter().zip(&pca.scores).enumerate() {
        let pdir = dir.join(format!("party{i}"));
        write_matrix_tsv(&pdir.join("scores.tsv"), scores)?;
        if update {
            // c.tsv <- [old C | scores]
            let mut cols: Vec<Vec<f64>> = Vec::new();
            for j in 0..party.c().cols() {
                cols.push(party.c().col(j).to_vec());
            }
            for j in 0..scores.cols() {
                cols.push(scores.col(j).to_vec());
            }
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            write_matrix_tsv(&pdir.join("c.tsv"), &Matrix::from_cols(&refs)?)?;
        }
    }
    if update {
        writeln!(
            out,
            "per-party scores appended to each c.tsv — rerun `dash secure-scan` for the corrected analysis"
        )?;
    } else {
        writeln!(out, "per-party scores written to party*/scores.tsv")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn writes_loadings_and_scores() {
        let dir = tmp_dir("pca");
        write_party(&dir.join("party0"), &toy_party(40, 12, 1, 1));
        write_party(&dir.join("party1"), &toy_party(50, 12, 1, 2));
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--components",
                "2",
                "--iterations",
                "10",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("secure PCA over 2 parties"));
        let loadings = dash_gwas::io::read_matrix_tsv(&dir.join("loadings.tsv")).unwrap();
        assert_eq!(loadings.shape(), (12, 2));
        let s0 = dash_gwas::io::read_matrix_tsv(&dir.join("party0/scores.tsv")).unwrap();
        assert_eq!(s0.shape(), (40, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_covariates_appends_scores() {
        let dir = tmp_dir("pcaup");
        write_party(&dir.join("party0"), &toy_party(30, 8, 2, 3));
        write_party(&dir.join("party1"), &toy_party(35, 8, 2, 4));
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--components",
                "1",
                "--update-covariates",
                "true",
            ]),
            &mut buf,
        )
        .unwrap();
        let c0 = dash_gwas::io::read_matrix_tsv(&dir.join("party0/c.tsv")).unwrap();
        assert_eq!(c0.shape(), (30, 3)); // 2 original + 1 PC
                                         // The updated directory still loads as a valid party set.
        let parties = crate::commands::load_all_parties(&dir).unwrap();
        assert_eq!(parties[0].n_covariates(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_component_count_propagates() {
        let dir = tmp_dir("pcabad");
        write_party(&dir.join("party0"), &toy_party(20, 4, 1, 5));
        let mut buf = Vec::new();
        assert!(run(
            &argv(&["--dir", dir.to_str().unwrap(), "--components", "9"]),
            &mut buf
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
