//! Subcommand implementations.

pub mod chaos;
pub mod meta;
pub mod party;
pub mod pca;
pub mod perm;
pub mod scan;
pub mod secure_scan;
pub mod simulate;
pub mod top;

use crate::error::CliError;
use dash_core::model::PartyData;
use dash_core::secure::{AggregationMode, RFactorMode, SecureScanConfig, SecureScanOutput};
use dash_gwas::io::read_matrix_tsv;
use std::io::Write;
use std::path::Path;

/// Loads one dataset from a directory holding `y.tsv` (N×1), `x.tsv`
/// (N×M) and `c.tsv` (N×K).
pub(crate) fn load_party_dir(dir: &Path) -> Result<PartyData, CliError> {
    let y_mat = read_matrix_tsv(&dir.join("y.tsv"))?;
    if y_mat.cols() != 1 {
        return Err(CliError::Usage(format!(
            "{}/y.tsv must have exactly one column, found {}",
            dir.display(),
            y_mat.cols()
        )));
    }
    let y = y_mat.col(0).to_vec();
    let x = read_matrix_tsv(&dir.join("x.tsv"))?;
    let c = read_matrix_tsv(&dir.join("c.tsv"))?;
    Ok(PartyData::new(y, x, c)?)
}

/// Maps a `--mode` name to the matching security-ladder configuration
/// (shared by `secure-scan` and `party` so the two paths cannot drift).
pub(crate) fn mode_config(mode: &str, seed: u64) -> Result<SecureScanConfig, CliError> {
    match mode {
        "public" => Ok(SecureScanConfig {
            rfactor: RFactorMode::PublicStack,
            aggregation: AggregationMode::Public,
            seed,
            ..SecureScanConfig::default()
        }),
        "default" => Ok(SecureScanConfig::paper_default(seed)),
        "star" => Ok(SecureScanConfig {
            aggregation: AggregationMode::MaskedStar,
            seed,
            ..SecureScanConfig::default()
        }),
        "tree" => Ok(SecureScanConfig {
            rfactor: RFactorMode::PairwiseTree,
            aggregation: AggregationMode::MaskedPrg,
            seed,
            ..SecureScanConfig::default()
        }),
        "max" => Ok(SecureScanConfig::max_security(seed)),
        other => Err(CliError::BadValue {
            flag: "--mode".into(),
            value: other.into(),
            expected: "one of public|default|star|tree|max",
        }),
    }
}

/// Prints the standard secure-scan report (traffic, transport counters,
/// blocked-pipeline summary, disclosure audit, top results). Shared by
/// `secure-scan` and `party` so their outputs stay line-compatible —
/// the multi-process smoke test parses both with the same patterns.
pub(crate) fn report_secure_output(
    out: &mut dyn Write,
    output: &SecureScanOutput,
    mode: &str,
    block_size: Option<usize>,
    threads: usize,
    audit: bool,
) -> Result<(), CliError> {
    writeln!(
        out,
        "secure scan over {} parties, {} variants (mode: {mode})",
        output.n_parties,
        output.result.len()
    )?;
    writeln!(
        out,
        "traffic: {} bytes total, {} bytes worst party, {} messages",
        output.network.total_bytes, output.network.max_party_bytes, output.network.total_messages
    )?;
    writeln!(
        out,
        "simulated network time: LAN {:.1} ms, WAN {:.1} ms",
        output.network.lan_seconds * 1e3,
        output.network.wan_seconds * 1e3
    )?;
    writeln!(
        out,
        "transport: {} send retries, {} receive timeouts",
        output.network.total_retries, output.network.total_timeouts
    )?;
    if !output.per_block_bytes.is_empty() {
        let block_total: u64 = output.per_block_bytes.iter().sum();
        writeln!(
            out,
            "blocked pipeline: {} blocks of <= {} variants, {} bytes in block rounds ({} bytes/block avg), {} threads",
            output.per_block_bytes.len(),
            block_size.unwrap_or(0),
            block_total,
            block_total / output.per_block_bytes.len() as u64,
            threads,
        )?;
    }
    let per_party: usize = output
        .disclosures
        .iter()
        .filter(|d| d.source_party.is_some())
        .map(|d| d.scalars)
        .sum();
    writeln!(out, "per-party scalars disclosed: {per_party}")?;
    if audit {
        writeln!(out, "disclosure log:")?;
        for d in &output.disclosures {
            writeln!(out, "  {d}")?;
        }
    }
    Ok(())
}

/// Loads `party0/ party1/ …` subdirectories of `dir`, in order.
pub(crate) fn load_all_parties(dir: &Path) -> Result<Vec<PartyData>, CliError> {
    let mut parties = Vec::new();
    loop {
        let pdir = dir.join(format!("party{}", parties.len()));
        if !pdir.is_dir() {
            break;
        }
        parties.push(load_party_dir(&pdir)?);
    }
    if parties.is_empty() {
        return Err(CliError::Usage(format!(
            "no party0/ subdirectory found under {}",
            dir.display()
        )));
    }
    Ok(parties)
}

#[cfg(test)]
pub(crate) mod test_support {
    use dash_core::model::PartyData;
    use dash_gwas::io::write_matrix_tsv;
    use dash_linalg::Matrix;
    use std::path::PathBuf;

    /// Unique temp directory for one test.
    pub fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dash_cli_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a party's data as y/x/c TSVs into `dir`.
    pub fn write_party(dir: &std::path::Path, p: &PartyData) {
        std::fs::create_dir_all(dir).unwrap();
        let y = Matrix::from_cols(&[p.y()]).unwrap();
        write_matrix_tsv(&dir.join("y.tsv"), &y).unwrap();
        write_matrix_tsv(&dir.join("x.tsv"), p.x()).unwrap();
        write_matrix_tsv(&dir.join("c.tsv"), p.c()).unwrap();
    }

    /// A small deterministic dataset.
    pub fn toy_party(n: usize, m: usize, k: usize, seed: u64) -> PartyData {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        PartyData::new(
            dash_gwas::pheno::normal_vec(n, &mut rng),
            dash_gwas::pheno::normal_matrix(n, m, &mut rng),
            dash_gwas::pheno::normal_matrix(n, k, &mut rng),
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn load_roundtrip() {
        let dir = tmp_dir("load");
        let p = toy_party(12, 3, 2, 1);
        write_party(&dir.join("party0"), &p);
        write_party(&dir.join("party1"), &toy_party(8, 3, 2, 2));
        let loaded = load_all_parties(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_parties_rejected() {
        let dir = tmp_dir("empty");
        assert!(load_all_parties(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wide_y_rejected() {
        let dir = tmp_dir("widey");
        let p = toy_party(5, 2, 1, 3);
        write_party(&dir, &p);
        // Overwrite y with two columns.
        let bad = dash_linalg::Matrix::zeros(5, 2);
        dash_gwas::io::write_matrix_tsv(&dir.join("y.tsv"), &bad).unwrap();
        assert!(load_party_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
