//! Subcommand implementations.

pub mod meta;
pub mod pca;
pub mod perm;
pub mod scan;
pub mod secure_scan;
pub mod simulate;
pub mod top;

use crate::error::CliError;
use dash_core::model::PartyData;
use dash_gwas::io::read_matrix_tsv;
use std::path::Path;

/// Loads one dataset from a directory holding `y.tsv` (N×1), `x.tsv`
/// (N×M) and `c.tsv` (N×K).
pub(crate) fn load_party_dir(dir: &Path) -> Result<PartyData, CliError> {
    let y_mat = read_matrix_tsv(&dir.join("y.tsv"))?;
    if y_mat.cols() != 1 {
        return Err(CliError::Usage(format!(
            "{}/y.tsv must have exactly one column, found {}",
            dir.display(),
            y_mat.cols()
        )));
    }
    let y = y_mat.col(0).to_vec();
    let x = read_matrix_tsv(&dir.join("x.tsv"))?;
    let c = read_matrix_tsv(&dir.join("c.tsv"))?;
    Ok(PartyData::new(y, x, c)?)
}

/// Loads `party0/ party1/ …` subdirectories of `dir`, in order.
pub(crate) fn load_all_parties(dir: &Path) -> Result<Vec<PartyData>, CliError> {
    let mut parties = Vec::new();
    loop {
        let pdir = dir.join(format!("party{}", parties.len()));
        if !pdir.is_dir() {
            break;
        }
        parties.push(load_party_dir(&pdir)?);
    }
    if parties.is_empty() {
        return Err(CliError::Usage(format!(
            "no party0/ subdirectory found under {}",
            dir.display()
        )));
    }
    Ok(parties)
}

#[cfg(test)]
pub(crate) mod test_support {
    use dash_core::model::PartyData;
    use dash_gwas::io::write_matrix_tsv;
    use dash_linalg::Matrix;
    use std::path::PathBuf;

    /// Unique temp directory for one test.
    pub fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dash_cli_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a party's data as y/x/c TSVs into `dir`.
    pub fn write_party(dir: &std::path::Path, p: &PartyData) {
        std::fs::create_dir_all(dir).unwrap();
        let y = Matrix::from_cols(&[p.y()]).unwrap();
        write_matrix_tsv(&dir.join("y.tsv"), &y).unwrap();
        write_matrix_tsv(&dir.join("x.tsv"), p.x()).unwrap();
        write_matrix_tsv(&dir.join("c.tsv"), p.c()).unwrap();
    }

    /// A small deterministic dataset.
    pub fn toy_party(n: usize, m: usize, k: usize, seed: u64) -> PartyData {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        PartyData::new(
            dash_gwas::pheno::normal_vec(n, &mut rng),
            dash_gwas::pheno::normal_matrix(n, m, &mut rng),
            dash_gwas::pheno::normal_matrix(n, k, &mut rng),
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn load_roundtrip() {
        let dir = tmp_dir("load");
        let p = toy_party(12, 3, 2, 1);
        write_party(&dir.join("party0"), &p);
        write_party(&dir.join("party1"), &toy_party(8, 3, 2, 2));
        let loaded = load_all_parties(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_parties_rejected() {
        let dir = tmp_dir("empty");
        assert!(load_all_parties(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wide_y_rejected() {
        let dir = tmp_dir("widey");
        let p = toy_party(5, 2, 1, 3);
        write_party(&dir, &p);
        // Overwrite y with two columns.
        let bad = dash_linalg::Matrix::zeros(5, 2);
        dash_gwas::io::write_matrix_tsv(&dir.join("y.tsv"), &bad).unwrap();
        assert!(load_party_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
