//! `dash meta` — inverse-variance meta-analysis of per-party scans.

use crate::args::Flags;
use crate::commands::load_all_parties;
use crate::error::CliError;
use dash_core::meta::meta_analyze_scan;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash meta — per-party scans combined by fixed-effect meta-analysis

REQUIRED:
    --dir DIR       directory containing party0/, party1/, …

OPTIONS:
    --out FILE      write results TSV (variant, beta, se, z, p, q, i2)
    --alpha A       significance threshold for the summary [default: 1e-5]";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let dir = PathBuf::from(flags.required("dir", USAGE)?);
    let out_path = flags.optional("out").map(PathBuf::from);
    let alpha = flags.parse_or("alpha", 1e-5f64, "a number in (0, 1)")?;
    flags.reject_unknown(USAGE)?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(CliError::BadValue {
            flag: "--alpha".into(),
            value: alpha.to_string(),
            expected: "a number in (0, 1)",
        });
    }

    let parties = load_all_parties(&dir)?;
    let meta = meta_analyze_scan(&parties)?;
    writeln!(
        out,
        "meta-analyzed {} variants across {} parties",
        meta.len(),
        meta.n_parties
    )?;
    writeln!(out, "hits at p<{alpha:e}: {}", meta.hits(alpha).len())?;
    let het = meta
        .q_p
        .iter()
        .filter(|q| q.is_finite() && **q < 0.05)
        .count();
    writeln!(out, "variants with heterogeneity (Cochran Q p<0.05): {het}")?;
    if let Some(path) = out_path {
        let mut text = String::from("variant\tbeta\tse\tz\tp\tq\ti2\n");
        for j in 0..meta.len() {
            text.push_str(&format!(
                "{j}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                meta.beta[j], meta.se[j], meta.z[j], meta.p[j], meta.q[j], meta.i_squared[j]
            ));
        }
        std::fs::write(&path, text)?;
        writeln!(out, "results written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn meta_runs_and_writes() {
        let dir = tmp_dir("meta");
        write_party(&dir.join("party0"), &toy_party(40, 4, 1, 1));
        write_party(&dir.join("party1"), &toy_party(35, 4, 1, 2));
        let res = dir.join("meta.tsv");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--dir",
                dir.to_str().unwrap(),
                "--out",
                res.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("meta-analyzed 4 variants across 2 parties"));
        let written = std::fs::read_to_string(&res).unwrap();
        assert!(written.starts_with("variant\tbeta"));
        assert_eq!(written.lines().count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_alpha_rejected() {
        let dir = tmp_dir("metabad");
        write_party(&dir.join("party0"), &toy_party(20, 2, 1, 3));
        let mut buf = Vec::new();
        let err = run(
            &argv(&["--dir", dir.to_str().unwrap(), "--alpha", "2.0"]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--alpha"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
