//! `dash top` — show the strongest associations from a results file.

use crate::args::Flags;
use crate::error::CliError;
use dash_gwas::io::read_scan_tsv;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash top — strongest associations from a results TSV (written by
`dash scan` / `dash secure-scan`)

REQUIRED:
    --results FILE

OPTIONS:
    --alpha A       only show variants with p < A [default: show all]
    --limit L       maximum rows [default: 10]";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let path = PathBuf::from(flags.required("results", USAGE)?);
    let alpha = flags.parse_or("alpha", 1.0f64, "a number in (0, 1]")?;
    let limit = flags.parse_or("limit", 10usize, "a positive integer")?;
    flags.reject_unknown(USAGE)?;

    // df is irrelevant for ranking; p-values are already in the file.
    let res = read_scan_tsv(&path, 1)?;
    let q = dash_stats::benjamini_hochberg(&res.p);
    let mut order: Vec<usize> = (0..res.len())
        .filter(|&j| res.p[j].is_finite() && res.p[j] < alpha)
        .collect();
    order.sort_by(|&a, &b| res.p[a].partial_cmp(&res.p[b]).unwrap());
    writeln!(
        out,
        "{} of {} variants pass p < {alpha:e}; showing up to {limit}",
        order.len(),
        res.len()
    )?;
    writeln!(out, "variant\tbeta\tse\tt\tp\tq(BH)")?;
    for &j in order.iter().take(limit) {
        writeln!(
            out,
            "{j}\t{:.6}\t{:.6}\t{:.3}\t{:.3e}\t{:.3e}",
            res.beta[j], res.se[j], res.t[j], res.p[j], q[j]
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::tmp_dir;
    use dash_core::model::ScanResult;
    use dash_gwas::io::write_scan_tsv;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn sample_results(path: &std::path::Path) {
        let res = ScanResult {
            beta: vec![0.1, -0.8, 0.4, f64::NAN],
            se: vec![0.1, 0.1, 0.1, f64::NAN],
            t: vec![1.0, -8.0, 4.0, f64::NAN],
            p: vec![0.3, 1e-12, 1e-4, f64::NAN],
            df: 100,
            n_degenerate: 1,
        };
        write_scan_tsv(path, &res).unwrap();
    }

    #[test]
    fn ranks_by_p_and_filters() {
        let dir = tmp_dir("top");
        let file = dir.join("res.tsv");
        sample_results(&file);
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--results",
                file.to_str().unwrap(),
                "--alpha",
                "1e-3",
                "--limit",
                "5",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2 of 4 variants"));
        // Best first.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with("1\t"));
        assert!(lines[3].starts_with("2\t"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn limit_respected() {
        let dir = tmp_dir("toplim");
        let file = dir.join("res.tsv");
        sample_results(&file);
        let mut buf = Vec::new();
        run(
            &argv(&["--results", file.to_str().unwrap(), "--limit", "1"]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Header + count line + exactly 1 data row.
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reported() {
        let mut buf = Vec::new();
        assert!(run(&argv(&["--results", "/nonexistent.tsv"]), &mut buf).is_err());
    }
}
