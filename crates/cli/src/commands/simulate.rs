//! `dash simulate` — generate a synthetic multi-party GWAS workload.

use crate::args::Flags;
use crate::error::CliError;
use dash_gwas::io::write_matrix_tsv;
use dash_gwas::structure::{simulate_structured_cohorts, StructuredSimConfig};
use dash_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
dash simulate — generate party0/, party1/, … with y.tsv / x.tsv / c.tsv

REQUIRED:
    --out DIR              output directory (created if missing)
    --samples N0,N1,…      samples per party

OPTIONS:
    --variants M           number of variants        [default: 1000]
    --causal C             planted causal variants   [default: 10]
    --h2 H                 heritability in [0, 1)    [default: 0.3]
    --covariates K         iid covariate columns     [default: 2]
    --fst F                Balding–Nichols F_ST      [default: 0.02]
    --missing R            missing-call rate         [default: 0.0]
    --seed S               RNG seed                  [default: 42]

Also writes truth.tsv (causal variant indices and effects).";

/// Runs the subcommand.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = Flags::parse(args, USAGE)?;
    let out_dir = PathBuf::from(flags.required("out", USAGE)?);
    let sizes = flags.usize_list("samples", USAGE)?;
    let variants = flags.parse_or("variants", 1000usize, "a positive integer")?;
    let causal = flags.parse_or("causal", 10usize, "a non-negative integer")?;
    let h2 = flags.parse_or("h2", 0.3f64, "a number in [0, 1)")?;
    let covariates = flags.parse_or("covariates", 2usize, "a non-negative integer")?;
    let fst = flags.parse_or("fst", 0.02f64, "a number in [0, 1)")?;
    let missing = flags.parse_or("missing", 0.0f64, "a number in [0, 1)")?;
    let seed = flags.parse_or("seed", 42u64, "an integer seed")?;
    flags.reject_unknown(USAGE)?;

    let cfg = StructuredSimConfig {
        party_sizes: sizes.clone(),
        n_variants: variants,
        fst,
        party_offsets: vec![],
        n_causal: causal,
        heritability: h2,
        k_covariates: covariates,
        missing_rate: missing,
        standardize_within_party: true,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let sim = simulate_structured_cohorts(&cfg, &mut rng)?;

    std::fs::create_dir_all(&out_dir)?;
    for (i, party) in sim.parties.iter().enumerate() {
        let pdir = out_dir.join(format!("party{i}"));
        std::fs::create_dir_all(&pdir)?;
        let y = Matrix::from_cols(&[party.y()])?;
        write_matrix_tsv(&pdir.join("y.tsv"), &y)?;
        write_matrix_tsv(&pdir.join("x.tsv"), party.x())?;
        write_matrix_tsv(&pdir.join("c.tsv"), party.c())?;
    }
    // Ground truth for scoring.
    let mut truth = String::from("variant\teffect\n");
    for (v, e) in sim.causal.iter().zip(&sim.effects) {
        truth.push_str(&format!("{v}\t{e}\n"));
    }
    std::fs::write(out_dir.join("truth.tsv"), truth)?;

    writeln!(
        out,
        "wrote {} parties ({} samples total), M = {variants}, K = {covariates} to {}",
        sim.parties.len(),
        sizes.iter().sum::<usize>(),
        out_dir.display()
    )?;
    writeln!(
        out,
        "planted {} causal variants (truth.tsv)",
        sim.causal.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::tmp_dir;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn writes_expected_layout() {
        let dir = tmp_dir("sim");
        let mut buf = Vec::new();
        run(
            &argv(&[
                "--out",
                dir.to_str().unwrap(),
                "--samples",
                "30,40",
                "--variants",
                "20",
                "--causal",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();
        assert!(dir.join("party0/y.tsv").is_file());
        assert!(dir.join("party1/x.tsv").is_file());
        assert!(dir.join("truth.tsv").is_file());
        assert!(!dir.join("party2").exists());
        let parties = crate::commands::load_all_parties(&dir).unwrap();
        assert_eq!(parties[0].n_samples(), 30);
        assert_eq!(parties[1].n_variants(), 20);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("wrote 2 parties"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_required_flags() {
        let mut buf = Vec::new();
        assert!(run(&argv(&["--samples", "10"]), &mut buf).is_err());
        assert!(run(&argv(&["--out", "/tmp/x"]), &mut buf).is_err());
        assert!(run(
            &argv(&["--out", "/tmp/x", "--samples", "10", "--bogus", "1"]),
            &mut buf
        )
        .is_err());
    }

    #[test]
    fn bad_h2_propagates() {
        let dir = tmp_dir("badh2");
        let mut buf = Vec::new();
        let err = run(
            &argv(&[
                "--out",
                dir.to_str().unwrap(),
                "--samples",
                "20",
                "--h2",
                "1.5",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.to_string().contains("heritability"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
