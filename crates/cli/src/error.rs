//! CLI error type.

use std::fmt;

/// Errors surfaced to the terminal user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message includes usage text.
    Usage(String),
    /// A flag value failed to parse.
    BadValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    /// IO failure.
    Io(std::io::Error),
    /// An analysis failed.
    Core(dash_core::CoreError),
    /// Workload IO/parsing failed.
    Gwas(dash_gwas::GwasError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "invalid value {value:?} for {flag}: expected {expected}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Core(e) => write!(f, "analysis error: {e}"),
            CliError::Gwas(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<dash_core::CoreError> for CliError {
    fn from(e: dash_core::CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<dash_gwas::GwasError> for CliError {
    fn from(e: dash_gwas::GwasError) -> Self {
        CliError::Gwas(e)
    }
}

impl From<dash_linalg::LinalgError> for CliError {
    fn from(e: dash_linalg::LinalgError) -> Self {
        CliError::Core(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CliError::BadValue {
            flag: "--alpha".into(),
            value: "abc".into(),
            expected: "a number in (0, 1)",
        };
        let s = e.to_string();
        assert!(s.contains("--alpha") && s.contains("abc"));
        let e: CliError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
