//! Minimal `--flag value` argument parsing (no external dependency).

use crate::error::CliError;
use std::collections::BTreeMap;

/// Parsed flags: every argument must be a `--flag value` pair.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    /// Flags a command actually consumed (for unknown-flag errors).
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Flags {
    /// Parses `--flag value` pairs; rejects positional arguments and
    /// flags without values.
    pub fn parse(args: &[String], usage: &str) -> Result<Flags, CliError> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {arg:?}\n{usage}"
                )));
            };
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!(
                    "flag --{name} is missing a value\n{usage}"
                )));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(CliError::Usage(format!(
                    "flag --{name} given twice\n{usage}"
                )));
            }
        }
        Ok(Flags {
            values,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// A required string flag.
    pub fn required(&self, name: &str, usage: &str) -> Result<String, CliError> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values
            .get(name)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}\n{usage}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<String> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.get(name).cloned()
    }

    /// An optional typed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.optional(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::BadValue {
                flag: format!("--{name}"),
                value: raw,
                expected,
            }),
        }
    }

    /// A comma-separated list of usize (e.g. `--samples 500,600,700`).
    pub fn usize_list(&self, name: &str, usage: &str) -> Result<Vec<usize>, CliError> {
        let raw = self.required(name, usage)?;
        raw.split(',')
            .map(|tok| {
                tok.trim().parse().map_err(|_| CliError::BadValue {
                    flag: format!("--{name}"),
                    value: raw.clone(),
                    expected: "comma-separated positive integers",
                })
            })
            .collect()
    }

    /// Errors on any flag the command did not consume (typo protection).
    pub fn reject_unknown(&self, usage: &str) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for name in self.values.keys() {
            if !consumed.iter().any(|c| c == name) {
                return Err(CliError::Usage(format!("unknown flag --{name}\n{usage}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Flags, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Flags::parse(&v, "usage")
    }

    #[test]
    fn pairs_parse() {
        let f = parse(&["--a", "1", "--b", "x"]).unwrap();
        assert_eq!(f.required("a", "u").unwrap(), "1");
        assert_eq!(f.optional("b"), Some("x".into()));
        assert_eq!(f.optional("c"), None);
        f.reject_unknown("u").unwrap();
    }

    #[test]
    fn positional_rejected() {
        assert!(parse(&["oops"]).is_err());
        assert!(parse(&["--a"]).is_err());
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn typed_defaults_and_errors() {
        let f = parse(&["--n", "42"]).unwrap();
        assert_eq!(f.parse_or("n", 0usize, "int").unwrap(), 42);
        assert_eq!(f.parse_or("m", 7usize, "int").unwrap(), 7);
        let f = parse(&["--n", "abc"]).unwrap();
        assert!(f.parse_or("n", 0usize, "int").is_err());
    }

    #[test]
    fn lists() {
        let f = parse(&["--sizes", "10, 20,30"]).unwrap();
        assert_eq!(f.usize_list("sizes", "u").unwrap(), vec![10, 20, 30]);
        let f = parse(&["--sizes", "10,x"]).unwrap();
        assert!(f.usize_list("sizes", "u").is_err());
    }

    #[test]
    fn unknown_flag_detected() {
        let f = parse(&["--known", "1", "--typo", "2"]).unwrap();
        let _ = f.optional("known");
        let err = f.reject_unknown("usage").unwrap_err();
        assert!(err.to_string().contains("--typo"));
    }
}
