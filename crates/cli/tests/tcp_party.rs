//! End-to-end acceptance test for the multi-process TCP deployment:
//! three real `dash party` OS processes over loopback must produce
//! results bit-identical to one `dash secure-scan` process, with the
//! per-party traffic totals summing to the in-process total and the
//! per-party disclosure logs unioning to the in-process log.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DASH: &str = env!("CARGO_BIN_EXE_dash");
const SEED: &str = "99";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dash_tcp_party_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `dash` to completion (no watchdog needed for local commands).
fn dash(args: &[&str]) -> String {
    let out = Command::new(DASH).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "dash {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Waits for `child` with a deadline, killing it on expiry.
fn wait_with_watchdog(child: &mut Child, deadline: Duration, what: &str) -> bool {
    let start = Instant::now();
    loop {
        match child.try_wait().unwrap() {
            Some(status) => return status.success(),
            None if start.elapsed() > deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("{what}: party process hung past {deadline:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The `N` from this tool's "traffic: N bytes total, …" report line.
fn traffic_bytes(text: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with("traffic:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no traffic line in:\n{text}"))
}

/// The indented entries under "disclosure log:", as a sorted multiset.
fn disclosure_multiset(text: &str) -> Vec<String> {
    let mut entries = Vec::new();
    let mut in_log = false;
    for line in text.lines() {
        if line == "disclosure log:" {
            in_log = true;
        } else if in_log {
            if let Some(entry) = line.strip_prefix("  ") {
                entries.push(entry.to_string());
            } else {
                in_log = false;
            }
        }
    }
    entries.sort();
    entries
}

#[test]
fn three_party_processes_match_single_process_scan() {
    let dir = tmp_dir("e2e");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "20,25,15",
        "--variants",
        "12",
        "--covariates",
        "2",
        "--seed",
        "5",
    ]);

    // Reserve three loopback ports, then free them for the parties.
    let holders: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers = holders
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect::<Vec<_>>()
        .join(",");
    drop(holders);

    let spawn_party = |i: usize| -> Child {
        Command::new(DASH)
            .args([
                "party",
                "--id",
                &i.to_string(),
                "--peers",
                &peers,
                "--dir",
                dir.join(format!("party{i}")).to_str().unwrap(),
                "--seed",
                SEED,
                "--out",
                dir.join(format!("res{i}.tsv")).to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap()
    };
    let mut children: Vec<Child> = (0..3).map(spawn_party).collect();

    // Drain stdout concurrently so a party can't block on a full pipe.
    let readers: Vec<_> = children
        .iter_mut()
        .map(|c| {
            let mut stdout = c.stdout.take().unwrap();
            std::thread::spawn(move || {
                use std::io::Read;
                let mut text = String::new();
                stdout.read_to_string(&mut text).unwrap();
                text
            })
        })
        .collect();
    for (i, child) in children.iter_mut().enumerate() {
        assert!(
            wait_with_watchdog(child, Duration::from_secs(120), &format!("party {i}")),
            "party {i} exited nonzero"
        );
    }
    let outputs: Vec<String> = readers.into_iter().map(|r| r.join().unwrap()).collect();

    // Reference run: same workload, same seed, one process.
    let ref_text = dash(&[
        "secure-scan",
        "--dir",
        dir.to_str().unwrap(),
        "--seed",
        SEED,
        "--out",
        dir.join("ref.tsv").to_str().unwrap(),
    ]);

    // Bit-identical result files at every party and vs the reference.
    let want = std::fs::read_to_string(dir.join("ref.tsv")).unwrap();
    assert!(!want.is_empty());
    for i in 0..3 {
        let got = std::fs::read_to_string(dir.join(format!("res{i}.tsv"))).unwrap();
        assert_eq!(got, want, "party {i} results differ from secure-scan");
    }

    // Each process reports its own outbound bytes; the three partition
    // the in-process total exactly (same sender-side accounting point).
    let per_party: u64 = outputs.iter().map(|t| traffic_bytes(t)).sum();
    assert_eq!(per_party, traffic_bytes(&ref_text), "traffic totals");

    // Each party logs what it opened; the union is the shared log.
    let mut union: Vec<String> = outputs
        .iter()
        .flat_map(|t| disclosure_multiset(t))
        .collect();
    union.sort();
    assert_eq!(union, disclosure_multiset(&ref_text), "disclosure logs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn party_rejects_wrong_run_id() {
    // A party from a different run must be refused at the handshake —
    // fast, structured, before any protocol data flows.
    let dir = tmp_dir("runid");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "8,9",
        "--variants",
        "4",
        "--causal",
        "2",
        "--seed",
        "6",
    ]);
    let holders: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers = holders
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect::<Vec<_>>()
        .join(",");
    drop(holders);

    let spawn = |i: usize, run_id: &str| -> Child {
        Command::new(DASH)
            .args([
                "party",
                "--id",
                &i.to_string(),
                "--peers",
                &peers,
                "--dir",
                dir.join(format!("party{i}")).to_str().unwrap(),
                "--seed",
                SEED,
                "--run-id",
                run_id,
                "--connect-retries",
                "5",
                "--accept-timeout-ms",
                "10000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap()
    };
    let mut a = spawn(0, "111");
    let mut b = spawn(1, "222");
    let ok_a = wait_with_watchdog(&mut a, Duration::from_secs(60), "party 0");
    let ok_b = wait_with_watchdog(&mut b, Duration::from_secs(60), "party 1");
    assert!(
        !ok_a && !ok_b,
        "mismatched run ids must fail both parties (got {ok_a}/{ok_b})"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Guard for the helper itself: the reference parsers must agree with
/// the real report format (a silent format drift would turn the main
/// assertions vacuous).
#[test]
fn report_parsers_see_real_output() {
    let dir = tmp_dir("fmt");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "8,9",
        "--variants",
        "4",
        "--causal",
        "2",
        "--seed",
        "6",
    ]);
    let text = dash(&[
        "secure-scan",
        "--dir",
        dir.to_str().unwrap(),
        "--seed",
        SEED,
    ]);
    assert!(traffic_bytes(&text) > 0);
    assert!(
        !disclosure_multiset(&text).is_empty(),
        "default mode disclosures expected:\n{text}"
    );
    let _ = Path::new(DASH);
    std::fs::remove_dir_all(&dir).ok();
}
