//! Crash-recovery acceptance for the multi-process deployment: one
//! `dash party` process dies the way `kill -9` kills it (no unwinding,
//! no flush) right after a block boundary's checkpoint became durable,
//! is restarted with `--resume`, and the fleet's final result TSVs,
//! traffic totals and disclosure multisets must be byte-identical to an
//! uninterrupted run of the same workload and seed.
//!
//! Also covers the unrecoverable paths: a crashed peer that never comes
//! back must fail the survivors with a structured liveness error inside
//! the reconnect window (never a hang), and a resume under a different
//! protocol seed must be refused as belonging to a different run.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

const DASH: &str = env!("CARGO_BIN_EXE_dash");
const SEED: &str = "99";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dash_crash_resume_{tag}_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `dash` to completion (local commands need no watchdog).
fn dash(args: &[&str]) -> String {
    let out = Command::new(DASH).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "dash {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Waits for `child` with a deadline, killing it on expiry. Returns the
/// exit status so callers can assert on crash vs clean exit.
fn wait_with_watchdog(child: &mut Child, deadline: Duration, what: &str) -> ExitStatus {
    let start = Instant::now();
    loop {
        match child.try_wait().unwrap() {
            Some(status) => return status,
            None if start.elapsed() > deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("{what}: party process hung past {deadline:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Reserves `n` distinct loopback ports and frees them for the parties.
fn reserve_peers(n: usize) -> String {
    let holders: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers = holders
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect::<Vec<_>>()
        .join(",");
    drop(holders);
    peers
}

/// Drains a child's stdout on a thread so a full pipe can't block it.
fn drain_stdout(child: &mut Child) -> std::thread::JoinHandle<String> {
    let mut stdout = child.stdout.take().unwrap();
    std::thread::spawn(move || {
        use std::io::Read;
        let mut text = String::new();
        stdout.read_to_string(&mut text).ok();
        text
    })
}

/// The `N` from the "traffic: N bytes total, …" report line.
fn traffic_bytes(text: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with("traffic:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no traffic line in:\n{text}"))
}

/// The indented entries under "disclosure log:", as a sorted multiset.
fn disclosure_multiset(text: &str) -> Vec<String> {
    let mut entries = Vec::new();
    let mut in_log = false;
    for line in text.lines() {
        if line == "disclosure log:" {
            in_log = true;
        } else if in_log {
            if let Some(entry) = line.strip_prefix("  ") {
                entries.push(entry.to_string());
            } else {
                in_log = false;
            }
        }
    }
    entries.sort();
    entries
}

/// Spawns one checkpointed `dash party` process with extra flags.
fn spawn_party_seeded(
    dir: &std::path::Path,
    peers: &str,
    i: usize,
    seed: &str,
    extra: &[&str],
) -> Child {
    let ckpt = dir.join("ckpt");
    let mut args: Vec<String> = [
        "party",
        "--id",
        &i.to_string(),
        "--peers",
        peers,
        "--dir",
        dir.join(format!("party{i}")).to_str().unwrap(),
        "--seed",
        seed,
        "--block-size",
        "4",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--out",
        dir.join(format!("res{i}.tsv")).to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    Command::new(DASH)
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

fn spawn_party(dir: &std::path::Path, peers: &str, i: usize, extra: &[&str]) -> Child {
    spawn_party_seeded(dir, peers, i, SEED, extra)
}

/// The tentpole's acceptance test: SIGKILL-equivalent crash of one
/// party after block 0's checkpoint is durable, restart with --resume
/// inside the survivors' reconnect window, and the fleet must finish
/// with output byte-identical to an uninterrupted run.
#[test]
fn killed_party_resumes_bit_identical() {
    let dir = tmp_dir("kill");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "20,25,15",
        "--variants",
        "12",
        "--covariates",
        "2",
        "--seed",
        "5",
    ]);
    let peers = reserve_peers(3);

    // Party 2 is the victim: it dials everyone and accepts nobody, so
    // its listening port is guaranteed rebindable after the abort.
    let mut p0 = spawn_party(&dir, &peers, 0, &[]);
    let mut p1 = spawn_party(&dir, &peers, 1, &[]);
    let mut victim = spawn_party(&dir, &peers, 2, &["--crash-after-block", "0"]);
    let out0 = drain_stdout(&mut p0);
    let out1 = drain_stdout(&mut p1);
    let _victim_out = drain_stdout(&mut victim);

    let crash = wait_with_watchdog(&mut victim, Duration::from_secs(120), "victim");
    assert!(
        !crash.success(),
        "the --crash-after-block party must die mid-run, got {crash:?}"
    );

    // Restart the victim from its checkpoint while the survivors are
    // still inside their reconnect window.
    let mut revived = spawn_party(&dir, &peers, 2, &["--resume", "true"]);
    let out2 = drain_stdout(&mut revived);
    for (child, what) in [(&mut p0, "party 0"), (&mut p1, "party 1")] {
        let status = wait_with_watchdog(child, Duration::from_secs(120), what);
        assert!(status.success(), "{what} exited nonzero: {status:?}");
    }
    let status = wait_with_watchdog(&mut revived, Duration::from_secs(120), "revived party 2");
    assert!(status.success(), "resumed party failed: {status:?}");

    let outputs = [
        out0.join().unwrap(),
        out1.join().unwrap(),
        out2.join().unwrap(),
    ];
    assert!(
        outputs[2].contains("resuming from block 1"),
        "revived party must resume past the durable block:\n{}",
        outputs[2]
    );

    // Reference: the same workload, seed and block size, uninterrupted.
    let ref_text = dash(&[
        "secure-scan",
        "--dir",
        dir.to_str().unwrap(),
        "--seed",
        SEED,
        "--block-size",
        "4",
        "--out",
        dir.join("ref.tsv").to_str().unwrap(),
    ]);

    // Bit-identical result files at every party, including the one that
    // lived through a crash.
    let want = std::fs::read_to_string(dir.join("ref.tsv")).unwrap();
    assert!(!want.is_empty());
    for i in 0..3 {
        let got = std::fs::read_to_string(dir.join(format!("res{i}.tsv"))).unwrap();
        assert_eq!(got, want, "party {i} results differ from uninterrupted run");
    }

    // The revived process restores the crashed one's traffic snapshot,
    // replayed frames bypass accounting, and resumed blocks are sent
    // exactly once — so the three reports still partition the
    // uninterrupted total exactly.
    let per_party: u64 = outputs.iter().map(|t| traffic_bytes(t)).sum();
    assert_eq!(per_party, traffic_bytes(&ref_text), "traffic totals");

    // The disclosure union must equal the uninterrupted log: nothing
    // re-opened during recovery, nothing lost in the crash.
    let mut union: Vec<String> = outputs
        .iter()
        .flat_map(|t| disclosure_multiset(t))
        .collect();
    union.sort();
    assert_eq!(union, disclosure_multiset(&ref_text), "disclosure logs");

    std::fs::remove_dir_all(&dir).ok();
}

/// A peer that crashes and never comes back must fail the survivor with
/// a structured liveness verdict once the reconnect window closes —
/// bounded time, named peer, no hang.
#[test]
fn unresumed_crash_fails_survivors_structurally() {
    let dir = tmp_dir("norecover");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "8,9",
        "--variants",
        "8",
        "--causal",
        "2",
        "--covariates",
        "2",
        "--seed",
        "6",
    ]);
    let peers = reserve_peers(2);
    let windows = [
        "--heartbeat-ms",
        "100",
        "--liveness-timeout-ms",
        "1500",
        "--reconnect-window-ms",
        "1500",
    ];
    let mut extra0 = windows.to_vec();
    extra0.extend(["--deadline-ms", "30000"]);
    let mut extra1 = windows.to_vec();
    extra1.extend(["--crash-after-block", "0"]);

    let mut survivor = spawn_party(&dir, &peers, 0, &extra0);
    let mut victim = spawn_party(&dir, &peers, 1, &extra1);
    let _out0 = drain_stdout(&mut survivor);
    let _out1 = drain_stdout(&mut victim);
    let mut err0 = survivor.stderr.take().unwrap();

    let crash = wait_with_watchdog(&mut victim, Duration::from_secs(120), "victim");
    assert!(!crash.success(), "victim must crash, got {crash:?}");

    // No restart: the survivor must give up on its own, well before its
    // 30 s receive deadline, and name the dead peer.
    let status = wait_with_watchdog(&mut survivor, Duration::from_secs(60), "survivor");
    assert!(
        !status.success(),
        "survivor must fail once the reconnect window closes"
    );
    let mut stderr = String::new();
    use std::io::Read;
    err0.read_to_string(&mut stderr).ok();
    assert!(
        stderr.contains("party 1 is dead"),
        "expected a structured liveness verdict, got:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming under a different protocol seed is a different run: the
/// fingerprint check must refuse the checkpoint with a structured
/// error instead of producing silently wrong results.
#[test]
fn resume_with_wrong_seed_is_refused() {
    let dir = tmp_dir("wrongseed");
    dash(&[
        "simulate",
        "--out",
        dir.to_str().unwrap(),
        "--samples",
        "8,9",
        "--variants",
        "8",
        "--causal",
        "2",
        "--covariates",
        "2",
        "--seed",
        "7",
    ]);

    // A clean checkpointed run leaves complete checkpoints behind.
    let peers = reserve_peers(2);
    let mut a = spawn_party(&dir, &peers, 0, &[]);
    let mut b = spawn_party(&dir, &peers, 1, &[]);
    let _oa = drain_stdout(&mut a);
    let _ob = drain_stdout(&mut b);
    for (child, what) in [(&mut a, "party 0"), (&mut b, "party 1")] {
        let status = wait_with_watchdog(child, Duration::from_secs(120), what);
        assert!(status.success(), "{what} exited nonzero: {status:?}");
    }

    // Both parties restart with --resume but a different seed (and thus
    // a matching hello run id between them, so the handshake itself
    // succeeds — the *checkpoint* must be what refuses them).
    let peers = reserve_peers(2);
    let extra = ["--resume", "true"];
    let mut a = spawn_party_seeded(&dir, &peers, 0, "123", &extra);
    let mut b = spawn_party_seeded(&dir, &peers, 1, "123", &extra);
    let _oa = drain_stdout(&mut a);
    let _ob = drain_stdout(&mut b);
    let mut err_a = a.stderr.take().unwrap();
    let sa = wait_with_watchdog(&mut a, Duration::from_secs(120), "party 0");
    let sb = wait_with_watchdog(&mut b, Duration::from_secs(120), "party 1");
    assert!(
        !sa.success() && !sb.success(),
        "resume under a different seed must be refused at both parties"
    );
    let mut stderr = String::new();
    use std::io::Read;
    err_a.read_to_string(&mut stderr).ok();
    assert!(
        stderr.contains("different run"),
        "expected the fingerprint refusal, got:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
