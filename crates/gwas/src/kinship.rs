//! Kinship (genetic relationship) matrices from genotypes.
//!
//! §5 of the paper assumes the LMM's kinship eigendecomposition "can be
//! shared"; this module produces it from standardized genotypes, the
//! standard GCTA-style estimator `K = X Xᵀ / M`. Sharing the
//! eigendecomposition means sharing N×N sample-level information — the
//! paper treats that as an acceptable disclosure for the LMM use case,
//! and so do we (documented, not hidden).

use crate::error::GwasError;
use dash_core::lmm::KinshipEigen;
use dash_linalg::{symmetric_eigen, Matrix};

/// The GCTA kinship estimator `K = X Xᵀ / M` over standardized genotype
/// columns.
///
/// `x_std` should be the output of
/// [`crate::standardize::impute_and_standardize`]; with standardized
/// columns, `K`'s diagonal is ≈ 1 and off-diagonals estimate genetic
/// relatedness.
pub fn kinship_matrix(x_std: &Matrix) -> Result<Matrix, GwasError> {
    let m = x_std.cols();
    if m == 0 {
        return Err(GwasError::ShapeMismatch {
            what: "kinship needs at least one variant",
            expected: 1,
            got: 0,
        });
    }
    let n = x_std.rows();
    let mut k = Matrix::zeros(n, n);
    // K = Σ_j x_j x_jᵀ / M, built column by column (cache-friendly on the
    // column-major layout).
    for j in 0..m {
        let col = x_std.col(j);
        for b in 0..n {
            let xb = col[b];
            if xb == 0.0 {
                continue;
            }
            let kcol = k.col_mut(b);
            for (ka, &xa) in kcol.iter_mut().zip(col) {
                *ka += xa * xb;
            }
        }
    }
    k.scale(1.0 / m as f64);
    Ok(k)
}

/// Computes the kinship matrix and its full eigendecomposition, ready
/// for [`dash_core::lmm::lmm_scan`]. Tiny negative eigenvalues from
/// round-off are clamped to zero so the result is a valid covariance
/// factorization.
pub fn kinship_eigen_from_genotypes(x_std: &Matrix) -> Result<KinshipEigen, GwasError> {
    let k = kinship_matrix(x_std)?;
    let eig = symmetric_eigen(&k).map_err(|_| GwasError::ShapeMismatch {
        what: "kinship eigendecomposition",
        expected: x_std.rows(),
        got: x_std.rows(),
    })?;
    let values: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();
    KinshipEigen::new(eig.vectors, values).map_err(|_| GwasError::ShapeMismatch {
        what: "kinship eigen shapes",
        expected: x_std.rows(),
        got: x_std.rows(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::simulate_genotypes;
    use crate::standardize::impute_and_standardize;
    use dash_linalg::gemm_at_b;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_definition() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = simulate_genotypes(20, 300, &Default::default(), &mut rng).unwrap();
        let x = impute_and_standardize(&g);
        let k = kinship_matrix(&x).unwrap();
        // Reference: XᵀX of the transpose… i.e. K = (XᵀX over rows).
        let xt = x.transpose();
        let mut reference = gemm_at_b(&xt, &xt).unwrap();
        reference.scale(1.0 / 300.0);
        assert!(k.max_abs_diff(&reference).unwrap() < 1e-10);
        // Symmetric with ~unit diagonal.
        for i in 0..20 {
            assert!(
                (k.get(i, i) - 1.0).abs() < 0.35,
                "diag {} = {}",
                i,
                k.get(i, i)
            );
            for j in 0..20 {
                assert!((k.get(i, j) - k.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eigen_is_valid_kinship_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = simulate_genotypes(25, 60, &Default::default(), &mut rng).unwrap();
        let x = impute_and_standardize(&g);
        let kin = kinship_eigen_from_genotypes(&x).unwrap();
        assert_eq!(kin.n(), 25);
        assert!(kin.s.iter().all(|&v| v >= 0.0));
        // Eigen mass equals trace of K (≈ N for standardized columns).
        let total: f64 = kin.s.iter().sum();
        let k = kinship_matrix(&x).unwrap();
        let trace: f64 = (0..25).map(|i| k.get(i, i)).sum();
        assert!((total - trace).abs() < 1e-8);
    }

    #[test]
    fn related_pairs_have_high_kinship() {
        // Duplicate a sample: its kinship with the copy is ~1.
        let mut rng = StdRng::seed_from_u64(3);
        let g = simulate_genotypes(10, 200, &Default::default(), &mut rng).unwrap();
        let x0 = impute_and_standardize(&g);
        // Build matrix with row 1 replaced by a copy of row 0.
        let x = Matrix::from_fn(
            10,
            200,
            |r, c| {
                if r == 1 {
                    x0.get(0, c)
                } else {
                    x0.get(r, c)
                }
            },
        );
        let k = kinship_matrix(&x).unwrap();
        let twin = k.get(0, 1);
        let stranger = k.get(0, 5);
        assert!(twin > 0.7, "twin kinship {twin}");
        assert!(stranger.abs() < 0.6, "stranger kinship {stranger}");
        assert!(twin > stranger + 0.3);
    }

    #[test]
    fn empty_variants_rejected() {
        let x = Matrix::zeros(5, 0);
        assert!(kinship_matrix(&x).is_err());
        assert!(kinship_eigen_from_genotypes(&x).is_err());
    }

    #[test]
    fn lmm_pipeline_from_genotypes() {
        // End to end: genotypes → kinship eigen → LMM scan runs.
        let mut rng = StdRng::seed_from_u64(4);
        let g = simulate_genotypes(40, 80, &Default::default(), &mut rng).unwrap();
        let x = impute_and_standardize(&g);
        let kin = kinship_eigen_from_genotypes(&x).unwrap();
        let y = crate::pheno::normal_vec(40, &mut rng);
        let c = crate::pheno::normal_matrix(40, 1, &mut rng);
        let data = dash_core::model::PartyData::new(y, x, c).unwrap();
        let res = dash_core::lmm::lmm_scan(&data, &kin, 0.5).unwrap();
        assert_eq!(res.len(), 80);
    }
}
