//! Population structure across parties: the confounding generator.
//!
//! Multi-center GWAS data is not iid across centers: cohorts differ in
//! ancestry (allele frequencies drift between populations) and in
//! environment (assay batches, recruitment). Both create exactly the
//! between-group heterogeneity §3 warns about ("c.f. Simpson's paradox").
//!
//! This module simulates P cohorts under the Balding–Nichols model:
//! ancestral frequency `p_m` per variant, per-party frequencies
//! `p_km ~ Beta(p(1−F)/F, (1−p)(1−F)/F)` at fixation index `F_ST`, plus a
//! per-party phenotype offset that confounds every frequency-drifted
//! variant. Analyses that ignore the cohort structure inflate false
//! positives; the joint scan with per-party centering (the paper's §3
//! intercept remark) removes the confounding.

use crate::error::GwasError;
use crate::genotype::simulate_genotypes_at;
use crate::pheno::{normal_matrix, sample_standard_normal};
use crate::standardize::standardize_columns;
use dash_core::model::PartyData;
use rand::Rng;

/// Configuration for [`simulate_structured_cohorts`].
#[derive(Debug, Clone, PartialEq)]
pub struct StructuredSimConfig {
    /// Samples per party.
    pub party_sizes: Vec<usize>,
    /// Number of variants M.
    pub n_variants: usize,
    /// Fixation index F_ST controlling allele-frequency drift between
    /// parties (0 = none; 0.01–0.1 covers human populations).
    pub fst: f64,
    /// Phenotype mean offset per party (the environmental confounder);
    /// must match `party_sizes` in length, or be empty for no offsets.
    pub party_offsets: Vec<f64>,
    /// Planted causal variants (same effects in every party).
    pub n_causal: usize,
    /// Heritability of the shared genetic component.
    pub heritability: f64,
    /// Extra iid N(0,1) covariate columns per party (age/sex stand-ins).
    pub k_covariates: usize,
    /// Per-call missing rate.
    pub missing_rate: f64,
    /// When true (default), each party standardizes its genotype columns
    /// locally — which also removes between-party frequency differences.
    /// Set false to keep raw dosages, preserving the stratification
    /// signal that confounds a naive pooled analysis (experiment E5.2).
    pub standardize_within_party: bool,
}

impl Default for StructuredSimConfig {
    fn default() -> Self {
        StructuredSimConfig {
            party_sizes: vec![500, 500, 500],
            n_variants: 1000,
            fst: 0.05,
            party_offsets: Vec::new(),
            n_causal: 10,
            heritability: 0.3,
            k_covariates: 2,
            missing_rate: 0.0,
            standardize_within_party: true,
        }
    }
}

/// The simulated cohorts plus ground truth.
#[derive(Debug, Clone)]
pub struct StructuredCohorts {
    /// One [`PartyData`] per cohort, genotype columns standardized
    /// *within party* (as each party would do locally).
    pub parties: Vec<PartyData>,
    /// Indices of planted causal variants (sorted).
    pub causal: Vec<usize>,
    /// Shared effect sizes (same order as `causal`).
    pub effects: Vec<f64>,
    /// Ancestral minor allele frequencies.
    pub ancestral_mafs: Vec<f64>,
}

/// Samples `Gamma(shape, 1)` via Marsaglia–Tsang, with the
/// `Gamma(a) = Gamma(a+1) · U^{1/a}` boost for shape < 1.
fn sample_gamma(shape: f64, rng: &mut impl Rng) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples `Beta(a, b)` as a ratio of gammas.
fn sample_beta(a: f64, b: f64, rng: &mut impl Rng) -> f64 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    x / (x + y)
}

/// Simulates structured multi-party cohorts. See module docs.
pub fn simulate_structured_cohorts(
    cfg: &StructuredSimConfig,
    rng: &mut impl Rng,
) -> Result<StructuredCohorts, GwasError> {
    if cfg.party_sizes.is_empty() {
        return Err(GwasError::ShapeMismatch {
            what: "party_sizes",
            expected: 1,
            got: 0,
        });
    }
    if !(0.0..1.0).contains(&cfg.fst) {
        return Err(GwasError::BadParameter {
            what: "fst",
            value: cfg.fst,
        });
    }
    if !(0.0..1.0).contains(&cfg.heritability) {
        return Err(GwasError::BadParameter {
            what: "heritability",
            value: cfg.heritability,
        });
    }
    if !cfg.party_offsets.is_empty() && cfg.party_offsets.len() != cfg.party_sizes.len() {
        return Err(GwasError::ShapeMismatch {
            what: "party_offsets",
            expected: cfg.party_sizes.len(),
            got: cfg.party_offsets.len(),
        });
    }
    if cfg.n_causal > cfg.n_variants {
        return Err(GwasError::ShapeMismatch {
            what: "n_causal vs variants",
            expected: cfg.n_variants,
            got: cfg.n_causal,
        });
    }
    let m = cfg.n_variants;

    // Ancestral frequencies.
    let ancestral: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..0.5)).collect();

    // Causal set with shared effects.
    let mut indices: Vec<usize> = (0..m).collect();
    for i in 0..cfg.n_causal {
        let j = rng.gen_range(i..m);
        indices.swap(i, j);
    }
    let mut causal: Vec<usize> = indices[..cfg.n_causal].to_vec();
    causal.sort_unstable();
    let per_effect = if cfg.n_causal > 0 {
        (cfg.heritability / cfg.n_causal as f64).sqrt()
    } else {
        0.0
    };
    let effects: Vec<f64> = causal
        .iter()
        .map(|_| {
            if rng.gen::<bool>() {
                per_effect
            } else {
                -per_effect
            }
        })
        .collect();
    let noise_sd = (1.0 - cfg.heritability).sqrt();

    // Per-party genotypes at drifted frequencies, phenotypes from the
    // shared causal model plus the party offset.
    let mut parties = Vec::with_capacity(cfg.party_sizes.len());
    for (pi, &n_k) in cfg.party_sizes.iter().enumerate() {
        let drifted: Vec<f64> = ancestral
            .iter()
            .map(|&p| {
                if cfg.fst == 0.0 {
                    p
                } else {
                    let scale = (1.0 - cfg.fst) / cfg.fst;
                    sample_beta(p * scale, (1.0 - p) * scale, rng).clamp(0.001, 0.999)
                }
            })
            .collect();
        let g = simulate_genotypes_at(n_k, &drifted, cfg.missing_rate, rng)?;
        let mut x = g.to_dosages();
        if cfg.standardize_within_party {
            standardize_columns(&mut x);
        }
        let offset = cfg.party_offsets.get(pi).copied().unwrap_or(0.0);
        let mut y = vec![offset; n_k];
        for (idx, eff) in causal.iter().zip(&effects) {
            for (yi, xi) in y.iter_mut().zip(x.col(*idx)) {
                *yi += eff * xi;
            }
        }
        for yi in y.iter_mut() {
            *yi += noise_sd * sample_standard_normal(rng);
        }
        let c = normal_matrix(n_k, cfg.k_covariates, rng);
        parties.push(PartyData::new(y, x, c).expect("shapes consistent by construction"));
    }
    Ok(StructuredCohorts {
        parties,
        causal,
        effects,
        ancestral_mafs: ancestral,
    })
}

/// Configuration for [`simulate_admixed_cohorts`] — per-*sample* ancestry
/// gradients, the setting where principal components are genuinely needed
/// (per-party intercepts cannot absorb a within-party gradient).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmixedSimConfig {
    /// Samples per party.
    pub party_sizes: Vec<usize>,
    /// Number of variants M.
    pub n_variants: usize,
    /// Per-party admixture range: sample i of party k draws its ancestry
    /// coefficient α uniformly from this interval (so parties can have
    /// both different compositions *and* internal gradients).
    pub party_alpha_ranges: Vec<(f64, f64)>,
    /// Allele-frequency divergence between the two ancestral populations
    /// (each variant's |p₂ − p₁|, before clamping).
    pub divergence: f64,
    /// Additive effect of ancestry α on the phenotype — the confounder.
    pub ancestry_effect: f64,
    /// Planted causal variants with shared effects.
    pub n_causal: usize,
    /// Heritability of the causal component.
    pub heritability: f64,
    /// Extra iid covariates per party.
    pub k_covariates: usize,
}

impl Default for AdmixedSimConfig {
    fn default() -> Self {
        AdmixedSimConfig {
            party_sizes: vec![400, 400],
            n_variants: 500,
            party_alpha_ranges: vec![(0.0, 0.8), (0.2, 1.0)],
            divergence: 0.25,
            ancestry_effect: 1.0,
            n_causal: 0,
            heritability: 0.0,
            k_covariates: 1,
        }
    }
}

/// Admixed cohorts plus ground truth.
#[derive(Debug, Clone)]
pub struct AdmixedCohorts {
    /// One dataset per cohort (genotype dosages, *not* standardized —
    /// the ancestry signal lives in the raw frequencies).
    pub parties: Vec<PartyData>,
    /// Each sample's true ancestry coefficient, per party.
    pub alphas: Vec<Vec<f64>>,
    /// Planted causal variants (sorted).
    pub causal: Vec<usize>,
}

/// Simulates admixture between two ancestral populations with a
/// per-sample ancestry coefficient that also shifts the phenotype.
pub fn simulate_admixed_cohorts(
    cfg: &AdmixedSimConfig,
    rng: &mut impl Rng,
) -> Result<AdmixedCohorts, GwasError> {
    if cfg.party_sizes.is_empty() {
        return Err(GwasError::ShapeMismatch {
            what: "party_sizes",
            expected: 1,
            got: 0,
        });
    }
    if cfg.party_alpha_ranges.len() != cfg.party_sizes.len() {
        return Err(GwasError::ShapeMismatch {
            what: "party_alpha_ranges",
            expected: cfg.party_sizes.len(),
            got: cfg.party_alpha_ranges.len(),
        });
    }
    if !(0.0..=0.5).contains(&cfg.divergence) {
        return Err(GwasError::BadParameter {
            what: "divergence",
            value: cfg.divergence,
        });
    }
    if cfg.n_causal > cfg.n_variants {
        return Err(GwasError::ShapeMismatch {
            what: "n_causal vs variants",
            expected: cfg.n_variants,
            got: cfg.n_causal,
        });
    }
    let m = cfg.n_variants;
    // Two ancestral frequency vectors.
    let p1: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..0.5)).collect();
    let p2: Vec<f64> = p1
        .iter()
        .map(|&p| {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            (p + sign * cfg.divergence * rng.gen::<f64>()).clamp(0.02, 0.98)
        })
        .collect();
    // Causal set.
    let mut indices: Vec<usize> = (0..m).collect();
    for i in 0..cfg.n_causal {
        let j = rng.gen_range(i..m);
        indices.swap(i, j);
    }
    let mut causal: Vec<usize> = indices[..cfg.n_causal].to_vec();
    causal.sort_unstable();
    let per_effect = if cfg.n_causal > 0 {
        (cfg.heritability / cfg.n_causal as f64).sqrt()
    } else {
        0.0
    };
    let noise_sd = (1.0 - cfg.heritability).max(0.0).sqrt();

    let mut parties = Vec::with_capacity(cfg.party_sizes.len());
    let mut alphas_all = Vec::with_capacity(cfg.party_sizes.len());
    for (pi, &n_k) in cfg.party_sizes.iter().enumerate() {
        let (lo, hi) = cfg.party_alpha_ranges[pi];
        let alphas: Vec<f64> = (0..n_k).map(|_| rng.gen_range(lo..=hi)).collect();
        let mut x = dash_linalg::Matrix::zeros(n_k, m);
        for j in 0..m {
            let col = x.col_mut(j);
            for (i, v) in col.iter_mut().enumerate() {
                let p = (1.0 - alphas[i]) * p1[j] + alphas[i] * p2[j];
                let a = (rng.gen::<f64>() < p) as i8;
                let b = (rng.gen::<f64>() < p) as i8;
                *v = (a + b) as f64;
            }
        }
        let mut y: Vec<f64> = alphas.iter().map(|&a| cfg.ancestry_effect * a).collect();
        for (idx, _) in causal.iter().enumerate() {
            let eff = if rng.gen::<bool>() {
                per_effect
            } else {
                -per_effect
            };
            let col = x.col(causal[idx]);
            for (yi, &xv) in y.iter_mut().zip(col) {
                *yi += eff * xv;
            }
        }
        for yi in y.iter_mut() {
            *yi += noise_sd * sample_standard_normal(rng);
        }
        let c = normal_matrix(n_k, cfg.k_covariates, rng);
        parties.push(PartyData::new(y, x, c).expect("consistent shapes"));
        alphas_all.push(alphas);
    }
    Ok(AdmixedCohorts {
        parties,
        alphas: alphas_all,
        causal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = StructuredSimConfig {
            party_sizes: vec![],
            ..Default::default()
        };
        assert!(simulate_structured_cohorts(&cfg, &mut rng).is_err());
        let cfg = StructuredSimConfig {
            fst: 1.5,
            ..Default::default()
        };
        assert!(simulate_structured_cohorts(&cfg, &mut rng).is_err());
        let cfg = StructuredSimConfig {
            party_offsets: vec![1.0],
            ..Default::default()
        };
        assert!(simulate_structured_cohorts(&cfg, &mut rng).is_err());
        let mut cfg = StructuredSimConfig::default();
        cfg.n_causal = cfg.n_variants + 1;
        assert!(simulate_structured_cohorts(&cfg, &mut rng).is_err());
    }

    #[test]
    fn shapes_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = StructuredSimConfig {
            party_sizes: vec![30, 40],
            n_variants: 25,
            n_causal: 3,
            k_covariates: 2,
            ..Default::default()
        };
        let sim = simulate_structured_cohorts(&cfg, &mut rng).unwrap();
        assert_eq!(sim.parties.len(), 2);
        assert_eq!(sim.parties[0].n_samples(), 30);
        assert_eq!(sim.parties[1].n_samples(), 40);
        for p in &sim.parties {
            assert_eq!(p.n_variants(), 25);
            assert_eq!(p.n_covariates(), 2);
        }
        assert_eq!(sim.causal.len(), 3);
        assert_eq!(sim.ancestral_mafs.len(), 25);
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        for &shape in &[0.5f64, 1.0, 2.5, 8.0] {
            let n = 20000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn beta_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = (3.0, 7.0);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| sample_beta(a, b, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fst_zero_means_no_drift() {
        // With F_ST = 0 both parties use the ancestral frequencies, so
        // observed standardized means should agree closely (statistical).
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = StructuredSimConfig {
            party_sizes: vec![200, 200],
            n_variants: 10,
            fst: 0.0,
            n_causal: 0,
            heritability: 0.0,
            ..Default::default()
        };
        let sim = simulate_structured_cohorts(&cfg, &mut rng).unwrap();
        assert_eq!(sim.parties.len(), 2);
    }

    #[test]
    fn party_offsets_shift_means() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = StructuredSimConfig {
            party_sizes: vec![400, 400],
            n_variants: 5,
            party_offsets: vec![-2.0, 2.0],
            n_causal: 0,
            heritability: 0.0,
            ..Default::default()
        };
        let sim = simulate_structured_cohorts(&cfg, &mut rng).unwrap();
        let mean = |p: &PartyData| p.y().iter().sum::<f64>() / p.n_samples() as f64;
        assert!(mean(&sim.parties[0]) < -1.5);
        assert!(mean(&sim.parties[1]) > 1.5);
    }

    #[test]
    fn admixture_validation() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = AdmixedSimConfig {
            party_alpha_ranges: vec![(0.0, 1.0)],
            ..Default::default()
        };
        assert!(simulate_admixed_cohorts(&cfg, &mut rng).is_err()); // range count
        let cfg = AdmixedSimConfig {
            divergence: 0.7,
            ..Default::default()
        };
        assert!(simulate_admixed_cohorts(&cfg, &mut rng).is_err());
        let cfg = AdmixedSimConfig {
            party_sizes: vec![],
            party_alpha_ranges: vec![],
            ..Default::default()
        };
        assert!(simulate_admixed_cohorts(&cfg, &mut rng).is_err());
    }

    #[test]
    fn admixture_confounds_phenotype() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = AdmixedSimConfig {
            party_sizes: vec![300],
            party_alpha_ranges: vec![(0.0, 1.0)],
            n_variants: 60,
            divergence: 0.3,
            ancestry_effect: 3.0,
            ..Default::default()
        };
        let sim = simulate_admixed_cohorts(&cfg, &mut rng).unwrap();
        // y correlates strongly with alpha.
        let y = sim.parties[0].y();
        let a = &sim.alphas[0];
        let ym: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let am: f64 = a.iter().sum::<f64>() / a.len() as f64;
        let cov: f64 = y.iter().zip(a).map(|(yi, ai)| (yi - ym) * (ai - am)).sum();
        let vy: f64 = y.iter().map(|v| (v - ym) * (v - ym)).sum();
        let va: f64 = a.iter().map(|v| (v - am) * (v - am)).sum();
        let corr = cov / (vy * va).sqrt();
        assert!(corr > 0.5, "ancestry-phenotype correlation {corr}");
        // And genotype frequencies correlate with alpha too (pick the
        // most divergent-looking variant).
        assert_eq!(sim.parties[0].n_variants(), 60);
    }

    #[test]
    fn causal_variants_detectable_in_joint_scan() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = StructuredSimConfig {
            party_sizes: vec![300, 300],
            n_variants: 50,
            fst: 0.02,
            n_causal: 2,
            heritability: 0.4,
            k_covariates: 1,
            ..Default::default()
        };
        let sim = simulate_structured_cohorts(&cfg, &mut rng).unwrap();
        let pooled = dash_core::model::pool_parties(&sim.parties).unwrap();
        let res = dash_core::scan::associate(&pooled).unwrap();
        for &c in &sim.causal {
            assert!(res.p[c] < 1e-4, "causal variant {c}: p = {}", res.p[c]);
        }
    }
}
