//! Biallelic genotype simulation.
//!
//! Genotypes are 0/1/2 minor-allele counts drawn per variant under
//! Hardy–Weinberg equilibrium at a minor allele frequency (MAF) sampled
//! from a configurable spectrum; an optional missingness process knocks
//! calls out (encoded −1). This mirrors the N×M transient covariate
//! matrix of the paper at GWAS scale: N samples, M common variants.

use crate::error::GwasError;
use rand::Rng;

/// Genotype codes stored column-major; −1 marks a missing call.
#[derive(Debug, Clone, PartialEq)]
pub struct GenotypeMatrix {
    n: usize,
    m: usize,
    codes: Vec<i8>,
    mafs: Vec<f64>,
}

/// Configuration for [`simulate_genotypes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenotypeSimConfig {
    /// MAFs are drawn uniformly from this range (common-variant GWAS uses
    /// something like 0.05–0.5; burden-style rare variants 0.001–0.01).
    pub maf_range: (f64, f64),
    /// Per-call probability of a missing genotype.
    pub missing_rate: f64,
}

impl Default for GenotypeSimConfig {
    fn default() -> Self {
        GenotypeSimConfig {
            maf_range: (0.05, 0.5),
            missing_rate: 0.0,
        }
    }
}

impl GenotypeSimConfig {
    fn validate(&self) -> Result<(), GwasError> {
        let (lo, hi) = self.maf_range;
        if !(lo > 0.0 && hi <= 0.5 && lo <= hi) {
            return Err(GwasError::BadParameter {
                what: "maf_range (need 0 < lo <= hi <= 0.5)",
                value: if lo <= 0.0 { lo } else { hi },
            });
        }
        if !(0.0..1.0).contains(&self.missing_rate) {
            return Err(GwasError::BadParameter {
                what: "missing_rate",
                value: self.missing_rate,
            });
        }
        Ok(())
    }
}

/// Simulates an N×M genotype matrix.
pub fn simulate_genotypes(
    n: usize,
    m: usize,
    cfg: &GenotypeSimConfig,
    rng: &mut impl Rng,
) -> Result<GenotypeMatrix, GwasError> {
    cfg.validate()?;
    let (lo, hi) = cfg.maf_range;
    let mafs: Vec<f64> = (0..m).map(|_| rng.gen_range(lo..=hi)).collect();
    let gm = simulate_genotypes_at(n, &mafs, cfg.missing_rate, rng)?;
    Ok(gm)
}

/// Simulates genotypes at *given* per-variant allele frequencies (used by
/// the population-structure generator, where each party has drifted
/// frequencies).
pub fn simulate_genotypes_at(
    n: usize,
    mafs: &[f64],
    missing_rate: f64,
    rng: &mut impl Rng,
) -> Result<GenotypeMatrix, GwasError> {
    for &p in mafs {
        if !(0.0..=1.0).contains(&p) {
            return Err(GwasError::BadParameter {
                what: "allele frequency",
                value: p,
            });
        }
    }
    let m = mafs.len();
    let mut codes = Vec::with_capacity(n * m);
    for &p in mafs {
        for _ in 0..n {
            if missing_rate > 0.0 && rng.gen::<f64>() < missing_rate {
                codes.push(-1);
            } else {
                // Hardy–Weinberg: two independent allele draws.
                let a = (rng.gen::<f64>() < p) as i8;
                let b = (rng.gen::<f64>() < p) as i8;
                codes.push(a + b);
            }
        }
    }
    Ok(GenotypeMatrix {
        n,
        m,
        codes,
        mafs: mafs.to_vec(),
    })
}

/// Simulates genotypes with linkage disequilibrium along the variant
/// axis: each of a sample's two haplotypes copies its previous allele
/// with probability `ld_copy` (else draws fresh at the variant's MAF).
///
/// Adjacent-variant allele correlation is ≈ `ld_copy` when MAFs are
/// similar, decaying geometrically with distance — the standard
/// haplotype-copy caricature of real LD blocks. Hits in a scan over LD
/// data smear across neighbours exactly as in real GWAS.
pub fn simulate_genotypes_ld(
    n: usize,
    mafs: &[f64],
    ld_copy: f64,
    rng: &mut impl Rng,
) -> Result<GenotypeMatrix, GwasError> {
    for &p in mafs {
        if !(0.0..=1.0).contains(&p) {
            return Err(GwasError::BadParameter {
                what: "allele frequency",
                value: p,
            });
        }
    }
    if !(0.0..1.0).contains(&ld_copy) {
        return Err(GwasError::BadParameter {
            what: "ld_copy",
            value: ld_copy,
        });
    }
    let m = mafs.len();
    let mut codes = vec![0i8; n * m];
    // Two haplotypes per sample, walked along the variants.
    let mut hap_a = vec![false; n];
    let mut hap_b = vec![false; n];
    for (j, &p) in mafs.iter().enumerate() {
        for i in 0..n {
            if j == 0 || rng.gen::<f64>() >= ld_copy {
                hap_a[i] = rng.gen::<f64>() < p;
            }
            if j == 0 || rng.gen::<f64>() >= ld_copy {
                hap_b[i] = rng.gen::<f64>() < p;
            }
            codes[j * n + i] = hap_a[i] as i8 + hap_b[i] as i8;
        }
    }
    Ok(GenotypeMatrix {
        n,
        m,
        codes,
        mafs: mafs.to_vec(),
    })
}

impl GenotypeMatrix {
    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n
    }

    /// Number of variants.
    pub fn n_variants(&self) -> usize {
        self.m
    }

    /// The simulated (true) MAF of each variant.
    pub fn true_mafs(&self) -> &[f64] {
        &self.mafs
    }

    /// Raw codes of one variant column (−1 = missing).
    pub fn col(&self, j: usize) -> &[i8] {
        assert!(j < self.m, "variant {j} out of range");
        &self.codes[j * self.n..(j + 1) * self.n]
    }

    /// Observed allele frequency of a column, ignoring missing calls;
    /// `None` if every call is missing.
    pub fn observed_maf(&self, j: usize) -> Option<f64> {
        let col = self.col(j);
        let mut sum = 0u64;
        let mut called = 0u64;
        for &c in col {
            if c >= 0 {
                sum += c as u64;
                called += 1;
            }
        }
        if called == 0 {
            None
        } else {
            Some(sum as f64 / (2.0 * called as f64))
        }
    }

    /// Fraction of missing calls over the whole matrix.
    pub fn missing_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        self.codes.iter().filter(|&&c| c < 0).count() as f64 / self.codes.len() as f64
    }

    /// Converts to a dense dosage matrix, mean-imputing missing calls
    /// per variant (the standard GWAS pre-processing step).
    pub fn to_dosages(&self) -> dash_linalg::Matrix {
        let mut out = dash_linalg::Matrix::zeros(self.n, self.m);
        for j in 0..self.m {
            let col = self.col(j);
            let mean = {
                let (mut s, mut c) = (0.0, 0u64);
                for &v in col {
                    if v >= 0 {
                        s += v as f64;
                        c += 1;
                    }
                }
                if c == 0 {
                    0.0
                } else {
                    s / c as f64
                }
            };
            let dst = out.col_mut(j);
            for (d, &v) in dst.iter_mut().zip(col) {
                *d = if v >= 0 { v as f64 } else { mean };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = GenotypeSimConfig {
            maf_range: (0.0, 0.5),
            missing_rate: 0.0,
        };
        assert!(simulate_genotypes(5, 5, &bad, &mut rng).is_err());
        let bad = GenotypeSimConfig {
            maf_range: (0.1, 0.6),
            missing_rate: 0.0,
        };
        assert!(simulate_genotypes(5, 5, &bad, &mut rng).is_err());
        let bad = GenotypeSimConfig {
            maf_range: (0.1, 0.3),
            missing_rate: 1.5,
        };
        assert!(simulate_genotypes(5, 5, &bad, &mut rng).is_err());
    }

    #[test]
    fn codes_in_range_and_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = simulate_genotypes(50, 20, &GenotypeSimConfig::default(), &mut rng).unwrap();
        assert_eq!(g.n_samples(), 50);
        assert_eq!(g.n_variants(), 20);
        for j in 0..20 {
            assert!(g.col(j).iter().all(|&c| (0..=2).contains(&c)));
        }
        assert_eq!(g.missing_fraction(), 0.0);
    }

    #[test]
    fn observed_maf_tracks_true_maf() {
        let mut rng = StdRng::seed_from_u64(3);
        let mafs = vec![0.1, 0.25, 0.4];
        let g = simulate_genotypes_at(4000, &mafs, 0.0, &mut rng).unwrap();
        for (j, &p) in mafs.iter().enumerate() {
            let obs = g.observed_maf(j).unwrap();
            assert!((obs - p).abs() < 0.03, "variant {j}: obs {obs} vs true {p}");
        }
    }

    #[test]
    fn hardy_weinberg_het_fraction() {
        // Heterozygote fraction ≈ 2p(1−p).
        let mut rng = StdRng::seed_from_u64(4);
        let p = 0.3;
        let g = simulate_genotypes_at(20000, &[p], 0.0, &mut rng).unwrap();
        let het = g.col(0).iter().filter(|&&c| c == 1).count() as f64 / 20000.0;
        assert!((het - 2.0 * p * (1.0 - p)).abs() < 0.02, "het = {het}");
    }

    #[test]
    fn missingness_rate_honored() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GenotypeSimConfig {
            maf_range: (0.1, 0.5),
            missing_rate: 0.2,
        };
        let g = simulate_genotypes(2000, 10, &cfg, &mut rng).unwrap();
        let frac = g.missing_fraction();
        assert!((frac - 0.2).abs() < 0.02, "missing fraction {frac}");
    }

    #[test]
    fn dosage_imputation_fills_column_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = GenotypeSimConfig {
            maf_range: (0.2, 0.4),
            missing_rate: 0.3,
        };
        let g = simulate_genotypes(500, 4, &cfg, &mut rng).unwrap();
        let d = g.to_dosages();
        for j in 0..4 {
            let col = g.col(j);
            let called_mean = {
                let (mut s, mut c) = (0.0, 0);
                for &v in col {
                    if v >= 0 {
                        s += v as f64;
                        c += 1;
                    }
                }
                s / c as f64
            };
            for (i, &code) in col.iter().enumerate() {
                let expect = if code >= 0 { code as f64 } else { called_mean };
                assert!((d.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ld_simulation_correlates_neighbours() {
        let mut rng = StdRng::seed_from_u64(20);
        let m = 30;
        let mafs = vec![0.3; m];
        let g = simulate_genotypes_ld(4000, &mafs, 0.8, &mut rng).unwrap();
        // Dosage correlation of adjacent vs distant variant pairs.
        let corr = |a: usize, b: usize| -> f64 {
            let (ca, cb) = (g.col(a), g.col(b));
            let n = ca.len() as f64;
            let ma: f64 = ca.iter().map(|&v| v as f64).sum::<f64>() / n;
            let mb: f64 = cb.iter().map(|&v| v as f64).sum::<f64>() / n;
            let mut cov = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for (&x, &y) in ca.iter().zip(cb) {
                let (dx, dy) = (x as f64 - ma, y as f64 - mb);
                cov += dx * dy;
                va += dx * dx;
                vb += dy * dy;
            }
            cov / (va * vb).sqrt()
        };
        let adjacent = corr(10, 11);
        let distant = corr(0, 29);
        assert!(adjacent > 0.6, "adjacent r = {adjacent}");
        assert!(distant < 0.2, "distant r = {distant}");
        assert!(adjacent > distant + 0.4);
        // Decay is monotone-ish: lag 5 below lag 1.
        assert!(corr(10, 15) < adjacent);
    }

    #[test]
    fn ld_zero_is_independent() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = simulate_genotypes_ld(500, &[0.25; 5], 0.0, &mut rng).unwrap();
        assert_eq!(g.n_variants(), 5);
        for j in 0..5 {
            assert!(g.col(j).iter().all(|&c| (0..=2).contains(&c)));
        }
    }

    #[test]
    fn ld_parameter_validated() {
        let mut rng = StdRng::seed_from_u64(22);
        assert!(simulate_genotypes_ld(10, &[0.3], 1.0, &mut rng).is_err());
        assert!(simulate_genotypes_ld(10, &[0.3], -0.1, &mut rng).is_err());
        assert!(simulate_genotypes_ld(10, &[1.5], 0.5, &mut rng).is_err());
    }

    #[test]
    fn ld_hits_smear_across_neighbours() {
        // A causal variant in an LD block drags its neighbours' p-values
        // down too — the classic GWAS tower.
        let mut rng = StdRng::seed_from_u64(23);
        let n = 1500;
        let m = 40;
        let g = simulate_genotypes_ld(n, &vec![0.3; m], 0.9, &mut rng).unwrap();
        let x = crate::standardize::impute_and_standardize(&g);
        let causal = 20usize;
        let y: Vec<f64> = (0..n)
            .map(|i| 0.4 * x.get(i, causal) + crate::pheno::sample_standard_normal(&mut rng))
            .collect();
        let c = dash_linalg::Matrix::from_cols(&[&vec![1.0; n]]).unwrap();
        let data = dash_core::model::PartyData::new(y, x, c).unwrap();
        let res = dash_core::scan::associate(&data).unwrap();
        assert!(res.p[causal] < 1e-8);
        // Immediate neighbours inherit signal; far variants do not.
        assert!(
            res.p[causal - 1] < 1e-3,
            "left neighbour p {}",
            res.p[causal - 1]
        );
        assert!(
            res.p[causal + 1] < 1e-3,
            "right neighbour p {}",
            res.p[causal + 1]
        );
        assert!(res.p[0] > 1e-3, "distant variant p {}", res.p[0]);
    }

    #[test]
    fn reproducible_given_seed() {
        let cfg = GenotypeSimConfig::default();
        let g1 = simulate_genotypes(30, 10, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = simulate_genotypes(30, 10, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn invalid_frequency_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!(simulate_genotypes_at(10, &[1.5], 0.0, &mut rng).is_err());
        assert!(simulate_genotypes_at(10, &[-0.1], 0.0, &mut rng).is_err());
    }
}
