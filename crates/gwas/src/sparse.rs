//! Sparse (CSC) genotype storage and the sparsity-aware scan kernel.
//!
//! §2: "the columns of X can be packed sparsely so that the flop count
//! for QᵀX is reduced in proportion to the sparsity of X." Centered
//! rare-variant dosages are mostly the constant `−mean`; storing each
//! column as (nonzero offsets from a per-column fill value) makes every
//! scan dot product O(nnz) instead of O(N).

use crate::error::GwasError;
use dash_core::suffstats::ScanStats;
use dash_linalg::{dot, gemv_t, self_dot, Matrix};

/// Compressed sparse column matrix with a per-column fill value:
/// `A[i, j] = fill[j]` except at the stored `(row, value)` pairs.
///
/// The fill generalization matters for GWAS: a *centered* genotype
/// column is `fill = −mean` almost everywhere, with sparse deviations —
/// plain CSC (fill 0) would lose all sparsity after centering.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
    fill: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from a dense matrix, treating entries equal to the
    /// per-column majority fill value (here: the most common value,
    /// approximated by 0 for raw dosages) as implicit.
    ///
    /// `fill[j]` is taken as `fill_value` for every column.
    pub fn from_dense(dense: &Matrix, fill_value: f64) -> Result<Self, GwasError> {
        if dense.rows() > u32::MAX as usize {
            return Err(GwasError::ShapeMismatch {
                what: "sparse row index width",
                expected: u32::MAX as usize,
                got: dense.rows(),
            });
        }
        let mut col_ptr = Vec::with_capacity(dense.cols() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..dense.cols() {
            for (i, &v) in dense.col(j).iter().enumerate() {
                if v != fill_value {
                    row_idx.push(i as u32);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Ok(SparseMatrix {
            rows: dense.rows(),
            col_ptr,
            row_idx,
            values,
            fill: vec![fill_value; dense.cols()],
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.fill.len()
    }

    /// Stored (explicit) entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored explicitly (1.0 = dense).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols() == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows * self.cols()) as f64
    }

    /// Dot of column `j` with a dense vector: `Σᵢ A[i,j]·v[i]` =
    /// `fill·Σv + Σ_stored (value − fill)·v[row]`.
    pub fn col_dot(&self, j: usize, v: &[f64], v_sum: f64) -> f64 {
        debug_assert_eq!(v.len(), self.rows);
        let fill = self.fill[j];
        let mut acc = fill * v_sum;
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            let r = self.row_idx[idx] as usize;
            acc += (self.values[idx] - fill) * v[r];
        }
        acc
    }

    /// Self-dot of column `j`.
    pub fn col_self_dot(&self, j: usize) -> f64 {
        let fill = self.fill[j];
        let nnz = self.col_nnz(j);
        let mut acc = fill * fill * (self.rows - nnz) as f64;
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            acc += self.values[idx] * self.values[idx];
        }
        acc
    }

    /// Densifies one column (for testing and fallback paths).
    pub fn col_dense(&self, j: usize) -> Vec<f64> {
        let mut out = vec![self.fill[j]; self.rows];
        for idx in self.col_ptr[j]..self.col_ptr[j + 1] {
            out[self.row_idx[idx] as usize] = self.values[idx];
        }
        out
    }
}

/// Computes the reduced scan statistics with sparse X: every per-variant
/// dot costs O(nnz_j + K) instead of O(N·K).
///
/// Precomputes `Σᵢ y[i]` and the column sums of `Q` once, so the
/// fill-value contribution of each column is O(K).
pub fn sparse_scan_stats(y: &[f64], x: &SparseMatrix, q: &Matrix) -> Result<ScanStats, GwasError> {
    if x.rows() != y.len() || q.rows() != y.len() {
        return Err(GwasError::ShapeMismatch {
            what: "sparse_scan_stats rows",
            expected: y.len(),
            got: if x.rows() != y.len() {
                x.rows()
            } else {
                q.rows()
            },
        });
    }
    let m = x.cols();
    let k = q.cols();
    let yy = self_dot(y);
    let qty = gemv_t(q, y).expect("shape checked above");
    let qtyqty = self_dot(&qty);
    let y_sum: f64 = y.iter().sum();
    let q_col_sums: Vec<f64> = (0..k).map(|i| q.col(i).iter().sum()).collect();

    let mut xy = Vec::with_capacity(m);
    let mut xx = Vec::with_capacity(m);
    let mut qtxqty = Vec::with_capacity(m);
    let mut qtxqtx = Vec::with_capacity(m);
    let mut qtx_col = vec![0.0; k];
    for j in 0..m {
        xy.push(x.col_dot(j, y, y_sum));
        xx.push(x.col_self_dot(j));
        for (i, out) in qtx_col.iter_mut().enumerate() {
            *out = x.col_dot(j, q.col(i), q_col_sums[i]);
        }
        qtxqty.push(dot(&qtx_col, &qty));
        qtxqtx.push(self_dot(&qtx_col));
    }
    Ok(ScanStats {
        yy,
        xy,
        xx,
        qtyqty,
        qtxqty,
        qtxqtx,
    })
}

/// The additive sufficient statistics (the secure scan's summand layer)
/// computed from sparse X: O(nnz + K) per column.
pub fn sparse_suffstats(
    y: &[f64],
    x: &SparseMatrix,
    q: &Matrix,
) -> Result<dash_core::suffstats::SuffStats, GwasError> {
    if x.rows() != y.len() || q.rows() != y.len() {
        return Err(GwasError::ShapeMismatch {
            what: "sparse_suffstats rows",
            expected: y.len(),
            got: if x.rows() != y.len() {
                x.rows()
            } else {
                q.rows()
            },
        });
    }
    let m = x.cols();
    let k = q.cols();
    let yy = self_dot(y);
    let qty = gemv_t(q, y).expect("shape checked above");
    let y_sum: f64 = y.iter().sum();
    let q_col_sums: Vec<f64> = (0..k).map(|i| q.col(i).iter().sum()).collect();
    let mut xy = Vec::with_capacity(m);
    let mut xx = Vec::with_capacity(m);
    let mut qtx = Matrix::zeros(k, m);
    for j in 0..m {
        xy.push(x.col_dot(j, y, y_sum));
        xx.push(x.col_self_dot(j));
        let col = qtx.col_mut(j);
        for (i, out) in col.iter_mut().enumerate() {
            *out = x.col_dot(j, q.col(i), q_col_sums[i]);
        }
    }
    Ok(dash_core::suffstats::SuffStats {
        yy,
        xy,
        xx,
        qty,
        qtx,
    })
}

/// A party whose genotype matrix lives in sparse storage — plugs straight
/// into [`dash_core::secure::secure_scan_with`], so rare-variant cohorts
/// pay O(nnz) local compute inside the secure protocol (§2's sparse
/// packing combined with §3's security).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseParty {
    y: Vec<f64>,
    x: SparseMatrix,
    c: Matrix,
}

impl SparseParty {
    /// Validates shapes.
    pub fn new(y: Vec<f64>, x: SparseMatrix, c: Matrix) -> Result<Self, GwasError> {
        if x.rows() != y.len() || c.rows() != y.len() {
            return Err(GwasError::ShapeMismatch {
                what: "SparseParty rows",
                expected: y.len(),
                got: if x.rows() != y.len() {
                    x.rows()
                } else {
                    c.rows()
                },
            });
        }
        Ok(SparseParty { y, x, c })
    }

    /// The sparse variant storage.
    pub fn x(&self) -> &SparseMatrix {
        &self.x
    }
}

impl dash_core::secure::SummandSource for SparseParty {
    fn n_samples(&self) -> usize {
        self.y.len()
    }
    fn n_variants(&self) -> usize {
        self.x.cols()
    }
    fn covariates(&self) -> &Matrix {
        &self.c
    }
    fn summands(
        &self,
        q: &Matrix,
    ) -> Result<dash_core::suffstats::SuffStats, dash_core::CoreError> {
        sparse_suffstats(&self.y, &self.x, q).map_err(|_| dash_core::CoreError::ShapeMismatch {
            what: "sparse summands",
            expected: self.y.len(),
            got: q.rows(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::suffstats::{orthonormal_basis, SuffStats};

    fn toy_dense(n: usize, m: usize, sparsity: f64, seed: u64) -> Matrix {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        Matrix::from_fn(n, m, |_, _| {
            if next() < sparsity {
                (next() * 2.0).ceil() // 1.0 or 2.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_through_dense() {
        let dense = toy_dense(20, 5, 0.2, 1);
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        assert_eq!(sparse.rows(), 20);
        assert_eq!(sparse.cols(), 5);
        for j in 0..5 {
            assert_eq!(sparse.col_dense(j), dense.col(j));
        }
    }

    #[test]
    fn density_reflects_sparsity() {
        let dense = toy_dense(500, 20, 0.1, 2);
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        assert!(sparse.density() < 0.25, "density {}", sparse.density());
        assert!(sparse.density() > 0.02);
        assert_eq!(
            sparse.nnz(),
            (0..20).map(|j| sparse.col_nnz(j)).sum::<usize>()
        );
    }

    #[test]
    fn dots_match_dense() {
        let dense = toy_dense(50, 4, 0.3, 3);
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        let v: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let v_sum: f64 = v.iter().sum();
        for j in 0..4 {
            let expect = dot(dense.col(j), &v);
            assert!(
                (sparse.col_dot(j, &v, v_sum) - expect).abs() < 1e-10,
                "j={j}"
            );
            let expect_ss = self_dot(dense.col(j));
            assert!((sparse.col_self_dot(j) - expect_ss).abs() < 1e-10);
        }
    }

    #[test]
    fn nonzero_fill_value() {
        // Centered column: fill = -0.5 everywhere except stored entries.
        let col = vec![-0.5, 1.5, -0.5, -0.5, 0.5];
        let dense = Matrix::from_cols(&[&col]).unwrap();
        let sparse = SparseMatrix::from_dense(&dense, -0.5).unwrap();
        assert_eq!(sparse.col_nnz(0), 2);
        assert_eq!(sparse.col_dense(0), col);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v_sum = 15.0;
        assert!((sparse.col_dot(0, &v, v_sum) - dot(&col, &v)).abs() < 1e-12);
        assert!((sparse.col_self_dot(0) - self_dot(&col)).abs() < 1e-12);
    }

    #[test]
    fn sparse_scan_matches_dense_scan() {
        let n = 60;
        let dense = toy_dense(n, 8, 0.15, 4);
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let c = Matrix::from_fn(n, 2, |_, _| next());
        let q = orthonormal_basis(&c).unwrap();

        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        let via_sparse = sparse_scan_stats(&y, &sparse, &q).unwrap();
        let via_dense = SuffStats::local(&y, &dense, &q).unwrap().reduce();
        assert!((via_sparse.yy - via_dense.yy).abs() < 1e-10);
        for j in 0..8 {
            assert!((via_sparse.xy[j] - via_dense.xy[j]).abs() < 1e-9, "xy[{j}]");
            assert!((via_sparse.xx[j] - via_dense.xx[j]).abs() < 1e-9);
            assert!((via_sparse.qtxqty[j] - via_dense.qtxqty[j]).abs() < 1e-9);
            assert!((via_sparse.qtxqtx[j] - via_dense.qtxqtx[j]).abs() < 1e-9);
        }
        // Full pipeline: same final statistics.
        let res_sparse = via_sparse.finalize(n, 2).unwrap();
        let res_dense = via_dense.finalize(n, 2).unwrap();
        assert!(res_sparse.max_rel_diff(&res_dense).unwrap() < 1e-9);
    }

    #[test]
    fn sparse_suffstats_match_dense() {
        let n = 40;
        let dense = toy_dense(n, 5, 0.2, 9);
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let c = Matrix::from_fn(n, 2, |_, _| next());
        let q = orthonormal_basis(&c).unwrap();
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        let sp = sparse_suffstats(&y, &sparse, &q).unwrap();
        let dn = SuffStats::local(&y, &dense, &q).unwrap();
        assert!((sp.yy - dn.yy).abs() < 1e-10);
        assert!(sp.qtx.max_abs_diff(&dn.qtx).unwrap() < 1e-9);
        for j in 0..5 {
            assert!((sp.xy[j] - dn.xy[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_party_secure_scan_matches_dense_secure_scan() {
        use dash_core::model::PartyData;
        use dash_core::secure::{secure_scan, secure_scan_with, SecureScanConfig};
        let mut s = 21u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut dense_parties = Vec::new();
        let mut sparse_parties = Vec::new();
        for (n, seed) in [(30usize, 31u64), (40, 32)] {
            let x = toy_dense(n, 8, 0.15, seed);
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            let c = Matrix::from_fn(n, 2, |_, _| next());
            sparse_parties.push(
                SparseParty::new(
                    y.clone(),
                    SparseMatrix::from_dense(&x, 0.0).unwrap(),
                    c.clone(),
                )
                .unwrap(),
            );
            dense_parties.push(PartyData::new(y, x, c).unwrap());
        }
        let cfg = SecureScanConfig::paper_default(3);
        let dense_out = secure_scan(&dense_parties, &cfg).unwrap();
        let sparse_out = secure_scan_with(&sparse_parties, &cfg).unwrap();
        let d = sparse_out.result.max_rel_diff(&dense_out.result).unwrap();
        assert!(d < 1e-9, "sparse vs dense secure scan: {d}");
    }

    #[test]
    fn sparse_party_validation() {
        let dense = toy_dense(6, 2, 0.5, 1);
        let sp = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        assert!(SparseParty::new(vec![0.0; 5], sp.clone(), Matrix::zeros(6, 1)).is_err());
        assert!(SparseParty::new(vec![0.0; 6], sp.clone(), Matrix::zeros(5, 1)).is_err());
        assert!(SparseParty::new(vec![0.0; 6], sp, Matrix::zeros(6, 1)).is_ok());
    }

    #[test]
    fn shape_errors() {
        let dense = toy_dense(10, 2, 0.5, 6);
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        let y = vec![0.0; 9];
        let q = Matrix::zeros(10, 1);
        assert!(sparse_scan_stats(&y, &sparse, &q).is_err());
        let y10 = vec![0.0; 10];
        let q9 = Matrix::zeros(9, 1);
        assert!(sparse_scan_stats(&y10, &sparse, &q9).is_err());
    }

    #[test]
    fn empty_matrix() {
        let dense = Matrix::zeros(0, 0);
        let sparse = SparseMatrix::from_dense(&dense, 0.0).unwrap();
        assert_eq!(sparse.density(), 0.0);
        assert_eq!(sparse.nnz(), 0);
    }
}
