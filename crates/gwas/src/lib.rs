//! GWAS workload substrate for the DASH suite.
//!
//! The paper's motivating application is genome-wide association across
//! biobanks that cannot share rows. Real cohort data is private by
//! definition, so this crate builds the closest synthetic equivalent:
//!
//! - [`genotype`]: biallelic genotype simulation under Hardy–Weinberg
//!   equilibrium with configurable minor-allele-frequency spectra and
//!   missingness;
//! - [`structure`]: Balding–Nichols population structure — per-party
//!   allele-frequency drift plus party-level phenotype offsets, the
//!   generator behind the confounding/Simpson experiments;
//! - [`pheno`]: phenotypes with planted causal variants at a chosen
//!   heritability, plus covariate effects;
//! - [`standardize`]: missing-data imputation and column standardization;
//! - [`sparse`]: CSC storage for genotype matrices and a sparsity-aware
//!   scan (§2's "columns of X can be packed sparsely");
//! - [`io`]: TSV import/export for matrices and scan results;
//! - [`power`]: truth-aware evaluation — power, false-positive rate, and
//!   the genomic-control inflation factor λ_GC.
//!
//! Everything is driven by caller-supplied `rand` RNGs for exact
//! reproducibility.

pub mod error;
pub mod genotype;
pub mod io;
pub mod kinship;
pub mod pheno;
pub mod power;
pub mod sparse;
pub mod standardize;
pub mod structure;

pub use error::GwasError;
pub use genotype::{simulate_genotypes, simulate_genotypes_ld, GenotypeMatrix, GenotypeSimConfig};
pub use kinship::{kinship_eigen_from_genotypes, kinship_matrix};
pub use pheno::{simulate_phenotype, PhenotypeSim, PhenotypeTruth};
pub use power::{evaluate_scan, lambda_gc, PowerReport};
pub use sparse::{sparse_scan_stats, sparse_suffstats, SparseMatrix, SparseParty};
pub use standardize::{impute_and_standardize, standardize_columns};
pub use structure::{
    simulate_admixed_cohorts, simulate_structured_cohorts, AdmixedSimConfig, StructuredSimConfig,
};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GwasError>;
