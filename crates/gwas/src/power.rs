//! Truth-aware evaluation of scan results.
//!
//! Experiments that compare the joint secure scan against meta-analysis
//! (E5) need power and error rates against the *planted* truth, plus the
//! genomic-control inflation factor λ_GC that GWAS uses to detect
//! uncorrected confounding.

use dash_stats::ChiSquared;

/// Power/error summary of one scan against planted truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Causal variants detected / causal variants total.
    pub power: f64,
    /// Non-causal variants flagged / non-causal variants total.
    pub false_positive_rate: f64,
    /// Number of true positives.
    pub true_positives: usize,
    /// Number of false positives.
    pub false_positives: usize,
    /// Number of causal variants.
    pub n_causal: usize,
    /// Number of tests performed (finite p-values).
    pub n_tested: usize,
}

/// Scores p-values against the causal set at significance `alpha`.
/// NaN p-values (degenerate variants) are excluded from both numerators
/// and denominators.
pub fn evaluate_scan(p_values: &[f64], causal: &[usize], alpha: f64) -> PowerReport {
    let causal_set: std::collections::HashSet<usize> = causal.iter().copied().collect();
    let mut tp = 0;
    let mut fp = 0;
    let mut n_causal_tested = 0;
    let mut n_null_tested = 0;
    for (j, &p) in p_values.iter().enumerate() {
        if p.is_nan() {
            continue;
        }
        let is_causal = causal_set.contains(&j);
        let hit = p < alpha;
        if is_causal {
            n_causal_tested += 1;
            if hit {
                tp += 1;
            }
        } else {
            n_null_tested += 1;
            if hit {
                fp += 1;
            }
        }
    }
    PowerReport {
        power: if n_causal_tested > 0 {
            tp as f64 / n_causal_tested as f64
        } else {
            f64::NAN
        },
        false_positive_rate: if n_null_tested > 0 {
            fp as f64 / n_null_tested as f64
        } else {
            f64::NAN
        },
        true_positives: tp,
        false_positives: fp,
        n_causal: n_causal_tested,
        n_tested: n_causal_tested + n_null_tested,
    }
}

/// Genomic-control inflation factor: the median of the χ²(1) statistics
/// implied by the p-values, divided by the χ²(1) median (≈0.4549).
/// λ ≈ 1 for a well-calibrated scan; λ ≫ 1 signals confounding (e.g.
/// uncorrected population structure).
pub fn lambda_gc(p_values: &[f64]) -> f64 {
    let chi1 = ChiSquared::new(1.0).expect("df 1 valid");
    let mut stats: Vec<f64> = p_values
        .iter()
        .filter(|p| p.is_finite() && **p > 0.0 && **p <= 1.0)
        .map(|&p| chi1.quantile(1.0 - p).unwrap_or(f64::NAN))
        .filter(|v| v.is_finite())
        .collect();
    if stats.is_empty() {
        return f64::NAN;
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if stats.len() % 2 == 1 {
        stats[stats.len() / 2]
    } else {
        0.5 * (stats[stats.len() / 2 - 1] + stats[stats.len() / 2])
    };
    let chi1_median = chi1.quantile(0.5).expect("median of chi2(1)");
    median / chi1_median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scan() {
        let p = vec![1e-10, 0.5, 0.6, 1e-9, 0.9];
        let causal = vec![0, 3];
        let r = evaluate_scan(&p, &causal, 1e-5);
        assert_eq!(r.power, 1.0);
        assert_eq!(r.false_positive_rate, 0.0);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.n_tested, 5);
    }

    #[test]
    fn misses_and_false_alarms() {
        let p = vec![0.2, 1e-8, 0.5, 0.5];
        let causal = vec![0]; // missed; variant 1 is a false positive
        let r = evaluate_scan(&p, &causal, 1e-5);
        assert_eq!(r.power, 0.0);
        assert_eq!(r.false_positives, 1);
        assert!((r.false_positive_rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nan_excluded() {
        let p = vec![f64::NAN, 1e-9, f64::NAN];
        let causal = vec![0, 1];
        let r = evaluate_scan(&p, &causal, 1e-5);
        assert_eq!(r.n_causal, 1); // variant 0 untested
        assert_eq!(r.power, 1.0);
        assert_eq!(r.n_tested, 1);
    }

    #[test]
    fn empty_sides_are_nan() {
        let r = evaluate_scan(&[0.5, 0.4], &[], 0.05);
        assert!(r.power.is_nan());
        assert_eq!(r.false_positives, 0);
        let r = evaluate_scan(&[0.5, 0.4], &[0, 1], 0.05);
        assert!(r.false_positive_rate.is_nan());
    }

    #[test]
    fn lambda_gc_of_uniform_is_one() {
        // p-values i/(n+1) are exactly uniform order statistics.
        let n = 999;
        let p: Vec<f64> = (1..=n).map(|i| i as f64 / (n + 1) as f64).collect();
        let l = lambda_gc(&p);
        assert!((l - 1.0).abs() < 0.02, "lambda {l}");
    }

    #[test]
    fn lambda_gc_detects_inflation() {
        // Systematically small p-values → lambda > 1.
        let p: Vec<f64> = (1..=999).map(|i| (i as f64 / 1000.0).powi(3)).collect();
        assert!(lambda_gc(&p) > 1.5);
    }

    #[test]
    fn lambda_gc_edge_cases() {
        assert!(lambda_gc(&[]).is_nan());
        assert!(lambda_gc(&[f64::NAN, 0.0]).is_nan());
    }
}
