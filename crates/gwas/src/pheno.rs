//! Phenotype simulation with planted causal variants.
//!
//! `y = X_causal · β + C · γ + ε`, with effect sizes chosen so the causal
//! variants jointly explain a target heritability h² of the phenotypic
//! variance (assuming standardized genotype columns). The returned
//! [`PhenotypeTruth`] records what was planted so experiments can score
//! power and false-positive rates.

use crate::error::GwasError;
use dash_linalg::Matrix;
use rand::Rng;

/// Configuration for [`simulate_phenotype`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhenotypeSim {
    /// Number of causal variants (chosen uniformly without replacement).
    pub n_causal: usize,
    /// Target narrow-sense heritability in [0, 1).
    pub heritability: f64,
    /// Fixed effects of the covariate columns (empty = none).
    pub covariate_effects: Vec<f64>,
}

impl Default for PhenotypeSim {
    fn default() -> Self {
        PhenotypeSim {
            n_causal: 5,
            heritability: 0.3,
            covariate_effects: Vec::new(),
        }
    }
}

/// What the simulator planted.
#[derive(Debug, Clone, PartialEq)]
pub struct PhenotypeTruth {
    /// Causal variant indices, sorted ascending.
    pub causal: Vec<usize>,
    /// Effect size per causal variant (same order as `causal`).
    pub effects: Vec<f64>,
    /// The realized genetic variance fraction.
    pub h2_target: f64,
}

impl PhenotypeTruth {
    /// True when variant `j` was planted causal.
    pub fn is_causal(&self, j: usize) -> bool {
        self.causal.binary_search(&j).is_ok()
    }
}

/// Simulates a quantitative phenotype over standardized genotypes `x`
/// (N×M) and covariates `c` (N×K).
///
/// Returns `(y, truth)`. Effects are ± `sqrt(h²/n_causal)` with random
/// signs; the environmental noise has variance `1 − h²`, so Var(y) ≈ 1
/// before covariate effects.
pub fn simulate_phenotype(
    x: &Matrix,
    c: &Matrix,
    cfg: &PhenotypeSim,
    rng: &mut impl Rng,
) -> Result<(Vec<f64>, PhenotypeTruth), GwasError> {
    let n = x.rows();
    let m = x.cols();
    if c.rows() != n {
        return Err(GwasError::ShapeMismatch {
            what: "covariate rows",
            expected: n,
            got: c.rows(),
        });
    }
    if cfg.n_causal > m {
        return Err(GwasError::ShapeMismatch {
            what: "n_causal vs variants",
            expected: m,
            got: cfg.n_causal,
        });
    }
    if !(0.0..1.0).contains(&cfg.heritability) {
        return Err(GwasError::BadParameter {
            what: "heritability",
            value: cfg.heritability,
        });
    }
    if cfg.covariate_effects.len() > c.cols() {
        return Err(GwasError::ShapeMismatch {
            what: "covariate effects vs K",
            expected: c.cols(),
            got: cfg.covariate_effects.len(),
        });
    }

    // Choose causal variants without replacement (partial Fisher–Yates).
    let mut indices: Vec<usize> = (0..m).collect();
    for i in 0..cfg.n_causal {
        let j = rng.gen_range(i..m);
        indices.swap(i, j);
    }
    let mut causal: Vec<usize> = indices[..cfg.n_causal].to_vec();
    causal.sort_unstable();

    let per_effect = if cfg.n_causal > 0 {
        (cfg.heritability / cfg.n_causal as f64).sqrt()
    } else {
        0.0
    };
    let effects: Vec<f64> = causal
        .iter()
        .map(|_| {
            if rng.gen::<bool>() {
                per_effect
            } else {
                -per_effect
            }
        })
        .collect();

    let noise_sd = (1.0 - cfg.heritability).sqrt();
    let mut y = vec![0.0; n];
    for (idx, eff) in causal.iter().zip(&effects) {
        for (yi, xi) in y.iter_mut().zip(x.col(*idx)) {
            *yi += eff * xi;
        }
    }
    for (j, gamma) in cfg.covariate_effects.iter().enumerate() {
        for (yi, ci) in y.iter_mut().zip(c.col(j)) {
            *yi += gamma * ci;
        }
    }
    for yi in y.iter_mut() {
        *yi += noise_sd * sample_standard_normal(rng);
    }

    Ok((
        y,
        PhenotypeTruth {
            causal,
            effects,
            h2_target: cfg.heritability,
        },
    ))
}

/// Standard normal via the Marsaglia polar method (no extra dependency).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills a vector with iid standard normals.
pub fn normal_vec(n: usize, rng: &mut impl Rng) -> Vec<f64> {
    (0..n).map(|_| sample_standard_normal(rng)).collect()
}

/// Fills an N×M matrix with iid standard normals — the paper's R-demo
/// data generator (`matrix(rnorm(N * M), N, M)`).
pub fn normal_matrix(n: usize, m: usize, rng: &mut impl Rng) -> Matrix {
    let data: Vec<f64> = (0..n * m).map(|_| sample_standard_normal(rng)).collect();
    Matrix::from_column_major(n, m, data).expect("shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = normal_matrix(20, 5, &mut rng);
        let c = normal_matrix(20, 2, &mut rng);
        let bad_h2 = PhenotypeSim {
            heritability: 1.0,
            ..Default::default()
        };
        assert!(simulate_phenotype(&x, &c, &bad_h2, &mut rng).is_err());
        let too_many = PhenotypeSim {
            n_causal: 6,
            ..Default::default()
        };
        assert!(simulate_phenotype(&x, &c, &too_many, &mut rng).is_err());
        let bad_gamma = PhenotypeSim {
            covariate_effects: vec![1.0; 3],
            ..Default::default()
        };
        assert!(simulate_phenotype(&x, &c, &bad_gamma, &mut rng).is_err());
        let wrong_rows = normal_matrix(19, 2, &mut rng);
        assert!(simulate_phenotype(&x, &wrong_rows, &PhenotypeSim::default(), &mut rng).is_err());
    }

    #[test]
    fn truth_shape_and_effect_magnitude() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = normal_matrix(100, 50, &mut rng);
        let c = normal_matrix(100, 1, &mut rng);
        let cfg = PhenotypeSim {
            n_causal: 10,
            heritability: 0.4,
            covariate_effects: vec![0.5],
        };
        let (y, truth) = simulate_phenotype(&x, &c, &cfg, &mut rng).unwrap();
        assert_eq!(y.len(), 100);
        assert_eq!(truth.causal.len(), 10);
        assert_eq!(truth.effects.len(), 10);
        let expected = (0.4f64 / 10.0).sqrt();
        for e in &truth.effects {
            assert!((e.abs() - expected).abs() < 1e-12);
        }
        // Sorted, unique, in range.
        for w in truth.causal.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*truth.causal.last().unwrap() < 50);
        assert!(truth.is_causal(truth.causal[0]));
        assert!(!truth.is_causal(usize::MAX - 1));
    }

    #[test]
    fn heritability_realized_approximately() {
        // With standardized genotypes, Var(genetic part) ≈ h².
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = normal_matrix(4000, 30, &mut rng);
        crate::standardize::standardize_columns(&mut x);
        let c = Matrix::zeros(4000, 0);
        let cfg = PhenotypeSim {
            n_causal: 10,
            heritability: 0.5,
            covariate_effects: vec![],
        };
        let (y, _) = simulate_phenotype(&x, &c, &cfg, &mut rng).unwrap();
        let mean: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let var: f64 =
            y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (y.len() - 1) as f64;
        assert!((var - 1.0).abs() < 0.12, "total variance {var}");
    }

    #[test]
    fn zero_causal_is_pure_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = normal_matrix(50, 5, &mut rng);
        let c = Matrix::zeros(50, 0);
        let cfg = PhenotypeSim {
            n_causal: 0,
            heritability: 0.0,
            covariate_effects: vec![],
        };
        let (y, truth) = simulate_phenotype(&x, &c, &cfg, &mut rng).unwrap();
        assert!(truth.causal.is_empty());
        assert_eq!(y.len(), 50);
    }

    #[test]
    fn polar_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = normal_vec(40000, &mut rng);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn reproducible() {
        let cfg = PhenotypeSim::default();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = normal_matrix(30, 10, &mut rng);
            let c = normal_matrix(30, 1, &mut rng);
            simulate_phenotype(&x, &c, &cfg, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
    }
}
