//! Error type for the GWAS workload substrate.

use std::fmt;

/// Errors from simulation configuration, IO and parsing.
#[derive(Debug)]
pub enum GwasError {
    /// A simulation parameter was out of range.
    BadParameter { what: &'static str, value: f64 },
    /// Shapes disagreed (e.g. covariates vs genotype rows).
    ShapeMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// File IO failed.
    Io(std::io::Error),
    /// A TSV cell failed to parse.
    Parse {
        line: usize,
        column: usize,
        token: String,
    },
    /// A table was ragged or empty.
    MalformedTable { line: usize, detail: &'static str },
}

impl fmt::Display for GwasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GwasError::BadParameter { what, value } => {
                write!(f, "bad parameter {what} = {value}")
            }
            GwasError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected}, got {got}"),
            GwasError::Io(e) => write!(f, "io: {e}"),
            GwasError::Parse {
                line,
                column,
                token,
            } => write!(f, "parse error at line {line}, column {column}: {token:?}"),
            GwasError::MalformedTable { line, detail } => {
                write!(f, "malformed table at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for GwasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GwasError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GwasError {
    fn from(e: std::io::Error) -> Self {
        GwasError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GwasError::BadParameter {
            what: "maf",
            value: 1.5,
        };
        assert!(e.to_string().contains("maf"));
        let e = GwasError::Parse {
            line: 3,
            column: 2,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_wraps() {
        let e: GwasError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
    }
}
