//! Column imputation and standardization.
//!
//! GWAS practice standardizes each variant column to mean 0 / variance 1
//! (after mean-imputing missing calls) so effect sizes are per standard
//! deviation of genotype and the scan's numerics are well-conditioned.

use dash_linalg::Matrix;

/// Standardizes every column of `x` in place to mean 0 and unit sample
/// variance; constant columns are centered only (variance left at 0, so
/// downstream scans flag them degenerate instead of dividing by zero).
///
/// Returns `(means, sds)` per column; `sds[j]` is 0 for constant columns.
pub fn standardize_columns(x: &mut Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = x.rows();
    let mut means = Vec::with_capacity(x.cols());
    let mut sds = Vec::with_capacity(x.cols());
    for j in 0..x.cols() {
        let col = x.col_mut(j);
        let mean = if n == 0 {
            0.0
        } else {
            col.iter().sum::<f64>() / n as f64
        };
        for v in col.iter_mut() {
            *v -= mean;
        }
        let var = if n > 1 {
            col.iter().map(|v| v * v).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let sd = var.sqrt();
        if sd > 0.0 {
            for v in col.iter_mut() {
                *v /= sd;
            }
        }
        means.push(mean);
        sds.push(sd);
    }
    (means, sds)
}

/// Convenience: dosage conversion (mean imputation) plus standardization
/// for a genotype matrix.
pub fn impute_and_standardize(g: &crate::genotype::GenotypeMatrix) -> Matrix {
    let mut d = g.to_dosages();
    standardize_columns(&mut d);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::{simulate_genotypes, GenotypeSimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standardized_columns_have_zero_mean_unit_variance() {
        let mut x = Matrix::from_fn(50, 3, |r, c| ((r * 3 + c) as f64).sin() * 4.0 + 2.0);
        let (means, sds) = standardize_columns(&mut x);
        assert_eq!(means.len(), 3);
        for (j, &sd) in sds.iter().enumerate() {
            let col = x.col(j);
            let mean: f64 = col.iter().sum::<f64>() / 50.0;
            let var: f64 = col.iter().map(|v| v * v).sum::<f64>() / 49.0;
            assert!(mean.abs() < 1e-12, "col {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-10, "col {j} var {var}");
            assert!(sd > 0.0);
        }
    }

    #[test]
    fn constant_column_centered_not_scaled() {
        let mut x = Matrix::from_cols(&[&[5.0; 4], &[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let (means, sds) = standardize_columns(&mut x);
        assert_eq!(means[0], 5.0);
        assert_eq!(sds[0], 0.0);
        assert!(x.col(0).iter().all(|&v| v == 0.0));
        assert!(sds[1] > 0.0);
    }

    #[test]
    fn empty_matrix_is_noop() {
        let mut x = Matrix::zeros(0, 2);
        let (means, sds) = standardize_columns(&mut x);
        assert_eq!(means, vec![0.0, 0.0]);
        assert_eq!(sds, vec![0.0, 0.0]);
    }

    #[test]
    fn genotype_pipeline() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GenotypeSimConfig {
            maf_range: (0.1, 0.4),
            missing_rate: 0.1,
        };
        let g = simulate_genotypes(300, 5, &cfg, &mut rng).unwrap();
        let x = impute_and_standardize(&g);
        for j in 0..5 {
            let col = x.col(j);
            let mean: f64 = col.iter().sum::<f64>() / 300.0;
            assert!(mean.abs() < 1e-10);
        }
    }
}
