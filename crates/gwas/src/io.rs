//! TSV import/export.
//!
//! A deliberately simple, dependency-free tabular format: numeric matrix
//! files (one row per line, tab-separated) and scan-result tables with the
//! same columns as the paper's R demo data frame
//! (`beta, sigma, tstat, pval`).

use crate::error::GwasError;
use dash_core::model::ScanResult;
use dash_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a matrix as TSV (rows × columns).
pub fn write_matrix_tsv(path: &Path, m: &Matrix) -> Result<(), GwasError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_matrix(&mut w, m)?;
    w.flush()?;
    Ok(())
}

/// Writes a matrix to any writer.
pub fn write_matrix(w: &mut impl Write, m: &Matrix) -> Result<(), GwasError> {
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            if j > 0 {
                w.write_all(b"\t")?;
            }
            // {:?}-style shortest roundtrip formatting for f64.
            write!(w, "{}", RoundTrip(m.get(i, j)))?;
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a TSV matrix from a file.
pub fn read_matrix_tsv(path: &Path) -> Result<Matrix, GwasError> {
    let file = std::fs::File::open(path)?;
    read_matrix(BufReader::new(file))
}

/// Reads a TSV matrix from any reader.
pub fn read_matrix(r: impl Read) -> Result<Matrix, GwasError> {
    let reader = BufReader::new(r);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for (colno, token) in line.split('\t').enumerate() {
            let v: f64 = token.trim().parse().map_err(|_| GwasError::Parse {
                line: lineno + 1,
                column: colno + 1,
                token: token.to_string(),
            })?;
            row.push(v);
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(GwasError::MalformedTable {
                    line: lineno + 1,
                    detail: "ragged row",
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(GwasError::MalformedTable {
            line: 0,
            detail: "empty matrix file",
        });
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs).map_err(|_| GwasError::MalformedTable {
        line: 0,
        detail: "inconsistent shape",
    })
}

/// Writes scan results as a header-bearing TSV with the R demo's column
/// names.
pub fn write_scan_tsv(path: &Path, res: &ScanResult) -> Result<(), GwasError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "variant\tbeta\tsigma\ttstat\tpval")?;
    for j in 0..res.len() {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}",
            j,
            RoundTrip(res.beta[j]),
            RoundTrip(res.se[j]),
            RoundTrip(res.t[j]),
            RoundTrip(res.p[j]),
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a scan-result TSV written by [`write_scan_tsv`].
pub fn read_scan_tsv(path: &Path, df: usize) -> Result<ScanResult, GwasError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut beta = Vec::new();
    let mut se = Vec::new();
    let mut t = Vec::new();
    let mut p = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if !line.starts_with("variant\t") {
                return Err(GwasError::MalformedTable {
                    line: 1,
                    detail: "missing header",
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != 5 {
            return Err(GwasError::MalformedTable {
                line: lineno + 1,
                detail: "expected 5 columns",
            });
        }
        let parse = |colno: usize, tok: &str| -> Result<f64, GwasError> {
            tok.trim().parse().map_err(|_| GwasError::Parse {
                line: lineno + 1,
                column: colno + 1,
                token: tok.to_string(),
            })
        };
        beta.push(parse(1, cells[1])?);
        se.push(parse(2, cells[2])?);
        t.push(parse(3, cells[3])?);
        p.push(parse(4, cells[4])?);
    }
    let n_degenerate = beta.iter().filter(|b| b.is_nan()).count();
    Ok(ScanResult {
        beta,
        se,
        t,
        p,
        df,
        n_degenerate,
    })
}

/// Shortest-roundtrip f64 formatting (Rust's `{}` on f64 is already
/// shortest-roundtrip; NaN spelled so `parse` accepts it back).
struct RoundTrip(f64);

impl std::fmt::Display for RoundTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_nan() {
            write!(f, "NaN")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dash_gwas_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, -2.5, 3.125][..], &[0.1, 1e-12, -7.0][..]]).unwrap();
        let path = tmp("mat.tsv");
        write_matrix_tsv(&path, &m).unwrap();
        let back = read_matrix_tsv(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_parse_errors() {
        let bad = "1.0\t2.0\nx\t3.0\n";
        assert!(matches!(
            read_matrix(bad.as_bytes()),
            Err(GwasError::Parse {
                line: 2,
                column: 1,
                ..
            })
        ));
        let ragged = "1.0\t2.0\n3.0\n";
        assert!(matches!(
            read_matrix(ragged.as_bytes()),
            Err(GwasError::MalformedTable { .. })
        ));
        assert!(read_matrix("".as_bytes()).is_err());
    }

    #[test]
    fn scan_roundtrip_with_nan() {
        let res = ScanResult {
            beta: vec![0.5, f64::NAN],
            se: vec![0.1, f64::NAN],
            t: vec![5.0, f64::NAN],
            p: vec![1e-6, f64::NAN],
            df: 42,
            n_degenerate: 1,
        };
        let path = tmp("scan.tsv");
        write_scan_tsv(&path, &res).unwrap();
        let back = read_scan_tsv(&path, 42).unwrap();
        assert_eq!(back.beta[0], 0.5);
        assert!(back.beta[1].is_nan());
        assert_eq!(back.n_degenerate, 1);
        assert_eq!(back.df, 42);
        assert_eq!(back.p[0], 1e-6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_header_enforced() {
        let path = tmp("noheader.tsv");
        std::fs::write(&path, "0\t1\t2\t3\t4\n").unwrap();
        assert!(matches!(
            read_scan_tsv(&path, 1),
            Err(GwasError::MalformedTable { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_matrix_tsv(Path::new("/nonexistent/dash.tsv")),
            Err(GwasError::Io(_))
        ));
    }
}
