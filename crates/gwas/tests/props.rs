//! Property-based tests for the GWAS workload substrate.

use dash_gwas::genotype::{simulate_genotypes_at, simulate_genotypes_ld};
use dash_gwas::io::{read_matrix, write_matrix};
use dash_gwas::power::evaluate_scan;
use dash_gwas::sparse::SparseMatrix;
use dash_gwas::standardize::standardize_columns;
use dash_linalg::{dot, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tsv_roundtrip_any_matrix(
        rows in 1usize..12,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            f64::from_bits((s >> 12) | 0x3FF0_0000_0000_0000) - 1.5 // in [-0.5, 0.5]
        };
        let m = Matrix::from_fn(rows, cols, |_, _| next());
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn genotype_codes_and_maf_in_range(
        n in 1usize..200,
        maf in 0.01f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = simulate_genotypes_at(n, &[maf, maf], 0.0, &mut rng).unwrap();
        for j in 0..2 {
            prop_assert!(g.col(j).iter().all(|&c| (0..=2).contains(&c)));
            let obs = g.observed_maf(j).unwrap();
            prop_assert!((0.0..=1.0).contains(&obs));
        }
    }

    #[test]
    fn ld_genotypes_valid_at_any_copy_rate(
        copy in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = simulate_genotypes_ld(50, &[0.2, 0.3, 0.4], copy, &mut rng).unwrap();
        for j in 0..3 {
            prop_assert!(g.col(j).iter().all(|&c| (0..=2).contains(&c)));
        }
    }

    #[test]
    fn sparse_dots_equal_dense_for_any_fill(
        n in 1usize..40,
        fill in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        // Dense column mostly `fill` with random deviations.
        let col: Vec<f64> = (0..n)
            .map(|_| if next() > 0.5 { next() } else { fill })
            .collect();
        let dense = Matrix::from_cols(&[&col]).unwrap();
        let sparse = SparseMatrix::from_dense(&dense, fill).unwrap();
        let v: Vec<f64> = (0..n).map(|_| next()).collect();
        let v_sum: f64 = v.iter().sum();
        let expect = dot(&col, &v);
        prop_assert!((sparse.col_dot(0, &v, v_sum) - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        let expect_ss = dot(&col, &col);
        prop_assert!((sparse.col_self_dot(0) - expect_ss).abs() < 1e-9 * (1.0 + expect_ss));
        prop_assert_eq!(sparse.col_dense(0), col);
    }

    #[test]
    fn standardize_then_restandardize_is_stable(
        rows in 2usize..30,
        cols in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        };
        let mut m = Matrix::from_fn(rows, cols, |_, _| next());
        let (_, sds) = standardize_columns(&mut m);
        let snapshot = m.clone();
        let (means2, sds2) = standardize_columns(&mut m);
        for j in 0..cols {
            prop_assert!(means2[j].abs() < 1e-9, "col {j} mean {}", means2[j]);
            if sds[j] > 0.0 {
                prop_assert!((sds2[j] - 1.0).abs() < 1e-9);
            }
        }
        prop_assert!(m.max_abs_diff(&snapshot).unwrap() < 1e-9);
    }

    #[test]
    fn power_report_counts_are_consistent(
        p_values in proptest::collection::vec(0.0f64..1.0, 1..50),
        causal_frac in 0.0f64..1.0,
        alpha in 0.001f64..0.5,
    ) {
        let n_causal = (p_values.len() as f64 * causal_frac) as usize;
        let causal: Vec<usize> = (0..n_causal).collect();
        let r = evaluate_scan(&p_values, &causal, alpha);
        prop_assert_eq!(r.n_tested, p_values.len());
        prop_assert!(r.true_positives <= r.n_causal);
        prop_assert!(r.false_positives <= r.n_tested - r.n_causal);
        if r.n_causal > 0 {
            prop_assert!((0.0..=1.0).contains(&r.power));
        }
    }
}
