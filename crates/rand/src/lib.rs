//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a fast,
//! well-tested generator that is more than adequate for simulation and
//! testing. It is **not** the cryptographically strong ChaCha generator
//! the real `rand` ships; the one security-sensitive consumer in this
//! workspace (`dash-mpc`'s share/mask PRG) documents that a deployment
//! must swap in a cryptographic PRG. Streams are deterministic per seed
//! and stable across platforms, which is what the experiments need.

/// Low-level uniform word generation.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the role of
/// `Standard: Distribution<T>` in the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the simulations can detect.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // The upper endpoint has measure zero; treating the
                // inclusive range like the half-open one is exact enough
                // for floats.
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, reduced to the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (see crate docs for the
    /// caveat versus the real `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Captures the raw xoshiro256** state so a generator can be
        /// persisted and later resumed mid-stream (checkpoint/restore).
        /// The state fully determines every future draw, so callers that
        /// treat the stream as secret must protect the snapshot the same
        /// way they protect the seed.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot; the
        /// resumed stream continues exactly where the snapshot was taken.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state, as
            // recommended by the xoshiro authors.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            a.next_u64();
        }
        let snap = a.state();
        let tail_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let tail_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(1usize..=6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_handles_ragged_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
