//! Cross-file program registry over the parsed ASTs: a flattened
//! function table (with impl self-types), a struct/enum field index, and
//! the transitive set of `Secret`-bearing struct types.
//!
//! Shared by the AST-based `cross-function-taint` and `constant-time`
//! passes; built once per analysis run from every scoped [`FileModel`].

use crate::ast::{Fun, Item, StructDef, Ty};
use crate::model::FileModel;
use std::collections::{BTreeMap, BTreeSet};

/// One function, flattened out of its item tree.
pub(crate) struct FnEntry<'a> {
    pub model: usize,
    pub fun: &'a Fun,
    /// Impl/trait self type head, if the fn is a method.
    pub self_ty: Option<String>,
    /// Defined in `crates/mpc/src/secret.rs` (the wrapper module).
    pub in_secret_rs: bool,
}

impl FnEntry<'_> {
    /// Whether the fn declares any return type at all.
    pub fn returns_value(&self) -> bool {
        !(self.fun.ret.head.is_empty() && self.fun.ret.idents.is_empty())
    }
}

pub(crate) struct Registry<'a> {
    pub models: &'a [FileModel],
    pub fns: Vec<FnEntry<'a>>,
    pub structs: BTreeMap<&'a str, &'a StructDef>,
    /// `(self_ty, method)` → index into `fns`.
    pub methods: BTreeMap<(String, String), usize>,
    /// Free fn name → indices into `fns`.
    pub free: BTreeMap<String, Vec<usize>>,
    /// Struct/enum names whose fields (transitively) carry `Secret`.
    pub secret_structs: BTreeSet<String>,
}

impl<'a> Registry<'a> {
    pub fn build(models: &'a [FileModel]) -> Registry<'a> {
        let mut fns = Vec::new();
        let mut structs: BTreeMap<&str, &StructDef> = BTreeMap::new();
        for (mi, m) in models.iter().enumerate() {
            let in_secret = m.rel.ends_with("mpc/src/secret.rs");
            collect(&m.ast, mi, in_secret, &mut fns, &mut structs);
        }
        let mut methods = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, e) in fns.iter().enumerate() {
            match &e.self_ty {
                Some(st) => {
                    methods.entry((st.clone(), e.fun.name.clone())).or_insert(i);
                }
                None => free.entry(e.fun.name.clone()).or_default().push(i),
            }
        }
        // Transitive closure: a struct is Secret-bearing if any field
        // type mentions `Secret` or another Secret-bearing struct.
        let mut secret_structs: BTreeSet<String> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (name, sd) in &structs {
                if secret_structs.contains(*name) {
                    continue;
                }
                let bearing = sd.fields.iter().any(|(_, ty)| {
                    ty.mentions("Secret") || ty.idents.iter().any(|id| secret_structs.contains(id))
                });
                if bearing {
                    secret_structs.insert((*name).to_string());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Registry {
            models,
            fns,
            structs,
            methods,
            free,
            secret_structs,
        }
    }

    /// Whether a value of this type can carry secret material: the type
    /// mentions `Secret` or a `Secret`-bearing struct anywhere, or is
    /// `Self` inside such a type's impl.
    pub fn ty_secret(&self, ty: &Ty, self_ty: Option<&str>) -> bool {
        if ty.mentions("Secret") {
            return true;
        }
        if ty.idents.iter().any(|id| self.secret_structs.contains(id)) {
            return true;
        }
        if let Some(st) = self_ty {
            if ty.mentions("Self") && (st == "Secret" || self.secret_structs.contains(st)) {
                return true;
            }
        }
        false
    }

    /// The declared type of `struct_head.field` (named or tuple index).
    pub fn field_ty(&self, struct_head: &str, field: &str) -> Option<&Ty> {
        let sd = self.structs.get(struct_head)?;
        sd.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
    }
}

fn collect<'a>(
    items: &'a [Item],
    model: usize,
    in_secret_rs: bool,
    fns: &mut Vec<FnEntry<'a>>,
    structs: &mut BTreeMap<&'a str, &'a StructDef>,
) {
    for item in items {
        match item {
            Item::Fn(f) => fns.push(FnEntry {
                model,
                fun: f,
                self_ty: None,
                in_secret_rs,
            }),
            Item::Struct(sd) => {
                structs.entry(sd.name.as_str()).or_insert(sd);
            }
            Item::Impl(ib) => {
                for f in &ib.fns {
                    fns.push(FnEntry {
                        model,
                        fun: f,
                        self_ty: Some(ib.self_ty.clone()),
                        in_secret_rs,
                    });
                }
            }
            Item::Mod(md) => collect(&md.items, model, in_secret_rs, fns, structs),
            Item::Other => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_bearing_structs_close_transitively() {
        let src = r#"
pub struct Inner { shares: Secret<Vec<R64>> }
pub struct Outer { label: String, inner: Inner }
pub struct Clean { label: String, count: usize }
"#;
        let m = FileModel::parse("crates/mpc/src/x.rs", src);
        let models = vec![m];
        let reg = Registry::build(&models);
        assert!(reg.secret_structs.contains("Inner"));
        assert!(reg.secret_structs.contains("Outer"));
        assert!(!reg.secret_structs.contains("Clean"));
        assert!(reg.ty_secret(&Ty::simple("Outer"), None));
        assert!(!reg.ty_secret(&Ty::simple("Clean"), None));
    }

    #[test]
    fn methods_and_free_fns_indexed() {
        let src = r#"
impl Pkt { pub fn label(&self) -> String { self.label.clone() } }
pub fn helper() -> usize { 1 }
"#;
        let m = FileModel::parse("crates/mpc/src/x.rs", src);
        let models = vec![m];
        let reg = Registry::build(&models);
        assert!(reg
            .methods
            .contains_key(&("Pkt".to_string(), "label".to_string())));
        assert!(reg.free.contains_key("helper"));
    }
}
