//! Validator for `dash-trace/1` JSON exports (`--validate-trace`).
//!
//! The trace format is the machine-readable output of `dash secure-scan
//! --trace-out`; CI's smoke stage runs a small scan and feeds the file
//! through this validator, so a schema drift between `dash-obs` and its
//! consumers fails the gate instead of silently producing garbage
//! dashboards.
//!
//! Checks, in order:
//! - the document parses and carries `"schema": "dash-trace/1"`;
//! - `n_parties` is a positive integer and the `counters` array has
//!   exactly one entry per party, in party order, each carrying every
//!   counter key as a non-negative integer;
//! - conservation: summed `bytes_sent` equals summed `bytes_received`
//!   and likewise for messages (every frame credits both sides at the
//!   transport's single accounting point);
//! - every span names a valid party, closes after it opens, and has a
//!   non-empty name; `dropped_spans` is a non-negative integer.

use crate::baseline::{parse_json, Json};

/// Counter keys every per-party counters object must carry (mirrors
/// `dash_obs::Counter::ALL` — update both together).
pub const COUNTER_KEYS: [&str; 11] = [
    "bytes_sent",
    "bytes_received",
    "messages_sent",
    "messages_received",
    "retries",
    "timeouts",
    "triples_consumed",
    "opened_scalars",
    "heartbeats_sent",
    "reconnects",
    "resumes",
];

/// Headline numbers of a valid trace, for the CLI's one-line report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub n_parties: usize,
    pub total_bytes: u64,
    pub n_spans: usize,
}

/// Reads `v` as a non-negative integer (the trace writes plain u64s).
fn as_count(v: &Json) -> Option<u64> {
    let n = v.as_num()?;
    if n >= 0.0 && n.fract() == 0.0 {
        Some(n as u64)
    } else {
        None
    }
}

/// Validates a `dash-trace/1` document, returning its headline numbers
/// or every problem found (the list is never empty on `Err`).
pub fn validate_trace(src: &str) -> Result<TraceSummary, Vec<String>> {
    let doc = match parse_json(src) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let mut errs = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some("dash-trace/1") => {}
        Some(other) => errs.push(format!(
            "unknown schema {other:?}, expected \"dash-trace/1\""
        )),
        None => errs.push("missing \"schema\" field".to_string()),
    }
    let n_parties = match doc.get("n_parties").and_then(as_count) {
        Some(n) if n >= 1 => n as usize,
        _ => {
            errs.push("\"n_parties\" must be a positive integer".to_string());
            0
        }
    };
    if doc.get("dropped_spans").and_then(as_count).is_none() {
        errs.push("\"dropped_spans\" must be a non-negative integer".to_string());
    }

    let mut sums = [0u64; COUNTER_KEYS.len()];
    match doc.get("counters").and_then(Json::as_arr) {
        None => errs.push("missing \"counters\" array".to_string()),
        Some(rows) => {
            if n_parties > 0 && rows.len() != n_parties {
                errs.push(format!(
                    "counters array has {} entries for {n_parties} parties",
                    rows.len()
                ));
            }
            for (p, row) in rows.iter().enumerate() {
                if row.get("party").and_then(as_count) != Some(p as u64) {
                    errs.push(format!("counters[{p}] is not for party {p}"));
                }
                for (slot, key) in COUNTER_KEYS.iter().enumerate() {
                    match row.get(key).and_then(as_count) {
                        Some(v) => {
                            if let Some(s) = sums.get_mut(slot) {
                                *s += v;
                            }
                        }
                        None => errs.push(format!(
                            "counters[{p}] missing non-negative integer \"{key}\""
                        )),
                    }
                }
            }
        }
    }
    // Conservation at the transport accounting point: every frame adds
    // its bytes to the sender's sent and the receiver's received counter.
    let [sent, received, msg_sent, msg_received, ..] = sums;
    if sent != received {
        errs.push(format!(
            "byte conservation violated: {sent} sent vs {received} received"
        ));
    }
    if msg_sent != msg_received {
        errs.push(format!(
            "message conservation violated: {msg_sent} sent vs {msg_received} received"
        ));
    }

    let mut n_spans = 0;
    match doc.get("spans").and_then(Json::as_arr) {
        None => errs.push("missing \"spans\" array".to_string()),
        Some(spans) => {
            n_spans = spans.len();
            for (i, s) in spans.iter().enumerate() {
                match s.get("party").and_then(as_count) {
                    Some(p) if n_parties == 0 || (p as usize) < n_parties => {}
                    _ => errs.push(format!("spans[{i}] has an out-of-range party")),
                }
                if s.get("name")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errs.push(format!("spans[{i}] has no name"));
                }
                let start = s.get("start_ns").and_then(as_count);
                let end = s.get("end_ns").and_then(as_count);
                match (start, end) {
                    (Some(a), Some(b)) if b >= a => {}
                    _ => errs.push(format!("spans[{i}] timestamps are not monotone integers")),
                }
                if s.get("depth").and_then(as_count).is_none() {
                    errs.push(format!("spans[{i}] missing depth"));
                }
            }
        }
    }

    if errs.is_empty() {
        Ok(TraceSummary {
            n_parties,
            total_bytes: sent,
            n_spans,
        })
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters_row(p: usize, sent: u64, received: u64) -> String {
        format!(
            "{{\"party\": {p}, \"bytes_sent\": {sent}, \"bytes_received\": {received}, \
             \"messages_sent\": 1, \"messages_received\": 1, \"retries\": 0, \
             \"timeouts\": 0, \"triples_consumed\": 0, \"opened_scalars\": 0, \
             \"heartbeats_sent\": 0, \"reconnects\": 0, \"resumes\": 0}}"
        )
    }

    fn doc(rows: &[String], spans: &str) -> String {
        format!(
            "{{\"schema\": \"dash-trace/1\", \"n_parties\": {}, \"dropped_spans\": 0, \
             \"counters\": [{}], \"spans\": [{spans}]}}",
            rows.len(),
            rows.join(", ")
        )
    }

    #[test]
    fn valid_trace_accepted() {
        let src = doc(
            &[counters_row(0, 100, 50), counters_row(1, 50, 100)],
            "{\"party\": 0, \"name\": \"scan\", \"index\": null, \"depth\": 0, \
             \"start_ns\": 5, \"end_ns\": 90}",
        );
        let s = validate_trace(&src).unwrap();
        assert_eq!(
            s,
            TraceSummary {
                n_parties: 2,
                total_bytes: 150,
                n_spans: 1
            }
        );
    }

    #[test]
    fn conservation_violation_rejected() {
        let src = doc(&[counters_row(0, 100, 50), counters_row(1, 50, 90)], "");
        let errs = validate_trace(&src).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("byte conservation")),
            "{errs:?}"
        );
    }

    #[test]
    fn wrong_schema_and_party_mismatch_rejected() {
        let src = "{\"schema\": \"dash-trace/2\", \"n_parties\": 3, \"dropped_spans\": 0, \
                   \"counters\": [], \"spans\": []}";
        let errs = validate_trace(src).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("unknown schema")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("3 parties")), "{errs:?}");
    }

    #[test]
    fn missing_counter_key_and_bad_span_rejected() {
        let row = "{\"party\": 0, \"bytes_sent\": 10}".to_string();
        let src = format!(
            "{{\"schema\": \"dash-trace/1\", \"n_parties\": 1, \"dropped_spans\": 0, \
             \"counters\": [{row}], \"spans\": [{{\"party\": 4, \"name\": \"\", \
             \"index\": null, \"depth\": 0, \"start_ns\": 9, \"end_ns\": 3}}]}}"
        );
        let errs = validate_trace(&src).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("bytes_received")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("out-of-range party")));
        assert!(errs.iter().any(|e| e.contains("no name")));
        assert!(errs.iter().any(|e| e.contains("not monotone")));
    }

    #[test]
    fn garbage_rejected() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{}").is_err());
    }
}
