//! Constant-time discipline for share arithmetic (`constant-time`).
//!
//! The disclosure log and taint passes pin *what* the protocols open;
//! they say nothing about timing. A single data-dependent branch,
//! division, or table lookup in the field/ring arithmetic leaks
//! share-dependent timing to anyone co-resident with a party. This lint
//! denies the shapes that produce such leaks inside the mpc crate's
//! arithmetic and share modules, working over the parsed AST
//! (`crate::ast`):
//!
//! - [`ExprKind::If`]/[`ExprKind::While`]/[`ExprKind::Match`] whose
//!   condition (or scrutinee) reads a secret-tainted value;
//! - [`ExprKind::Binary`] `%`, `/`, or any comparison with a tainted
//!   operand (shifts are distinct operators in the AST, so `<<`/`>>`
//!   never need disambiguation);
//! - [`ExprKind::Index`] where the index expression is tainted.
//!
//! **Taint** starts from function parameters whose declared type mentions
//! an element/secret type (`F61`, `R64`, `Secret`, `BeaverTriple`,
//! `InnerTriple` — plus raw `u64`/`u128`/`i64` words inside the element
//! modules themselves, where every word *is* an element), from `self` in
//! the element/share modules, and from locals bound from tainted
//! expressions or from calls into the element-producing call graph — a
//! seed-and-fixpoint closure over the program registry, seeded on
//! element-returning signatures.
//!
//! **Public metadata escapes the taint**: an access chain that goes
//! through a length/shape method (`len`, `is_empty`, `scalar_count`,
//! `first`, `get`, …) is public — `if shares.len() != n` is fine,
//! `if shares[0].value() > n` is not. A cast (`as`) ends a *binary
//! operand* chain: casts launder provenance for arithmetic, which keeps
//! the fixed-point decode divisions (`v.as_i64() as f64 / scale`) clean —
//! division by a *public* scale after a cast is exactly the pattern the
//! codec uses on purpose. Branch conditions and index expressions look
//! through casts: a branch on `(x.0 & 7) as usize` still branches on
//! share material.
//!
//! Test code is exempt; deliberate exceptions carry
//! `// dash-analyze::allow(constant-time): reason` pragmas (the only one
//! in-tree is `F61::inverse`, whose `Option` return is inherently a
//! branch on invertibility).

use crate::ast::{BinOp, Block, Expr, ExprKind, Stmt};
use crate::model::FileModel;
use crate::registry::Registry;
use crate::Finding;
use std::collections::BTreeSet;

const LINT: &str = "constant-time";

/// Basenames of the mpc modules under constant-time discipline. The
/// protocol/transport layers above them branch on *public* control flow
/// (lengths, tags, party ids) and are out of scope by design.
const CT_MODULES: [&str; 6] = [
    "field.rs",
    "ring.rs",
    "ctime.rs",
    "fixed.rs",
    "share.rs",
    "secret.rs",
];

/// Modules where every raw machine word is an element (so `u64`/`u128`/
/// `i64` parameters are secret too, not just the named element types).
const WORD_MODULES: [&str; 3] = ["field.rs", "ring.rs", "ctime.rs"];

/// Type identifiers that mark a parameter as secret material.
fn secret_type_ident(s: &str) -> bool {
    matches!(s, "F61" | "R64" | "Secret" | "BeaverTriple" | "InnerTriple")
}

/// Raw word types — secret only inside the element modules.
fn word_type_ident(s: &str) -> bool {
    matches!(s, "u64" | "u128" | "i64" | "i128")
}

/// Methods whose result is public shape metadata, ending a taint chain.
/// Lengths and emptiness are exchanged in the clear by the protocols;
/// `first`/`get` appear only in `Option`-emptiness dispatch.
const SANITIZER_METHODS: [&str; 9] = [
    "len",
    "is_empty",
    "scalar_count",
    "vec_len",
    "first",
    "last",
    "get",
    "capacity",
    "count",
];

/// Audited-open / reconstruction identifiers: a body that reaches one
/// returns *opened* data, ending element-taint propagation through it.
fn sanitizing_ident(name: &str) -> bool {
    matches!(
        name,
        "open_via" | "open_local" | "open_sum_ring" | "open_sum_field" | "open_field"
    ) || name.starts_with("reconstruct_")
}

fn basename(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel)
}

/// Whether `rel` is under constant-time discipline. Fixture files named
/// `ct_*.rs` are scoped too, so the lint is testable standalone.
pub fn in_ct_scope(rel: &str) -> bool {
    let base = basename(rel);
    if base.starts_with("ct_") {
        return true;
    }
    CT_MODULES.contains(&base) && rel.contains("crates/mpc/src")
}

fn is_word_module(rel: &str) -> bool {
    let base = basename(rel);
    WORD_MODULES.contains(&base) || base.starts_with("ct_")
}

/// `self` carries element data everywhere except the codec, whose fields
/// are public configuration (`frac_bits`).
fn self_is_secret(rel: &str) -> bool {
    basename(rel) != "fixed.rs"
}

/// Collects the bare names every expression in a body calls, plus whether
/// the body reaches an audited open (which ends propagation through it).
fn body_calls(b: &Block, calls: &mut BTreeSet<String>, sanitizes: &mut bool) {
    let mut idents = Vec::new();
    for s in &b.stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    expr_calls(e, calls, sanitizes);
                    e.collect_idents(&mut idents);
                }
            }
            Stmt::Expr { expr, .. } => {
                expr_calls(expr, calls, sanitizes);
                expr.collect_idents(&mut idents);
            }
            Stmt::Item(_) | Stmt::Empty => {}
        }
    }
    if idents.iter().any(|i| sanitizing_ident(i)) {
        *sanitizes = true;
    }
}

fn expr_calls(e: &Expr, calls: &mut BTreeSet<String>, sanitizes: &mut bool) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(l) = segs.last() {
                    calls.insert(l.clone());
                }
            } else {
                expr_calls(callee, calls, sanitizes);
            }
            for a in args {
                expr_calls(a, calls, sanitizes);
            }
        }
        ExprKind::MethodCall { recv, name, args } => {
            calls.insert(name.clone());
            expr_calls(recv, calls, sanitizes);
            for a in args {
                expr_calls(a, calls, sanitizes);
            }
        }
        ExprKind::Closure { body, .. } => expr_calls(body, calls, sanitizes),
        ExprKind::Binary(_, a, b) | ExprKind::Assign { lhs: a, rhs: b } => {
            expr_calls(a, calls, sanitizes);
            expr_calls(b, calls, sanitizes);
        }
        ExprKind::Unary(i) | ExprKind::Try(i) | ExprKind::Cast(i, _) => {
            expr_calls(i, calls, sanitizes)
        }
        ExprKind::Index { base, index } => {
            expr_calls(base, calls, sanitizes);
            expr_calls(index, calls, sanitizes);
        }
        ExprKind::StructLit { fields, base, .. } => {
            for (_, fe) in fields {
                expr_calls(fe, calls, sanitizes);
            }
            if let Some(b) = base {
                expr_calls(b, calls, sanitizes);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) | ExprKind::Macro { args: es, .. } => {
            for x in es {
                expr_calls(x, calls, sanitizes);
            }
        }
        ExprKind::If { cond, then, els } => {
            expr_calls(cond, calls, sanitizes);
            body_calls(then, calls, sanitizes);
            if let Some(e) = els {
                expr_calls(e, calls, sanitizes);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            expr_calls(scrutinee, calls, sanitizes);
            for a in arms {
                if let Some(g) = &a.guard {
                    expr_calls(g, calls, sanitizes);
                }
                expr_calls(&a.body, calls, sanitizes);
            }
        }
        ExprKind::While { cond, body } => {
            expr_calls(cond, calls, sanitizes);
            body_calls(body, calls, sanitizes);
        }
        ExprKind::ForLoop { iter, body, .. } => {
            expr_calls(iter, calls, sanitizes);
            body_calls(body, calls, sanitizes);
        }
        ExprKind::Loop(b) | ExprKind::Block(b) => body_calls(b, calls, sanitizes),
        ExprKind::Return(v) | ExprKind::Break(v) => {
            if let Some(v) = v {
                expr_calls(v, calls, sanitizes);
            }
        }
        ExprKind::Range(a, b) => {
            if let Some(a) = a {
                expr_calls(a, calls, sanitizes);
            }
            if let Some(b) = b {
                expr_calls(b, calls, sanitizes);
            }
        }
        ExprKind::Field(b, _) => expr_calls(b, calls, sanitizes),
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => {}
    }
}

/// The element-producing call-graph closure: seeds are non-test fns whose
/// declared return type mentions an element type (`Self` counts inside
/// the word modules — `F61::new -> Self`), excluding the Secret wrapper's
/// own combinators; taint propagates through every value-returning,
/// non-sanitizing caller by bare name.
fn element_fns(reg: &Registry) -> BTreeSet<String> {
    struct Facts {
        name: String,
        returns_value: bool,
        sanitizes: bool,
        calls: BTreeSet<String>,
    }
    let mut facts = Vec::new();
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for e in &reg.fns {
        if e.fun.is_test {
            continue;
        }
        let Some(m) = reg.models.get(e.model) else {
            continue;
        };
        let mut calls = BTreeSet::new();
        let mut sanitizes = false;
        body_calls(&e.fun.body, &mut calls, &mut sanitizes);
        let seed = !m.rel.ends_with("mpc/src/secret.rs")
            && (e.fun.ret.idents.iter().any(|i| secret_type_ident(i))
                || (is_word_module(&m.rel) && e.fun.ret.mentions("Self")));
        if seed {
            tainted.insert(e.fun.name.clone());
        }
        facts.push(Facts {
            name: e.fun.name.clone(),
            returns_value: e.returns_value(),
            sanitizes,
            calls,
        });
    }
    loop {
        let mut changed = false;
        for f in &facts {
            if !f.returns_value || f.sanitizes || tainted.contains(&f.name) {
                continue;
            }
            if f.calls.iter().any(|c| tainted.contains(c)) {
                tainted.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// First tainted value read by `e`, if any: a tainted local (or a field
/// projection rooted at one), or a call into the element-producing graph.
/// Chains through public-metadata methods are clean. `casts_opaque`
/// selects binary-operand semantics, where `as` launders provenance.
fn offender(
    e: &Expr,
    locals: &BTreeSet<String>,
    fns: &BTreeSet<String>,
    casts_opaque: bool,
) -> Option<String> {
    let walk = |x: &Expr| offender(x, locals, fns, casts_opaque);
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 && locals.contains(&segs[0]) => {
            Some(segs[0].clone())
        }
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => None,
        ExprKind::Field(base, _) => {
            if let Some(p) = e.place() {
                let root = p.split('.').next().unwrap_or("");
                return locals.contains(root).then(|| root.to_string());
            }
            walk(base)
        }
        ExprKind::MethodCall { recv, name, args } => {
            if SANITIZER_METHODS.contains(&name.as_str()) {
                return None; // public shape metadata ends the chain
            }
            if let Some(o) = walk(recv) {
                return Some(o);
            }
            if fns.contains(name.as_str()) {
                return Some(name.clone());
            }
            args.iter().find_map(walk)
        }
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(l) = segs.last() {
                    if fns.contains(l.as_str()) {
                        return Some(l.clone());
                    }
                }
            } else if let Some(o) = walk(callee) {
                return Some(o);
            }
            args.iter().find_map(walk)
        }
        ExprKind::Cast(i, _) => {
            if casts_opaque {
                None
            } else {
                walk(i)
            }
        }
        ExprKind::Unary(i) | ExprKind::Try(i) => walk(i),
        ExprKind::Binary(_, a, b) | ExprKind::Assign { lhs: a, rhs: b } => {
            walk(a).or_else(|| walk(b))
        }
        ExprKind::Index { base, index } => walk(base).or_else(|| walk(index)),
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            args.iter().find_map(walk)
        }
        ExprKind::StructLit { fields, base, .. } => fields
            .iter()
            .find_map(|(_, fe)| walk(fe))
            .or_else(|| base.as_deref().and_then(walk)),
        ExprKind::Closure { body, .. } => walk(body),
        ExprKind::If { cond, then, els } => walk(cond)
            .or_else(|| block_offender(then, locals, fns, casts_opaque))
            .or_else(|| els.as_deref().and_then(walk)),
        ExprKind::Match { scrutinee, arms } => walk(scrutinee).or_else(|| {
            arms.iter()
                .find_map(|a| a.guard.as_ref().and_then(&walk).or_else(|| walk(&a.body)))
        }),
        ExprKind::While { cond, body } => {
            walk(cond).or_else(|| block_offender(body, locals, fns, casts_opaque))
        }
        ExprKind::ForLoop { iter, body, .. } => {
            walk(iter).or_else(|| block_offender(body, locals, fns, casts_opaque))
        }
        ExprKind::Loop(b) | ExprKind::Block(b) => block_offender(b, locals, fns, casts_opaque),
        ExprKind::Return(v) | ExprKind::Break(v) => v.as_deref().and_then(walk),
        ExprKind::Range(a, b) => a
            .as_deref()
            .and_then(&walk)
            .or_else(|| b.as_deref().and_then(walk)),
    }
}

fn block_offender(
    b: &Block,
    locals: &BTreeSet<String>,
    fns: &BTreeSet<String>,
    casts_opaque: bool,
) -> Option<String> {
    for s in &b.stmts {
        let e = match s {
            Stmt::Let { init: Some(e), .. } => e,
            Stmt::Expr { expr, .. } => expr,
            _ => continue,
        };
        if let Some(o) = offender(e, locals, fns, casts_opaque) {
            return Some(o);
        }
    }
    None
}

fn op_str(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        _ => return None,
    })
}

/// Per-function shape scan.
struct CtScan<'a> {
    m: &'a FileModel,
    fun_name: &'a str,
    locals: BTreeSet<String>,
    fns: &'a BTreeSet<String>,
    seen_lines: BTreeSet<usize>,
    out: Vec<Finding>,
}

impl CtScan<'_> {
    fn push(&mut self, line: usize, message: String) {
        if !self.seen_lines.insert(line) || self.m.allowed_line(LINT, line) {
            return;
        }
        self.out.push(Finding {
            lint: LINT,
            file: self.m.rel.clone(),
            line,
            function: self.fun_name.to_string(),
            message,
            snippet: self.m.line_text(line).to_string(),
        });
    }

    fn scan_block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let { pat, init, .. } => {
                    if let Some(e) = init {
                        self.scan_expr(e);
                        // Locals bound from tainted expressions join the
                        // taint set (forward pass: later statements see
                        // earlier bindings).
                        if offender(e, &self.locals, self.fns, false).is_some() {
                            let mut binds = Vec::new();
                            pat.bindings(&mut binds);
                            self.locals.extend(binds);
                        }
                    }
                }
                Stmt::Expr { expr, .. } => self.scan_expr(expr),
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::If { cond, then, els } => {
                if let Some(name) = offender(cond, &self.locals, self.fns, false) {
                    self.push(
                        e.line,
                        format!(
                            "`if` branches on secret value `{name}` — control flow must not \
                             depend on share material; use the ctime mask primitives \
                             (ct_select / ct_eq) instead"
                        ),
                    );
                }
                self.scan_expr(cond);
                self.scan_block(then);
                if let Some(x) = els {
                    self.scan_expr(x);
                }
            }
            ExprKind::While { cond, body } => {
                if let Some(name) = offender(cond, &self.locals, self.fns, false) {
                    self.push(
                        e.line,
                        format!(
                            "`while` branches on secret value `{name}` — control flow must not \
                             depend on share material; use the ctime mask primitives \
                             (ct_select / ct_eq) instead"
                        ),
                    );
                }
                self.scan_expr(cond);
                self.scan_block(body);
            }
            ExprKind::Match { scrutinee, arms } => {
                if let Some(name) = offender(scrutinee, &self.locals, self.fns, false) {
                    self.push(
                        e.line,
                        format!(
                            "`match` branches on secret value `{name}` — control flow must not \
                             depend on share material; use the ctime mask primitives \
                             (ct_select / ct_eq) instead"
                        ),
                    );
                }
                self.scan_expr(scrutinee);
                for a in arms {
                    if let Some(g) = &a.guard {
                        self.scan_expr(g);
                    }
                    self.scan_expr(&a.body);
                }
            }
            ExprKind::Binary(op, a, b) => {
                if let Some(ops) = op_str(*op) {
                    let off = offender(a, &self.locals, self.fns, true)
                        .or_else(|| offender(b, &self.locals, self.fns, true));
                    if let Some(name) = off {
                        let what = match ops {
                            "%" | "/" => "divides/reduces",
                            _ => "compares",
                        };
                        self.push(
                            e.line,
                            format!(
                                "`{ops}` {what} secret value `{name}` — variable-time on this \
                                 hardware; use branch-free mask arithmetic (wrapping ops + \
                                 ctime masks) instead"
                            ),
                        );
                    }
                }
                self.scan_expr(a);
                self.scan_expr(b);
            }
            ExprKind::Index { base, index } => {
                if let Some(name) = offender(index, &self.locals, self.fns, false) {
                    self.push(
                        e.line,
                        format!(
                            "table lookup indexed by secret value `{name}` — memory access \
                             patterns must not depend on share material"
                        ),
                    );
                }
                self.scan_expr(base);
                self.scan_expr(index);
            }
            ExprKind::Field(b, _)
            | ExprKind::Unary(b)
            | ExprKind::Try(b)
            | ExprKind::Cast(b, _) => self.scan_expr(b),
            ExprKind::MethodCall { recv, args, .. } => {
                self.scan_expr(recv);
                for a in args {
                    self.scan_expr(a);
                }
            }
            ExprKind::Call { callee, args } => {
                self.scan_expr(callee);
                for a in args {
                    self.scan_expr(a);
                }
            }
            ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
                for a in args {
                    self.scan_expr(a);
                }
            }
            ExprKind::StructLit { fields, base, .. } => {
                for (_, fe) in fields {
                    self.scan_expr(fe);
                }
                if let Some(b) = base {
                    self.scan_expr(b);
                }
            }
            ExprKind::Closure { body, .. } => self.scan_expr(body),
            ExprKind::Assign { lhs, rhs } => {
                self.scan_expr(lhs);
                self.scan_expr(rhs);
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => self.scan_block(b),
            ExprKind::ForLoop { iter, body, .. } => {
                self.scan_expr(iter);
                self.scan_block(body);
            }
            ExprKind::Return(v) | ExprKind::Break(v) => {
                if let Some(v) = v {
                    self.scan_expr(v);
                }
            }
            ExprKind::Range(a, b) => {
                if let Some(a) = a {
                    self.scan_expr(a);
                }
                if let Some(b) = b {
                    self.scan_expr(b);
                }
            }
            ExprKind::Path(_) | ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => {}
        }
    }
}

/// Runs the constant-time lint over a set of (secure-scope) file models.
/// The whole model set feeds the element-producing call-graph closure;
/// only the arithmetic/share modules are scanned for violating shapes.
pub fn run(models: &[FileModel]) -> Vec<Finding> {
    let reg = Registry::build(models);
    let tainted_fns = element_fns(&reg);
    let mut out: Vec<Finding> = Vec::new();
    for e in &reg.fns {
        if e.fun.is_test {
            continue;
        }
        let Some(m) = reg.models.get(e.model) else {
            continue;
        };
        if !in_ct_scope(&m.rel) {
            continue;
        }
        let word_secret = is_word_module(&m.rel);
        // Seed the local taint set from the signature.
        let mut locals: BTreeSet<String> = BTreeSet::new();
        if e.fun.has_self && self_is_secret(&m.rel) {
            locals.insert("self".to_string());
        }
        for (pat, ty) in &e.fun.params {
            let secret = ty
                .idents
                .iter()
                .any(|i| secret_type_ident(i) || (word_secret && word_type_ident(i)));
            if secret {
                let mut binds = Vec::new();
                pat.bindings(&mut binds);
                locals.extend(binds);
            }
        }
        let mut scan = CtScan {
            m,
            fun_name: &e.fun.name,
            locals,
            fns: &tainted_fns,
            seen_lines: BTreeSet::new(),
            out: Vec::new(),
        };
        scan.scan_block(&e.fun.body);
        out.extend(scan.out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(rel: &str, src: &str) -> Vec<Finding> {
        run(std::slice::from_ref(&FileModel::parse(rel, src)))
    }

    #[test]
    fn scope_is_the_arithmetic_core() {
        assert!(in_ct_scope("crates/mpc/src/field.rs"));
        assert!(in_ct_scope("crates/mpc/src/ctime.rs"));
        assert!(in_ct_scope("crates/mpc/src/share.rs"));
        assert!(!in_ct_scope("crates/mpc/src/net.rs"));
        assert!(!in_ct_scope("crates/mpc/src/protocol.rs"));
        assert!(!in_ct_scope("crates/core/src/secure/aggregate.rs"));
        assert!(in_ct_scope("ct_fixture.rs"));
    }

    #[test]
    fn branch_on_secret_param_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn reduce(v: u64) -> u64 { if v >= M { v - M } else { v } }",
        );
        assert!(!f.is_empty(), "expected a finding");
        assert!(f.iter().all(|x| x.lint == "constant-time"));
        assert!(
            f[0].message.contains("branches on secret value `v`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn match_on_secret_scrutinee_denied() {
        let f = run_on(
            "crates/mpc/src/ring.rs",
            "fn sign(x: R64) -> i32 { match x.0 { 0 => 0, _ => 1 } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`match` branches"));
    }

    #[test]
    fn modulo_and_division_on_secret_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn bad(x: F61) -> u64 { x.0 % 7 }\nfn bad2(x: F61) -> u64 { x.0 / 4 }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("divides/reduces")));
    }

    #[test]
    fn comparison_via_local_from_element_call_denied() {
        // `s` is bound from a call into the element-producing graph and
        // then compared: the call-graph closure must catch it.
        let src = "fn draw(prg: &mut Prg) -> R64 { R64::new(prg.next()) }\n\
                   fn check(prg: &mut Prg) -> bool { let s = draw(prg); s.0 > 10 }";
        let f = run_on("crates/mpc/src/ring.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compares secret value `s`"));
    }

    #[test]
    fn secret_indexed_lookup_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn lut(x: F61, tbl: &[u64; 8]) -> u64 { tbl[(x.0 & 7) as usize] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0]
            .message
            .contains("table lookup indexed by secret value `x`"));
    }

    #[test]
    fn branchless_mask_arithmetic_is_clean() {
        let src = "fn reduce_once(v: u64) -> u64 { v.wrapping_sub(M & ge_mask(v, M)) }\n\
                   fn neg(x: F61) -> F61 { F61((M - x.0) & nonzero_mask(x.0)) }\n\
                   fn fold(v: u64) -> u64 { (v >> 61) + (v & M) }\n\
                   fn ladder(mut e: u64) -> u64 { e >>= 1; e }";
        assert!(run_on("crates/mpc/src/field.rs", src).is_empty());
    }

    #[test]
    fn public_shape_branches_are_clean() {
        // Lengths and emptiness are public metadata; `n` is a public
        // usize; casts (`as`) end a binary operand chain.
        let src = "fn recon(shares: &[F61], n: usize) -> F61 {\n\
                     if shares.len() != n { return F61::ZERO; }\n\
                     if n > 4 { F61::ZERO } else { F61::ONE }\n\
                   }\n\
                   fn decode(x: F61, scale: f64) -> f64 { x.as_i64() as f64 / scale }";
        assert!(run_on("crates/mpc/src/share.rs", src).is_empty());
    }

    #[test]
    fn pragma_and_test_code_exempt() {
        let src = "// dash-analyze::allow(constant-time): Option return is public\n\
                   fn inverse(x: F61) -> Option<F61> { if x.0 == 0 { None } else { Some(x) } }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper(x: F61) -> bool { x.0 == 0 }\n\
                   }";
        assert!(run_on("crates/mpc/src/field.rs", src).is_empty());
    }

    #[test]
    fn raw_words_secret_only_in_element_modules() {
        // In share.rs a bare u64 parameter is public (a length, a seed
        // index); the same signature in field.rs is share material.
        let src = "fn pick(n: u64) -> u64 { if n > 4 { 1 } else { 0 } }";
        assert!(run_on("crates/mpc/src/share.rs", src).is_empty());
        assert_eq!(run_on("crates/mpc/src/field.rs", src).len(), 1);
    }

    #[test]
    fn equality_operands_walk_through_parens() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn cmp(a: F61, b: F61) -> bool { (a.0 ^ b.0) == 0 }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compares"));
    }

    #[test]
    fn impl_trait_param_arrow_does_not_hide_the_share_param() {
        // Regression: the token scanner mis-took the `>` of `->` inside an
        // `impl Fn` parameter for a closing angle and mis-segmented the
        // parameter list, losing `share`'s taint.
        let src = "fn apply(g: impl Fn() -> u64, share: F61) -> u64 {\n\
                     if share.0 > 3 { g() } else { 0 }\n\
                   }";
        let f = run_on("crates/mpc/src/field.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("branches on secret value `share`"));
    }

    #[test]
    fn branch_condition_sees_through_casts() {
        // Casts launder binary operands (decode divisions) but not branch
        // conditions: this still branches on share material.
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn pick(x: F61) -> u64 { if lut_idx(x.0 as usize) { 1 } else { 0 } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("branches on secret value `x`"));
    }
}
