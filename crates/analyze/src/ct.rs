//! Constant-time discipline for share arithmetic (`constant-time`).
//!
//! The disclosure log and taint passes pin *what* the protocols open;
//! they say nothing about timing. A single data-dependent branch,
//! division, or table lookup in the field/ring arithmetic leaks
//! share-dependent timing to anyone co-resident with a party. This lint
//! denies the shapes that produce such leaks inside the mpc crate's
//! arithmetic and share modules:
//!
//! - `if`/`while`/`match` whose condition (or scrutinee) reads a
//!   secret-tainted value;
//! - binary `%`, `/`, `<`, `>`, `<=`, `>=`, `==`, `!=` with a tainted
//!   operand (shifts `<<`/`>>`, arrows and fat arrows are recognized as
//!   non-comparisons from the single-char token stream);
//! - indexing `x[i]` where the index expression is tainted.
//!
//! **Taint** starts from function parameters whose declared type mentions
//! an element/secret type (`F61`, `R64`, `Secret`, `BeaverTriple`,
//! `InnerTriple` — plus raw `u64`/`u128`/`i64` words inside the element
//! modules themselves, where every word *is* an element), from `self` in
//! the element/share modules, and from locals bound from tainted
//! expressions or from calls into the element-producing call graph — the
//! same seed-and-fixpoint closure the `cross-function-taint` pass uses
//! ([`crate::taint::closure_over`]), seeded on element-returning
//! signatures instead of `Secret`-returning ones.
//!
//! **Public metadata escapes the taint**: an access chain that goes
//! through a length/shape method (`len`, `is_empty`, `scalar_count`,
//! `first`, `get`, …) is public — `if shares.len() != n` is fine,
//! `if shares[0].value() > n` is not. A cast (`as`) also ends an operand
//! chain: casts launder provenance at the token level, which keeps the
//! fixed-point decode divisions (`v.as_i64() as f64 / scale`) clean —
//! division by a *public* scale after a cast is exactly the pattern the
//! codec uses on purpose.
//!
//! Test code is exempt; deliberate exceptions carry
//! `// dash-analyze::allow(constant-time): reason` pragmas (the only one
//! in-tree is `F61::inverse`, whose `Option` return is inherently a
//! branch on invertibility).

use crate::lexer::{Tok, TokKind};
use crate::lints::{is_keyword, matching};
use crate::model::FileModel;
use crate::taint;
use crate::Finding;
use std::collections::BTreeSet;

const LINT: &str = "constant-time";

/// Basenames of the mpc modules under constant-time discipline. The
/// protocol/transport layers above them branch on *public* control flow
/// (lengths, tags, party ids) and are out of scope by design.
const CT_MODULES: [&str; 6] = [
    "field.rs",
    "ring.rs",
    "ctime.rs",
    "fixed.rs",
    "share.rs",
    "secret.rs",
];

/// Modules where every raw machine word is an element (so `u64`/`u128`/
/// `i64` parameters are secret too, not just the named element types).
const WORD_MODULES: [&str; 3] = ["field.rs", "ring.rs", "ctime.rs"];

/// Type identifiers that mark a parameter as secret material.
fn secret_type_ident(s: &str) -> bool {
    matches!(s, "F61" | "R64" | "Secret" | "BeaverTriple" | "InnerTriple")
}

/// Raw word types — secret only inside the element modules.
fn word_type_ident(s: &str) -> bool {
    matches!(s, "u64" | "u128" | "i64" | "i128")
}

/// Methods whose result is public shape metadata, ending a taint chain.
/// Lengths and emptiness are exchanged in the clear by the protocols;
/// `first`/`get` appear only in `Option`-emptiness dispatch.
const SANITIZER_METHODS: [&str; 9] = [
    "len",
    "is_empty",
    "scalar_count",
    "vec_len",
    "first",
    "last",
    "get",
    "capacity",
    "count",
];

fn basename(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel)
}

/// Whether `rel` is under constant-time discipline. Fixture files named
/// `ct_*.rs` are scoped too, so the lint is testable standalone.
pub fn in_ct_scope(rel: &str) -> bool {
    let base = basename(rel);
    if base.starts_with("ct_") {
        return true;
    }
    CT_MODULES.contains(&base) && rel.contains("crates/mpc/src")
}

fn is_word_module(rel: &str) -> bool {
    let base = basename(rel);
    WORD_MODULES.contains(&base) || base.starts_with("ct_")
}

/// `self` carries element data everywhere except the codec, whose fields
/// are public configuration (`frac_bits`).
fn self_is_secret(rel: &str) -> bool {
    basename(rel) != "fixed.rs"
}

/// Keywords that terminate an operand walk in either direction.
fn operand_stop_keyword(s: &str) -> bool {
    is_keyword(s) || matches!(s, "await" | "else")
}

/// Scans `range` for an identifier in `tainted` whose postfix chain
/// (`.field`, `.0`, `.method(args)`) never reaches a sanitizing
/// (public-metadata) method; returns the first offender's name.
fn tainted_occurrence(
    code: &[Tok],
    range: std::ops::Range<usize>,
    tainted: &BTreeSet<String>,
) -> Option<String> {
    let end = range.end.min(code.len());
    let mut q = range.start;
    while q < end {
        let t = &code[q];
        if !(t.kind == TokKind::Ident && tainted.contains(&t.text)) {
            q += 1;
            continue;
        }
        // Walk the postfix chain looking for a sanitizer.
        let mut sanitized = false;
        let mut j = q + 1;
        while code.get(j).is_some_and(|n| n.is_punct('.')) {
            match code.get(j + 1) {
                Some(nm) if nm.kind == TokKind::Ident => {
                    if SANITIZER_METHODS.contains(&nm.text.as_str()) {
                        sanitized = true;
                        break;
                    }
                    if code.get(j + 2).is_some_and(|n| n.is_punct('(')) {
                        j = matching(code, j + 2, '(', ')') + 1;
                    } else {
                        j += 2;
                    }
                }
                Some(nm) if nm.kind == TokKind::Number => j += 2, // tuple field
                _ => break,
            }
        }
        if !sanitized {
            return Some(t.text.clone());
        }
        q = j.max(q + 1);
    }
    None
}

/// The span scanned for a branch keyword at `kw`: up to the body `{` at
/// bracket depth 0, bounded by `;`/`=>` so match-arm guards cannot
/// overshoot into arm bodies.
fn condition_span(code: &[Tok], kw: usize, body_end: usize) -> std::ops::Range<usize> {
    let mut depth = 0i32;
    let mut q = kw + 1;
    while q <= body_end.min(code.len().saturating_sub(1)) {
        let t = &code[q];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 {
            if t.is_punct('{') || t.is_punct(';') {
                return kw + 1..q;
            }
            if t.is_punct('=') && code.get(q + 1).is_some_and(|n| n.is_punct('>')) {
                return kw + 1..q;
            }
        }
        q += 1;
    }
    kw + 1..body_end + 1
}

/// Left operand region of a binary operator at `k`: walk left at depth 0
/// over one postfix chain (jumping whole `(...)`/`[...]` groups), stopping
/// at any other operator, statement punctuation, or keyword (`as` included
/// — a cast ends the chain).
fn left_operand(code: &[Tok], k: usize, body_start: usize) -> std::ops::Range<usize> {
    let mut depth = 0i32;
    let mut j = k as i64 - 1;
    while j >= body_start as i64 {
        let t = &code[j as usize];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 {
            if t.kind == TokKind::Punct && !t.is_punct('.') {
                break;
            }
            if t.kind == TokKind::Ident && operand_stop_keyword(&t.text) {
                break;
            }
        }
        j -= 1;
    }
    ((j + 1).max(0) as usize)..k
}

/// Right operand region of a binary operator at `k` (skipping the `=` of
/// a two-char comparison): forward at depth 0 until statement punctuation,
/// another operator, or a keyword.
fn right_operand(code: &[Tok], k: usize, body_end: usize) -> std::ops::Range<usize> {
    let mut q = k + 1;
    if code.get(q).is_some_and(|t| t.is_punct('=')) {
        q += 1;
    }
    let start = q;
    let mut depth = 0i32;
    while q <= body_end.min(code.len().saturating_sub(1)) {
        let t = &code[q];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('{') {
                break;
            }
            if t.kind == TokKind::Punct
                && !(t.is_punct('.')
                    || t.is_punct('&')
                    || t.is_punct('*')
                    || t.is_punct('!')
                    || t.is_punct(':'))
            {
                break;
            }
            if t.kind == TokKind::Ident && operand_stop_keyword(&t.text) {
                break;
            }
        }
        q += 1;
    }
    start..q
}

/// Parameter names of `f` whose declared type marks them secret, plus
/// `self` where the receiver carries element data.
fn secret_params(m: &FileModel, f: &crate::model::FnSpan, word_secret: bool) -> BTreeSet<String> {
    let code = &m.code;
    let mut out = BTreeSet::new();
    // Signature: backwards from the body brace to this fn's `fn` keyword,
    // then the first `(` opens the parameter list.
    let sig_start = (0..f.body_start)
        .rev()
        .find(|&j| code[j].is_ident("fn"))
        .unwrap_or(0);
    let Some(open) = (sig_start..f.body_start).find(|&j| code[j].is_punct('(')) else {
        return out;
    };
    let close = matching(code, open, '(', ')').min(f.body_start);
    // Split the list at depth-1 commas.
    let mut depth = 0i32;
    let mut seg_start = open + 1;
    let mut segments: Vec<(usize, usize)> = Vec::new();
    for (j, t) in code.iter().enumerate().take(close + 1).skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
            if depth == 0 && j == close {
                segments.push((seg_start, j));
            }
        } else if depth == 1 && t.is_punct(',') {
            segments.push((seg_start, j));
            seg_start = j + 1;
        }
    }
    for (a, b) in segments {
        if a >= b {
            continue;
        }
        let toks = &code[a..b];
        // `self` receiver (possibly `&self`, `&mut self`, `mut self`).
        if toks.iter().take(3).any(|t| t.is_ident("self")) {
            if self_is_secret(&m.rel) {
                out.insert("self".to_string());
            }
            continue;
        }
        // `name: Type` — name is the first plain ident (skipping `mut`).
        let Some(colon) = toks.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let name = toks[..colon]
            .iter()
            .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"));
        let Some(name) = name else { continue };
        let ty = &toks[colon + 1..];
        let secret = ty.iter().any(|t| {
            t.kind == TokKind::Ident
                && (secret_type_ident(&t.text) || (word_secret && word_type_ident(&t.text)))
        });
        if secret {
            out.insert(name.text.clone());
        }
    }
    out
}

/// Extends `tainted` with locals `let`-bound from tainted expressions or
/// from calls into the element-producing call graph (single forward pass;
/// later statements see earlier bindings).
fn add_tainted_locals(
    m: &FileModel,
    f: &crate::model::FnSpan,
    tainted_fns: &BTreeSet<String>,
    tainted: &mut BTreeSet<String>,
) {
    let code = &m.code;
    let body_end = f.body_end.min(code.len().saturating_sub(1));
    let mut k = f.body_start;
    while k <= body_end {
        if !code[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = code.get(j).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // Statement span to the `;` (or unbalanced close) at depth 0.
        let mut depth = 0i32;
        let mut q = j + 1;
        let mut stmt_end = body_end;
        while q <= body_end {
            let t = &code[q];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    stmt_end = q;
                    break;
                }
            } else if depth == 0 && t.is_punct(';') {
                stmt_end = q;
                break;
            }
            q += 1;
        }
        let from_tainted_call = (j + 1..stmt_end).any(|q| {
            code[q].kind == TokKind::Ident
                && tainted_fns.contains(&code[q].text)
                && code.get(q + 1).is_some_and(|n| n.is_punct('('))
        });
        let from_tainted_ident = tainted_occurrence(code, j + 1..stmt_end, tainted).is_some();
        if from_tainted_call || from_tainted_ident {
            tainted.insert(name);
        }
        k = stmt_end + 1;
    }
}

fn finding(m: &FileModel, k: usize, function: &str, message: String) -> Finding {
    let line = m.code.get(k).map_or(0, |t| t.line);
    Finding {
        lint: LINT,
        file: m.rel.clone(),
        line,
        function: function.to_string(),
        message,
        snippet: m.line_text(line).to_string(),
    }
}

/// Runs the constant-time lint over a set of (secure-scope) file models.
/// The whole model set feeds the element-producing call-graph closure;
/// only the arithmetic/share modules are scanned for violating shapes.
pub fn run(models: &[FileModel]) -> Vec<Finding> {
    let facts = taint::collect_all_facts(models);
    // Element-producing seeds: declared return type mentions an element
    // type; `Self` counts inside the element modules (`F61::new -> Self`).
    // The Secret wrapper's own combinators are excluded for the same
    // bare-name-collision reason as in the cross-function-taint pass.
    let tainted_fns = taint::closure_over(models, &facts, |m, ff| {
        !m.rel.ends_with("mpc/src/secret.rs")
            && ff.ret_range.is_some_and(|(a, b)| {
                m.code[a..b.min(m.code.len())].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && (secret_type_ident(&t.text)
                            || (is_word_module(&m.rel) && t.is_ident("Self")))
                })
            })
    });

    let mut out: Vec<Finding> = Vec::new();
    for m in models.iter().filter(|m| in_ct_scope(&m.rel)) {
        let word_secret = is_word_module(&m.rel);
        let code = &m.code;
        for f in &m.fns {
            if f.is_test || m.in_test(f.body_start) {
                continue;
            }
            let mut tainted = secret_params(m, f, word_secret);
            add_tainted_locals(m, f, &tainted_fns, &mut tainted);
            if tainted.is_empty() {
                continue;
            }
            let body_end = f.body_end.min(code.len().saturating_sub(1));
            let mut seen_lines: BTreeSet<usize> = BTreeSet::new();
            let push =
                |out: &mut Vec<Finding>, seen: &mut BTreeSet<usize>, k: usize, msg: String| {
                    let line = code.get(k).map_or(0, |t| t.line);
                    if !seen.insert(line) || m.allowed(LINT, k) {
                        return;
                    }
                    out.push(finding(m, k, &f.name, msg));
                };
            for k in f.body_start..=body_end {
                let t = &code[k];
                // Shape 1: branch/scrutinee on a secret.
                if t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match") {
                    let span = condition_span(code, k, body_end);
                    if let Some(name) = tainted_occurrence(code, span, &tainted) {
                        push(
                            &mut out,
                            &mut seen_lines,
                            k,
                            format!(
                                "`{}` branches on secret value `{}` — control flow must not \
                                 depend on share material; use the ctime mask primitives \
                                 (ct_select / ct_eq) instead",
                                t.text, name
                            ),
                        );
                    }
                    continue;
                }
                if t.kind != TokKind::Punct {
                    continue;
                }
                let c = t.text.as_bytes().first().copied().unwrap_or(0);
                let prev = k
                    .checked_sub(1)
                    .and_then(|p| code.get(p))
                    .filter(|p| p.kind == TokKind::Punct)
                    .map(|p| p.text.as_bytes()[0]);
                let next = code
                    .get(k + 1)
                    .filter(|n| n.kind == TokKind::Punct)
                    .map(|n| n.text.as_bytes()[0]);
                let op: Option<&str> = match c {
                    b'%' => Some("%"),
                    b'/' => Some("/"),
                    b'<' => {
                        // `<<`, `<<=`, turbofish `::<`: not comparisons.
                        if prev == Some(b'<') || next == Some(b'<') || prev == Some(b':') {
                            None
                        } else {
                            Some(if next == Some(b'=') { "<=" } else { "<" })
                        }
                    }
                    b'>' => {
                        // `>>`, `->`, `=>`: not comparisons.
                        if prev == Some(b'>')
                            || next == Some(b'>')
                            || prev == Some(b'-')
                            || prev == Some(b'=')
                        {
                            None
                        } else {
                            Some(if next == Some(b'=') { ">=" } else { ">" })
                        }
                    }
                    b'=' => {
                        // `==` only; the first `=` must not extend `<=` etc.
                        if next == Some(b'=')
                            && !matches!(
                                prev,
                                Some(
                                    b'=' | b'<'
                                        | b'>'
                                        | b'!'
                                        | b'+'
                                        | b'-'
                                        | b'*'
                                        | b'/'
                                        | b'%'
                                        | b'&'
                                        | b'|'
                                        | b'^'
                                )
                            )
                        {
                            Some("==")
                        } else {
                            None
                        }
                    }
                    b'!' => {
                        if next == Some(b'=') {
                            Some("!=")
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(op) = op {
                    let l = left_operand(code, k, f.body_start);
                    let r = right_operand(code, k, body_end);
                    let offender = tainted_occurrence(code, l, &tainted)
                        .or_else(|| tainted_occurrence(code, r, &tainted));
                    if let Some(name) = offender {
                        let what = match op {
                            "%" | "/" => "divides/reduces",
                            _ => "compares",
                        };
                        push(
                            &mut out,
                            &mut seen_lines,
                            k,
                            format!(
                                "`{op}` {what} secret value `{name}` — variable-time on this \
                                 hardware; use branch-free mask arithmetic (wrapping ops + \
                                 ctime masks) instead"
                            ),
                        );
                    }
                    continue;
                }
                // Shape 3: secret-indexed table lookup.
                if c == b'[' {
                    let indexee = k.checked_sub(1).and_then(|p| code.get(p));
                    let is_index = indexee.is_some_and(|p| {
                        (p.kind == TokKind::Ident && !is_keyword(&p.text))
                            || p.is_punct(')')
                            || p.is_punct(']')
                    });
                    if is_index {
                        let close = matching(code, k, '[', ']');
                        if let Some(name) = tainted_occurrence(code, k + 1..close, &tainted) {
                            push(
                                &mut out,
                                &mut seen_lines,
                                k,
                                format!(
                                    "table lookup indexed by secret value `{name}` — memory \
                                     access patterns must not depend on share material"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run_on(rel: &str, src: &str) -> Vec<Finding> {
        run(std::slice::from_ref(&FileModel::parse(rel, src)))
    }

    #[test]
    fn scope_is_the_arithmetic_core() {
        assert!(in_ct_scope("crates/mpc/src/field.rs"));
        assert!(in_ct_scope("crates/mpc/src/ctime.rs"));
        assert!(in_ct_scope("crates/mpc/src/share.rs"));
        assert!(!in_ct_scope("crates/mpc/src/net.rs"));
        assert!(!in_ct_scope("crates/mpc/src/protocol.rs"));
        assert!(!in_ct_scope("crates/core/src/secure/aggregate.rs"));
        assert!(in_ct_scope("ct_fixture.rs"));
    }

    #[test]
    fn branch_on_secret_param_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn reduce(v: u64) -> u64 { if v >= M { v - M } else { v } }",
        );
        assert!(!f.is_empty(), "expected a finding");
        assert!(f.iter().all(|x| x.lint == "constant-time"));
        assert!(
            f[0].message.contains("branches on secret value `v`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn match_on_secret_scrutinee_denied() {
        let f = run_on(
            "crates/mpc/src/ring.rs",
            "fn sign(x: R64) -> i32 { match x.0 { 0 => 0, _ => 1 } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`match` branches"));
    }

    #[test]
    fn modulo_and_division_on_secret_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn bad(x: F61) -> u64 { x.0 % 7 }\nfn bad2(x: F61) -> u64 { x.0 / 4 }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("divides/reduces")));
    }

    #[test]
    fn comparison_via_local_from_element_call_denied() {
        // `s` is bound from a call into the element-producing graph and
        // then compared: the call-graph closure must catch it.
        let src = "fn draw(prg: &mut Prg) -> R64 { R64::new(prg.next()) }\n\
                   fn check(prg: &mut Prg) -> bool { let s = draw(prg); s.0 > 10 }";
        let f = run_on("crates/mpc/src/ring.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compares secret value `s`"));
    }

    #[test]
    fn secret_indexed_lookup_denied() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn lut(x: F61, tbl: &[u64; 8]) -> u64 { tbl[(x.0 & 7) as usize] }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0]
            .message
            .contains("table lookup indexed by secret value `x`"));
    }

    #[test]
    fn branchless_mask_arithmetic_is_clean() {
        let src = "fn reduce_once(v: u64) -> u64 { v.wrapping_sub(M & ge_mask(v, M)) }\n\
                   fn neg(x: F61) -> F61 { F61((M - x.0) & nonzero_mask(x.0)) }\n\
                   fn fold(v: u64) -> u64 { (v >> 61) + (v & M) }\n\
                   fn ladder(mut e: u64) -> u64 { e >>= 1; e }";
        assert!(run_on("crates/mpc/src/field.rs", src).is_empty());
    }

    #[test]
    fn public_shape_branches_are_clean() {
        // Lengths and emptiness are public metadata; `n` is a public
        // usize; casts (`as`) end an operand chain.
        let src = "fn recon(shares: &[F61], n: usize) -> F61 {\n\
                     if shares.len() != n { return F61::ZERO; }\n\
                     if n > 4 { F61::ZERO } else { F61::ONE }\n\
                   }\n\
                   fn decode(x: F61, scale: f64) -> f64 { x.as_i64() as f64 / scale }";
        assert!(run_on("crates/mpc/src/share.rs", src).is_empty());
    }

    #[test]
    fn pragma_and_test_code_exempt() {
        let src = "// dash-analyze::allow(constant-time): Option return is public\n\
                   fn inverse(x: F61) -> Option<F61> { if x.0 == 0 { None } else { Some(x) } }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper(x: F61) -> bool { x.0 == 0 }\n\
                   }";
        assert!(run_on("crates/mpc/src/field.rs", src).is_empty());
    }

    #[test]
    fn raw_words_secret_only_in_element_modules() {
        // In share.rs a bare u64 parameter is public (a length, a seed
        // index); the same signature in field.rs is share material.
        let src = "fn pick(n: u64) -> u64 { if n > 4 { 1 } else { 0 } }";
        assert!(run_on("crates/mpc/src/share.rs", src).is_empty());
        assert_eq!(run_on("crates/mpc/src/field.rs", src).len(), 1);
    }

    #[test]
    fn equality_operands_walk_through_parens() {
        let f = run_on(
            "crates/mpc/src/field.rs",
            "fn cmp(a: F61, b: F61) -> bool { (a.0 ^ b.0) == 0 }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compares"));
    }
}
