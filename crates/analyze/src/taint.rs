//! Cross-function secret-taint closure (`cross-function-taint`).
//!
//! The token-level `secret-taint` lint catches secrets reaching a
//! formatter *in the same expression*. This pass closes the remaining
//! gap: secret material that escapes through a call chain — a function
//! returns a [`Secret`]-typed value (or a struct carrying one), a second
//! function passes it along under an innocuous name and type, and a third
//! finally Debug-formats it.
//!
//! The pass is call-graph-aware but deliberately coarse:
//!
//! 1. **Seeds** — every non-test function in the secure scope whose
//!    declared return type mentions `Secret` is secret-producing. The
//!    wrapper's own combinators in `crates/mpc/src/secret.rs` are *not*
//!    seeded: their names (`map`, `new`, `element`, …) collide with
//!    ubiquitous std methods under bare-name matching, and the newtype
//!    already guarantees their results print redacted.
//! 2. **Propagation** — a function that returns a value, is not an
//!    audited-open sanitizer, and calls a tainted function becomes
//!    tainted itself, to a fixpoint across all files (calls are matched
//!    by bare name, so the graph is conservative).
//! 3. **Sanitizers** — a function whose body goes through the audited
//!    open path (`open_via`, `open_local`, `open_sum_*`, `open_field`) or
//!    a `reconstruct_*` helper returns *opened* (public) data; taint does
//!    not propagate through it.
//! 4. **Sinks** — a print/format macro in non-test secure code whose
//!    arguments contain a direct call to a tainted function, a local
//!    `let`-bound from one (transitively through local-to-local moves
//!    within the function), or an inline `{name}` capture of such a
//!    local, is a denied leak unless pragma-allowed
//!    (`// dash-analyze::allow(cross-function-taint): reason`).
//!
//! [`Secret`]: ../../dash_mpc/secret/struct.Secret.html

use crate::lexer::TokKind;
use crate::lints::matching;
use crate::model::{FileModel, FnSpan};
use crate::Finding;
use std::collections::BTreeSet;

const LINT: &str = "cross-function-taint";

/// Print/format macros that render values. `format_args`-style capture
/// scanning is applied to their string-literal arguments too.
const SINK_MACROS: [&str; 8] = [
    "println", "eprintln", "print", "eprint", "dbg", "format", "write", "writeln",
];

/// Whether `name` is an audited-open (or reconstruction) primitive: the
/// value it produces is opened/public, so it ends a taint chain.
fn sanitizing_ident(name: &str) -> bool {
    matches!(
        name,
        "open_via" | "open_local" | "open_sum_ring" | "open_sum_field" | "open_field"
    ) || name.starts_with("reconstruct_")
}

/// Per-function facts extracted from the token stream. Shared between
/// this pass and the `constant-time` lint (`crate::ct`), which reuses the
/// same seed-and-fixpoint closure with a different seed predicate.
pub(crate) struct FnFacts {
    pub(crate) model: usize,
    pub(crate) fn_idx: usize,
    pub(crate) name: String,
    /// Signature declares a return type at all.
    pub(crate) returns_value: bool,
    /// Token range (in the model's code view) of the declared return
    /// type: `arrow_index..body_start`. `None` when the fn returns unit.
    pub(crate) ret_range: Option<(usize, usize)>,
    /// Body reaches an audited open / reconstruction.
    pub(crate) sanitizes: bool,
    /// Bare names of everything the body calls.
    pub(crate) calls: BTreeSet<String>,
}

fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "match" | "while" | "for" | "loop" | "return" | "move" | "in" | "as" | "fn"
    )
}

fn collect_facts(m: &FileModel, model: usize, fn_idx: usize, f: &FnSpan) -> FnFacts {
    let code = &m.code;
    let body_end = f.body_end.min(code.len().saturating_sub(1));
    // Signature: backwards from the body brace to this fn's `fn` keyword.
    let sig_start = (0..f.body_start)
        .rev()
        .find(|&j| code[j].is_ident("fn"))
        .unwrap_or(0);
    let arrow = (sig_start..f.body_start.saturating_sub(1))
        .find(|&j| code[j].is_punct('-') && code.get(j + 1).is_some_and(|n| n.is_punct('>')));

    let mut sanitizes = false;
    let mut calls = BTreeSet::new();
    for k in f.body_start..=body_end {
        let t = &code[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if sanitizing_ident(&t.text) {
            sanitizes = true;
        }
        if code.get(k + 1).is_some_and(|n| n.is_punct('('))
            && !is_call_keyword(&t.text)
            && !(k > 0 && code[k - 1].is_ident("fn"))
        {
            calls.insert(t.text.clone());
        }
    }
    FnFacts {
        model,
        fn_idx,
        name: f.name.clone(),
        returns_value: arrow.is_some(),
        ret_range: arrow.map(|a| (a, f.body_start)),
        sanitizes,
        calls,
    }
}

/// Collects [`FnFacts`] for every non-test function across `models`.
pub(crate) fn collect_all_facts(models: &[FileModel]) -> Vec<FnFacts> {
    let mut facts = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            facts.push(collect_facts(m, mi, fi, f));
        }
    }
    facts
}

/// The shared seed-and-fixpoint closure: functions for which `seed`
/// holds are tainted, and taint propagates through every value-returning,
/// non-sanitizing caller (bare-name call matching) until nothing changes.
/// Returns the tainted function-name set.
pub(crate) fn closure_over(
    models: &[FileModel],
    facts: &[FnFacts],
    seed: impl Fn(&FileModel, &FnFacts) -> bool,
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = facts
        .iter()
        .filter(|ff| models.get(ff.model).is_some_and(|m| seed(m, ff)))
        .map(|ff| ff.name.clone())
        .collect();
    loop {
        let mut changed = false;
        for ff in facts {
            if !ff.returns_value || ff.sanitizes || tainted.contains(&ff.name) {
                continue;
            }
            if ff.calls.iter().any(|c| tainted.contains(c)) {
                tainted.insert(ff.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Names of locals in `f` bound (transitively) from tainted calls.
fn tainted_locals(m: &FileModel, f: &FnSpan, tainted: &BTreeSet<String>) -> BTreeSet<String> {
    let code = &m.code;
    let body_end = f.body_end.min(code.len().saturating_sub(1));
    let mut out: BTreeSet<String> = BTreeSet::new();
    let mut k = f.body_start;
    while k <= body_end {
        if !code[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = code.get(j).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // Statement span: to the `;` (or unbalanced close) at depth 0.
        let mut depth = 0i32;
        let mut q = j + 1;
        let mut stmt_end = body_end;
        while q <= body_end {
            let t = &code[q];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    stmt_end = q;
                    break;
                }
            } else if depth == 0 && t.is_punct(';') {
                stmt_end = q;
                break;
            }
            q += 1;
        }
        let sanitized = (j + 1..stmt_end)
            .any(|q| code[q].kind == TokKind::Ident && sanitizing_ident(&code[q].text));
        let initializer_tainted = !sanitized
            && (j + 1..stmt_end).any(|q| {
                let t = &code[q];
                t.kind == TokKind::Ident
                    && ((tainted.contains(&t.text)
                        && code.get(q + 1).is_some_and(|n| n.is_punct('(')))
                        || out.contains(&t.text))
            });
        if initializer_tainted {
            out.insert(name);
        }
        k = stmt_end + 1;
    }
    out
}

/// Identifiers captured inline in a format-string literal: `{name}`,
/// `{name:?}`, `{name:>8}`, …
fn inline_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped brace
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
                j += 1;
            }
            let name = &lit[i + 1..j];
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.starts_with(|c: char| c.is_ascii_digit())
            {
                out.push(name.to_string());
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Runs the cross-function taint closure over a set of (secure-scope)
/// file models and reports formatter sinks fed by secret-returning call
/// chains.
pub fn run(models: &[FileModel]) -> Vec<Finding> {
    // Pass 1: facts.
    let facts = collect_all_facts(models);
    // Pass 2: seeds (declared return type mentions `Secret`, outside the
    // wrapper module itself), then propagation to fixpoint.
    let tainted = closure_over(models, &facts, |m, ff| {
        ff.ret_range.is_some_and(|(a, b)| {
            m.code[a..b.min(m.code.len())]
                .iter()
                .any(|t| t.is_ident("Secret"))
        }) && !m.rel.ends_with("mpc/src/secret.rs")
    });
    // Pass 3: sinks.
    let mut out = Vec::new();
    for ff in &facts {
        let Some(m) = models.get(ff.model) else {
            continue;
        };
        let Some(f) = m.fns.get(ff.fn_idx) else {
            continue;
        };
        let locals = tainted_locals(m, f, &tainted);
        let code = &m.code;
        let body_end = f.body_end.min(code.len().saturating_sub(1));
        let mut k = f.body_start;
        while k <= body_end {
            let t = &code[k];
            let is_sink = t.kind == TokKind::Ident
                && SINK_MACROS.contains(&t.text.as_str())
                && code.get(k + 1).is_some_and(|n| n.is_punct('!'));
            if !is_sink {
                k += 1;
                continue;
            }
            let Some(open) = (k + 2..code.len().min(k + 4))
                .find(|&q| code[q].is_punct('(') || code[q].is_punct('['))
            else {
                k += 1;
                continue;
            };
            let (oc, cc) = if code[open].is_punct('(') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let close = matching(code, open, oc, cc);
            let mut offender: Option<(String, &'static str)> = None;
            for q in open..=close.min(body_end) {
                let a = &code[q];
                match a.kind {
                    TokKind::Ident => {
                        if tainted.contains(&a.text)
                            && code.get(q + 1).is_some_and(|n| n.is_punct('('))
                        {
                            offender = Some((a.text.clone(), "a call to secret-returning"));
                            break;
                        }
                        if locals.contains(&a.text) {
                            offender =
                                Some((a.text.clone(), "a local bound from secret-returning"));
                            break;
                        }
                    }
                    TokKind::Str => {
                        if let Some(cap) = inline_captures(&a.text)
                            .into_iter()
                            .find(|c| locals.contains(c))
                        {
                            offender = Some((cap, "an inline capture of a local bound from"));
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some((name, how)) = offender {
                if !m.allowed(LINT, k) {
                    out.push(Finding {
                        lint: LINT,
                        file: m.rel.clone(),
                        line: code.get(k).map_or(0, |t| t.line),
                        function: f.name.clone(),
                        message: format!(
                            "{}! formats `{}` — {} function material that never passed an \
                             audited open (`open_via`); secret-typed values must open through \
                             the DisclosureLog before they may be rendered",
                            t.text, name, how
                        ),
                        snippet: m.line_text(code.get(k).map_or(0, |t| t.line)).to_string(),
                    });
                }
            }
            k = close + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(rel, src)| FileModel::parse(rel, src))
            .collect()
    }

    fn lint_count(f: &[Finding]) -> usize {
        f.iter().filter(|x| x.lint == LINT).count()
    }

    #[test]
    fn direct_seed_and_sink_same_file() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak(prg: &mut Prg) -> String {
    let noise = draw(prg);
    format!("{:?}", noise)
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
        assert!(f[0].message.contains("noise"));
    }

    #[test]
    fn taint_propagates_across_files_and_wrapper_types() {
        // draw() returns Secret; summarize() hides it inside a struct with
        // an innocuous declared type; report() (another file) formats the
        // result two calls downstream.
        let a = r#"
pub fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
pub fn summarize(prg: &mut Prg) -> Summary {
    Summary { label: "round", payload: draw(prg) }
}
"#;
        let b = r#"
fn report(prg: &mut Prg) -> String {
    let stats = summarize(prg);
    format!("{stats:?}")
}
"#;
        let f = run(&models(&[
            ("crates/mpc/src/a.rs", a),
            ("crates/core/src/secure/b.rs", b),
        ]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "report");
        assert_eq!(f[0].file, "crates/core/src/secure/b.rs");
    }

    #[test]
    fn audited_open_sanitizes_the_chain() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn open_and_report(ctx: &mut Ctx, prg: &mut Prg) -> String {
    let shares = draw(prg);
    let total = ctx.open_local(shares, Some("total"));
    format!("{total:?}")
}
fn derived(ctx: &mut Ctx, prg: &mut Prg) -> Vec<R64> {
    let s = draw(prg);
    reconstruct_ring(&s)
}
fn uses_derived(ctx: &mut Ctx, prg: &mut Prg) -> String {
    let v = derived(ctx, prg);
    format!("{v:?}")
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn local_to_local_moves_tracked_and_pragma_respected() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak(prg: &mut Prg) {
    let a = draw(prg);
    let b = a;
    println!("{:?}", b);
}
fn allowed(prg: &mut Prg) {
    let a = draw(prg);
    // dash-analyze::allow(cross-function-taint): demo of redacted Debug
    println!("{:?}", a);
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
    }

    #[test]
    fn wrapper_module_combinators_do_not_seed() {
        // `map` defined in secret.rs returning Secret must not taint every
        // iterator `.map(...)` call in the workspace.
        let secret_rs = r#"
impl<T> Secret<T> {
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Secret<U> { Secret(f(self.0)) }
}
"#;
        let user = r#"
fn doubles(xs: &[u64]) -> Vec<u64> {
    let out = xs.iter().map(|x| x * 2).collect::<Vec<_>>();
    out
}
fn show(xs: &[u64]) -> String {
    let d = doubles(xs);
    format!("{d:?}")
}
"#;
        let f = run(&models(&[
            ("crates/mpc/src/secret.rs", secret_rs),
            ("crates/mpc/src/y.rs", user),
        ]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let s = draw(&mut prg);
        println!("{s:?}");
    }
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn inline_capture_parsing() {
        assert_eq!(
            inline_captures("\"{a} {b:?} {{escaped}} {0} {c:>8}\""),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }
}
