//! Cross-function secret-taint closure (`cross-function-taint`).
//!
//! The token-level `secret-taint` lint catches secrets reaching a
//! formatter *in the same expression*. This pass closes the remaining
//! gap: secret material that escapes through a call chain — a function
//! returns a [`Secret`]-typed value (or a struct carrying one), a second
//! function passes it along under an innocuous name and type, and a third
//! finally Debug-formats it.
//!
//! Since the analyzer grew a real parser (`crate::parser`), the primary
//! pass ([`run`]) is an abstract interpreter over the AST with three
//! precision upgrades over the original token pass:
//!
//! - **Field sensitivity.** Taint is tracked per dotted *place*
//!   (`pkt.shares`, `pair.1`), and a struct's declared field types decide
//!   which projections of a `Secret`-bearing value are secret:
//!   `pkt.shares` leaks, the sibling `pkt.label: String` does not.
//!   Struct types that transitively contain `Secret` are computed by the
//!   registry and treated as secret-bearing wherever they appear as
//!   parameter, field, or return types.
//! - **Closure captures.** A closure that captures a tainted local is a
//!   tainted callable, and combinator bodies (`map`, `zip_with`,
//!   `each`-style calls on a tainted receiver) run with their parameters
//!   tainted, so `rows.each(|row| println!("{row:?}"))` is caught inside
//!   the closure.
//! - **Method resolution.** Receiver types are inferred from `let`
//!   ascriptions, fn signatures, and struct fields, and method calls are
//!   resolved against the program's own impl blocks. The audited opens
//!   are recognized as *paths* — `Secret::open_via`,
//!   `PartyCtx::{open_local, open_sum_ring, open_sum_field}`, free
//!   `open_field`/`reconstruct_*` — so an arbitrary `.open_via()` on some
//!   other known type no longer sanitizes by name collision.
//!
//! The interpreter seeds from declared return types (any non-test secure
//! function whose return type carries `Secret`, plus every method of
//! `Secret` itself, gated behind receiver-type resolution), propagates
//! function-level taint to a fixpoint by abstractly evaluating each body,
//! and reports print/format macros whose arguments (or inline `{name}`
//! captures) evaluate tainted — unless pragma-allowed
//! (`// dash-analyze::allow(cross-function-taint): reason`) or in test
//! code.
//!
//! The original token-stream pass is kept verbatim as [`run_token`]: it
//! backs the `--differential` safety net, which asserts the AST pass
//! reports a superset of the token pass wherever both can see a leak.
//!
//! [`Secret`]: ../../dash_mpc/secret/struct.Secret.html

use crate::ast::{Block, Expr, ExprKind, Pat, Stmt, Ty};
use crate::lexer::TokKind;
use crate::lints::matching;
use crate::model::{FileModel, FnSpan};
use crate::registry::{FnEntry, Registry};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "cross-function-taint";

/// Print/format macros that render values. `format_args`-style capture
/// scanning is applied to their string-literal arguments too.
const SINK_MACROS: [&str; 8] = [
    "println", "eprintln", "print", "eprint", "dbg", "format", "write", "writeln",
];

/// Whether `name` is an audited-open (or reconstruction) primitive: the
/// value it produces is opened/public, so it ends a taint chain.
fn sanitizing_ident(name: &str) -> bool {
    matches!(
        name,
        "open_via" | "open_local" | "open_sum_ring" | "open_sum_field" | "open_field"
    ) || name.starts_with("reconstruct_")
}

/// Per-function facts extracted from the token stream. Shared between
/// this pass and the `constant-time` lint (`crate::ct`), which reuses the
/// same seed-and-fixpoint closure with a different seed predicate.
pub(crate) struct FnFacts {
    pub(crate) model: usize,
    pub(crate) fn_idx: usize,
    pub(crate) name: String,
    /// Signature declares a return type at all.
    pub(crate) returns_value: bool,
    /// Token range (in the model's code view) of the declared return
    /// type: `arrow_index..body_start`. `None` when the fn returns unit.
    pub(crate) ret_range: Option<(usize, usize)>,
    /// Body reaches an audited open / reconstruction.
    pub(crate) sanitizes: bool,
    /// Bare names of everything the body calls.
    pub(crate) calls: BTreeSet<String>,
}

fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "match" | "while" | "for" | "loop" | "return" | "move" | "in" | "as" | "fn"
    )
}

fn collect_facts(m: &FileModel, model: usize, fn_idx: usize, f: &FnSpan) -> FnFacts {
    let code = &m.code;
    let body_end = f.body_end.min(code.len().saturating_sub(1));
    // Signature: backwards from the body brace to this fn's `fn` keyword.
    let sig_start = (0..f.body_start)
        .rev()
        .find(|&j| code[j].is_ident("fn"))
        .unwrap_or(0);
    let arrow = (sig_start..f.body_start.saturating_sub(1))
        .find(|&j| code[j].is_punct('-') && code.get(j + 1).is_some_and(|n| n.is_punct('>')));

    let mut sanitizes = false;
    let mut calls = BTreeSet::new();
    for k in f.body_start..=body_end {
        let t = &code[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if sanitizing_ident(&t.text) {
            sanitizes = true;
        }
        if code.get(k + 1).is_some_and(|n| n.is_punct('('))
            && !is_call_keyword(&t.text)
            && !(k > 0 && code[k - 1].is_ident("fn"))
        {
            calls.insert(t.text.clone());
        }
    }
    FnFacts {
        model,
        fn_idx,
        name: f.name.clone(),
        returns_value: arrow.is_some(),
        ret_range: arrow.map(|a| (a, f.body_start)),
        sanitizes,
        calls,
    }
}

/// Collects [`FnFacts`] for every non-test function across `models`.
pub(crate) fn collect_all_facts(models: &[FileModel]) -> Vec<FnFacts> {
    let mut facts = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            facts.push(collect_facts(m, mi, fi, f));
        }
    }
    facts
}

/// The shared seed-and-fixpoint closure: functions for which `seed`
/// holds are tainted, and taint propagates through every value-returning,
/// non-sanitizing caller (bare-name call matching) until nothing changes.
/// Returns the tainted function-name set.
pub(crate) fn closure_over(
    models: &[FileModel],
    facts: &[FnFacts],
    seed: impl Fn(&FileModel, &FnFacts) -> bool,
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = facts
        .iter()
        .filter(|ff| models.get(ff.model).is_some_and(|m| seed(m, ff)))
        .map(|ff| ff.name.clone())
        .collect();
    loop {
        let mut changed = false;
        for ff in facts {
            if !ff.returns_value || ff.sanitizes || tainted.contains(&ff.name) {
                continue;
            }
            if ff.calls.iter().any(|c| tainted.contains(c)) {
                tainted.insert(ff.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Names of locals in `f` bound (transitively) from tainted calls.
fn tainted_locals(m: &FileModel, f: &FnSpan, tainted: &BTreeSet<String>) -> BTreeSet<String> {
    let code = &m.code;
    let body_end = f.body_end.min(code.len().saturating_sub(1));
    let mut out: BTreeSet<String> = BTreeSet::new();
    let mut k = f.body_start;
    while k <= body_end {
        if !code[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = code.get(j).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // Statement span: to the `;` (or unbalanced close) at depth 0.
        let mut depth = 0i32;
        let mut q = j + 1;
        let mut stmt_end = body_end;
        while q <= body_end {
            let t = &code[q];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    stmt_end = q;
                    break;
                }
            } else if depth == 0 && t.is_punct(';') {
                stmt_end = q;
                break;
            }
            q += 1;
        }
        let sanitized = (j + 1..stmt_end)
            .any(|q| code[q].kind == TokKind::Ident && sanitizing_ident(&code[q].text));
        let initializer_tainted = !sanitized
            && (j + 1..stmt_end).any(|q| {
                let t = &code[q];
                t.kind == TokKind::Ident
                    && ((tainted.contains(&t.text)
                        && code.get(q + 1).is_some_and(|n| n.is_punct('(')))
                        || out.contains(&t.text))
            });
        if initializer_tainted {
            out.insert(name);
        }
        k = stmt_end + 1;
    }
    out
}

/// Identifiers captured inline in a format-string literal: `{name}`,
/// `{name:?}`, `{name:>8}`, …
pub(crate) fn inline_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped brace
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
                j += 1;
            }
            let name = &lit[i + 1..j];
            if !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.starts_with(|c: char| c.is_ascii_digit())
            {
                out.push(name.to_string());
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// The original token-stream pass: bare-name call graph, `let`-bound
/// local tracking, sanitizer-by-identifier. Kept as the differential
/// baseline for the AST pass ([`run`]); every leak it can see, the AST
/// pass must also see.
pub fn run_token(models: &[FileModel]) -> Vec<Finding> {
    // Pass 1: facts.
    let facts = collect_all_facts(models);
    // Pass 2: seeds (declared return type mentions `Secret`, outside the
    // wrapper module itself), then propagation to fixpoint.
    let tainted = closure_over(models, &facts, |m, ff| {
        ff.ret_range.is_some_and(|(a, b)| {
            m.code[a..b.min(m.code.len())]
                .iter()
                .any(|t| t.is_ident("Secret"))
        }) && !m.rel.ends_with("mpc/src/secret.rs")
    });
    // Pass 3: sinks.
    let mut out = Vec::new();
    for ff in &facts {
        let Some(m) = models.get(ff.model) else {
            continue;
        };
        let Some(f) = m.fns.get(ff.fn_idx) else {
            continue;
        };
        let locals = tainted_locals(m, f, &tainted);
        let code = &m.code;
        let body_end = f.body_end.min(code.len().saturating_sub(1));
        let mut k = f.body_start;
        while k <= body_end {
            let t = &code[k];
            let is_sink = t.kind == TokKind::Ident
                && SINK_MACROS.contains(&t.text.as_str())
                && code.get(k + 1).is_some_and(|n| n.is_punct('!'));
            if !is_sink {
                k += 1;
                continue;
            }
            let Some(open) = (k + 2..code.len().min(k + 4))
                .find(|&q| code[q].is_punct('(') || code[q].is_punct('['))
            else {
                k += 1;
                continue;
            };
            let (oc, cc) = if code[open].is_punct('(') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let close = matching(code, open, oc, cc);
            let mut offender: Option<(String, &'static str)> = None;
            for q in open..=close.min(body_end) {
                let a = &code[q];
                match a.kind {
                    TokKind::Ident => {
                        if tainted.contains(&a.text)
                            && code.get(q + 1).is_some_and(|n| n.is_punct('('))
                        {
                            offender = Some((a.text.clone(), "a call to secret-returning"));
                            break;
                        }
                        if locals.contains(&a.text) {
                            offender =
                                Some((a.text.clone(), "a local bound from secret-returning"));
                            break;
                        }
                    }
                    TokKind::Str => {
                        if let Some(cap) = inline_captures(&a.text)
                            .into_iter()
                            .find(|c| locals.contains(c))
                        {
                            offender = Some((cap, "an inline capture of a local bound from"));
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some((name, how)) = offender {
                if !m.allowed(LINT, k) {
                    out.push(Finding {
                        lint: LINT,
                        file: m.rel.clone(),
                        line: code.get(k).map_or(0, |t| t.line),
                        function: f.name.clone(),
                        message: format!(
                            "{}! formats `{}` — {} function material that never passed an \
                             audited open (`open_via`); secret-typed values must open through \
                             the DisclosureLog before they may be rendered",
                            t.text, name, how
                        ),
                        snippet: m.line_text(code.get(k).map_or(0, |t| t.line)).to_string(),
                    });
                }
            }
            k = close + 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// AST pass
// ---------------------------------------------------------------------------

/// Methods that are audited opens when resolved to `Secret`/`PartyCtx`
/// (or when the receiver type is unknown and no competing definition
/// exists).
const AUDITED_METHODS: [&str; 5] = [
    "open_via",
    "open_local",
    "open_sum_ring",
    "open_sum_field",
    "finish_open",
];

/// Receiver types whose audited-open methods are trusted.
const AUDITED_TYPES: [&str; 2] = ["Secret", "PartyCtx"];

/// Metadata accessors that never expose element values: calling these on
/// a secret receiver yields public sizing information.
const METADATA_METHODS: [&str; 7] = [
    "len",
    "is_empty",
    "capacity",
    "count",
    "scalar_count",
    "vec_len",
    "tag",
];

/// Whether `name` is an audited *free* function (reconstruction helpers
/// and the Beaver `open_field`).
fn audited_free(name: &str) -> bool {
    name == "open_field" || name.starts_with("reconstruct_")
}

/// Whether a fn entry *is* one of the audited open primitives (and must
/// therefore never be marked tainted by the fixpoint).
fn is_audited_entry(e: &FnEntry) -> bool {
    match &e.self_ty {
        Some(st) => {
            AUDITED_METHODS.contains(&e.fun.name.as_str()) && AUDITED_TYPES.contains(&st.as_str())
        }
        None => audited_free(&e.fun.name),
    }
}

/// How a binding site taints the names it introduces.
#[derive(Clone, Copy, PartialEq)]
enum BindTaint {
    /// Initializer is clean.
    No,
    /// Initializer is tainted by *provenance* (came out of a tainted
    /// computation): every binding is tainted.
    Whole,
    /// Initializer is tainted only because its *type* carries secrets:
    /// bindings with a known type stay governed by that type (so a
    /// `String` field destructured out of a secret-bearing struct is
    /// clean); bindings with an unknown type are tainted conservatively.
    TypeOnly,
}

/// Abstract state: provenance-tainted places (dotted paths) plus the
/// inferred types of locals. Type-derived taint is *not* mirrored into
/// `tainted` — it flows through `types`, which is what keeps clean
/// sibling fields clean.
#[derive(Clone, Default)]
struct Env {
    tainted: BTreeSet<String>,
    types: BTreeMap<String, Ty>,
}

fn place_tainted(env: &Env, p: &str) -> bool {
    env.tainted.iter().any(|e| {
        e == p
            || p.strip_prefix(e.as_str())
                .is_some_and(|r| r.starts_with('.'))
            || e.strip_prefix(p).is_some_and(|r| r.starts_with('.'))
    })
}

fn clear_place(env: &mut Env, p: &str) {
    let prefix = format!("{p}.");
    env.tainted.retain(|q| q != p && !q.starts_with(&prefix));
}

/// The per-function abstract interpreter. One instance per (function,
/// phase): the fixpoint phase asks only whether the function's return
/// value is tainted; the emit phase also collects sink findings.
struct Intra<'a> {
    reg: &'a Registry<'a>,
    tainted_free: &'a BTreeSet<String>,
    tainted_methods: &'a BTreeSet<(String, String)>,
    model: &'a FileModel,
    fun_name: &'a str,
    self_ty: Option<&'a str>,
    emit: bool,
    findings: Vec<Finding>,
    ret_tainted: bool,
    /// Reads of tainted places/types seen so far — sampled around closure
    /// bodies to detect captures of tainted state.
    tainted_reads: usize,
}

impl<'a> Intra<'a> {
    fn ty_secret(&self, ty: &Ty) -> bool {
        self.reg.ty_secret(ty, self.self_ty)
    }

    /// Best-effort static type of an expression, from `let` ascriptions,
    /// parameter types, struct fields, and resolved call signatures.
    fn type_of(&self, e: &Expr, env: &Env) -> Option<Ty> {
        match &e.kind {
            ExprKind::Path(segs) if segs.len() == 1 => env.types.get(&segs[0]).cloned(),
            ExprKind::Field(base, name) => {
                let bt = self.type_of(base, env)?;
                if let Ok(i) = name.parse::<usize>() {
                    if let Some(t) = bt.tuple_elem(i) {
                        return Some(t.clone());
                    }
                }
                if bt.head.is_empty() {
                    return None;
                }
                self.reg.field_ty(&bt.head, name).cloned()
            }
            ExprKind::Unary(i) => self.type_of(i, env),
            ExprKind::Try(i) => {
                let t = self.type_of(i, env)?;
                if matches!(t.head.as_str(), "Result" | "Option") {
                    t.args.first().cloned()
                } else {
                    None
                }
            }
            ExprKind::Cast(_, ty) => Some(ty.clone()),
            ExprKind::Index { base, .. } => self.type_of(base, env)?.elem().cloned(),
            ExprKind::StructLit { path, .. } => Some(Ty::simple(path)),
            ExprKind::MethodCall { recv, name, .. } => {
                let rt = self.type_of(recv, env)?;
                if rt.head.is_empty() {
                    return None;
                }
                let i = *self.reg.methods.get(&(rt.head.clone(), name.clone()))?;
                Some(self.ret_ty(i, &rt.head))
            }
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Path(segs) = &callee.kind {
                    if segs.len() == 1 {
                        let idx = *self.reg.free.get(&segs[0])?.first()?;
                        return Some(self.ret_ty(idx, ""));
                    }
                    if segs.len() >= 2 {
                        let t = &segs[segs.len() - 2];
                        let m = &segs[segs.len() - 1];
                        let i = *self.reg.methods.get(&(t.clone(), m.clone()))?;
                        return Some(self.ret_ty(i, t));
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Declared return type of fn entry `i`, with `Self` resolved.
    fn ret_ty(&self, i: usize, self_head: &str) -> Ty {
        let r = &self.reg.fns[i].fun.ret;
        if r.head == "Self" && !self_head.is_empty() {
            Ty::simple(self_head)
        } else {
            r.clone()
        }
    }

    /// Whether a method call resolves to an audited open: the name must
    /// match, and the receiver must either be a trusted type, be unknown
    /// (name fallback), or have no competing definition in the program —
    /// a *defined* `open_via` on some other type does not sanitize.
    fn audited_method(&self, recv_head: Option<&str>, name: &str) -> bool {
        if !AUDITED_METHODS.contains(&name) {
            return false;
        }
        match recv_head {
            Some(h) => {
                AUDITED_TYPES.contains(&h)
                    || !self
                        .reg
                        .methods
                        .contains_key(&(h.to_string(), name.to_string()))
            }
            None => true,
        }
    }

    /// Introduce the bindings of `pat` with the given taint mode and
    /// (optional) static type, descending through struct/tuple patterns
    /// with per-field types where known.
    fn bind(&self, pat: &Pat, mode: BindTaint, ty: Option<&Ty>, env: &mut Env) {
        match pat {
            Pat::Ident(n) => {
                clear_place(env, n);
                match ty {
                    Some(t) => {
                        env.types.insert(n.clone(), t.clone());
                    }
                    None => {
                        env.types.remove(n);
                    }
                }
                let tainted = match mode {
                    BindTaint::No => false,
                    BindTaint::Whole => true,
                    // Known type: taint flows through `types` instead.
                    BindTaint::TypeOnly => ty.is_none(),
                };
                if tainted {
                    env.tainted.insert(n.clone());
                }
            }
            Pat::Tuple(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    self.bind(p, mode, ty.and_then(|t| t.tuple_elem(i)), env);
                }
            }
            Pat::TupleStruct(_, ps) => {
                let sub = if ps.len() == 1 {
                    ty.and_then(|t| t.elem())
                } else {
                    None
                };
                for p in ps {
                    self.bind(p, mode, sub, env);
                }
            }
            Pat::Struct(path, fs) => {
                let head = ty
                    .map(|t| t.head.as_str())
                    .filter(|h| !h.is_empty())
                    .or_else(|| path.split("::").next())
                    .unwrap_or("");
                for (fname, p) in fs {
                    self.bind(p, mode, self.reg.field_ty(head, fname), env);
                }
            }
            Pat::Wild | Pat::Other => {}
        }
    }

    /// The taint mode a tainted initializer/scrutinee imposes on its
    /// bindings: provenance-tainted (or computed) values taint wholesale,
    /// purely type-tainted places bind field-sensitively.
    fn bind_mode(&self, init: &Expr, tainted: bool, env: &Env) -> BindTaint {
        if !tainted {
            return BindTaint::No;
        }
        match init.place() {
            Some(p) if !place_tainted(env, &p) => BindTaint::TypeOnly,
            _ => BindTaint::Whole,
        }
    }

    fn eval_let(&mut self, pat: &Pat, decl_ty: Option<&Ty>, init: Option<&Expr>, env: &mut Env) {
        let Some(init) = init else {
            self.bind(pat, BindTaint::No, decl_ty, env);
            return;
        };
        // `let (a, b) = (x, y)` — element-wise, so place copies survive.
        if let (Pat::Tuple(ps), ExprKind::Tuple(es)) = (pat, &init.kind) {
            if ps.len() == es.len() {
                for (p, e) in ps.iter().zip(es) {
                    self.eval_let(p, None, Some(e), env);
                }
                return;
            }
        }
        if let Pat::Ident(n) = pat {
            // Struct literal: record per-field provenance under `n.field`.
            if let ExprKind::StructLit { path, fields, base } = &init.kind {
                clear_place(env, n);
                let ty = decl_ty.cloned().unwrap_or_else(|| Ty::simple(path));
                env.types.insert(n.clone(), ty);
                for (fname, fe) in fields {
                    if self.eval(fe, env) {
                        env.tainted.insert(format!("{n}.{fname}"));
                    }
                }
                if let Some(b) = base {
                    if self.eval(b, env) {
                        env.tainted.insert(n.clone());
                    }
                }
                return;
            }
            // Pure place: copy the provenance subtree; the static type
            // carries any type-derived taint.
            if let Some(src) = init.place() {
                let ty = decl_ty.cloned().or_else(|| self.type_of(init, env));
                clear_place(env, n);
                match ty {
                    Some(t) => {
                        env.types.insert(n.clone(), t);
                    }
                    None => {
                        env.types.remove(n);
                    }
                }
                let prefix = format!("{src}.");
                let moved: Vec<String> = env
                    .tainted
                    .iter()
                    .filter(|q| **q == src || q.starts_with(&prefix))
                    .map(|q| format!("{}{}", n, &q[src.len()..]))
                    .collect();
                let ancestor = env.tainted.iter().any(|q| {
                    src.strip_prefix(q.as_str())
                        .is_some_and(|r| r.starts_with('.'))
                });
                env.tainted.extend(moved);
                if ancestor {
                    env.tainted.insert(n.clone());
                }
                return;
            }
        }
        let t = self.eval(init, env);
        let ity = decl_ty.cloned().or_else(|| self.type_of(init, env));
        let mode = self.bind_mode(init, t, env);
        self.bind(pat, mode, ity.as_ref(), env);
    }

    fn eval_block(&mut self, b: &Block, env: &mut Env) -> bool {
        let mut tail = false;
        for s in &b.stmts {
            tail = false;
            match s {
                Stmt::Let {
                    pat,
                    ty,
                    init,
                    else_block,
                    ..
                } => {
                    self.eval_let(pat, ty.as_ref(), init.as_ref(), env);
                    if let Some(eb) = else_block {
                        self.eval_block(eb, env);
                    }
                }
                Stmt::Expr { expr, semi } => {
                    let t = self.eval(expr, env);
                    if !semi {
                        tail = t;
                    }
                }
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
        tail
    }

    fn eval_closure(
        &mut self,
        params: &[(Pat, Ty)],
        body: &Expr,
        env: &Env,
        taint_params: bool,
    ) -> bool {
        let mut child = env.clone();
        for (pat, ty) in params {
            let t = (!ty.is_unknown()).then(|| ty.clone());
            let mode = if taint_params {
                BindTaint::Whole
            } else {
                BindTaint::No
            };
            self.bind(pat, mode, t.as_ref(), &mut child);
        }
        let before = self.tainted_reads;
        let body_t = self.eval(body, &mut child);
        body_t || self.tainted_reads > before
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> bool {
        match &e.kind {
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    let n = &segs[0];
                    if place_tainted(env, n) {
                        self.tainted_reads += 1;
                        return true;
                    }
                    if let Some(t) = env.types.get(n) {
                        if self.ty_secret(&t.clone()) {
                            self.tainted_reads += 1;
                            return true;
                        }
                    }
                }
                false
            }
            ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => false,
            ExprKind::Field(base, _) => {
                if let Some(p) = e.place() {
                    if place_tainted(env, &p) {
                        self.tainted_reads += 1;
                        return true;
                    }
                    if let Some(ft) = self.type_of(e, env) {
                        if self.ty_secret(&ft) {
                            self.tainted_reads += 1;
                            return true;
                        }
                        return false; // known clean field type: clean sibling
                    }
                    return self.eval(base, env);
                }
                if let Some(ft) = self.type_of(e, env) {
                    let base_t = self.eval(base, env);
                    if self.ty_secret(&ft) {
                        self.tainted_reads += 1;
                        return true;
                    }
                    let _ = base_t;
                    return false;
                }
                self.eval(base, env)
            }
            ExprKind::MethodCall { recv, name, args } => {
                let recv_head = self
                    .type_of(recv, env)
                    .map(|t| t.head)
                    .filter(|h| !h.is_empty());
                let recv_taint = self.eval(recv, env);
                if self.audited_method(recv_head.as_deref(), name) {
                    for a in args {
                        self.eval(a, env);
                    }
                    return false;
                }
                let mut arg_taint = false;
                for a in args {
                    if let ExprKind::Closure { params, body } = &a.kind {
                        arg_taint |= self.eval_closure(params, body, env, recv_taint);
                    } else {
                        arg_taint |= self.eval(a, env);
                    }
                }
                if METADATA_METHODS.contains(&name.as_str()) {
                    return false;
                }
                match recv_head.as_deref() {
                    // Anything non-audited extracted from the wrapper is
                    // raw secret material (`element`, `map`, `clone`, …).
                    Some("Secret") => true,
                    Some(h) => {
                        if self
                            .reg
                            .methods
                            .contains_key(&(h.to_string(), name.clone()))
                        {
                            self.tainted_methods
                                .contains(&(h.to_string(), name.clone()))
                        } else {
                            recv_taint || arg_taint
                        }
                    }
                    None => recv_taint || arg_taint,
                }
            }
            ExprKind::Call { callee, args } => {
                let mut arg_taint = false;
                let mut eval_args = |me: &mut Self, env: &mut Env| {
                    for a in args {
                        if let ExprKind::Closure { params, body } = &a.kind {
                            arg_taint |= me.eval_closure(params, body, env, false);
                        } else {
                            arg_taint |= me.eval(a, env);
                        }
                    }
                };
                match &callee.kind {
                    ExprKind::Path(segs) if segs.len() == 1 => {
                        let name = &segs[0];
                        if audited_free(name) {
                            eval_args(self, env);
                            return false;
                        }
                        eval_args(self, env);
                        if self.tainted_free.contains(name.as_str()) {
                            return true;
                        }
                        if place_tainted(env, name) {
                            return true; // tainted closure callable
                        }
                        if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                            return arg_taint; // `Some(x)` / tuple-struct ctor
                        }
                        if self.reg.free.contains_key(name.as_str()) {
                            return false; // resolved, fixpoint says clean
                        }
                        arg_taint
                    }
                    ExprKind::Path(segs) if segs.len() >= 2 => {
                        let t = &segs[segs.len() - 2];
                        let m = &segs[segs.len() - 1];
                        if self.audited_method(Some(t), m) {
                            eval_args(self, env);
                            return false;
                        }
                        eval_args(self, env);
                        if t == "Secret" {
                            return true;
                        }
                        if self.tainted_methods.contains(&(t.clone(), m.clone())) {
                            return true;
                        }
                        if m.starts_with(|c: char| c.is_ascii_uppercase()) {
                            return arg_taint; // enum-variant ctor
                        }
                        if self.reg.methods.contains_key(&(t.clone(), m.clone())) {
                            return false;
                        }
                        arg_taint
                    }
                    _ => {
                        let c = self.eval(callee, env);
                        eval_args(self, env);
                        c || arg_taint
                    }
                }
            }
            ExprKind::Macro {
                name,
                args,
                raw_idents,
                strs,
            } => {
                let mut any = false;
                let mut offender: Option<(String, &'static str)> = None;
                for a in args {
                    let t = self.eval(a, env);
                    if t {
                        any = true;
                        if offender.is_none() {
                            offender = Some(offender_of(a));
                        }
                    }
                }
                for s in strs {
                    for cap in inline_captures(s) {
                        let t = place_tainted(env, &cap)
                            || env
                                .types
                                .get(&cap)
                                .is_some_and(|t| self.reg.ty_secret(t, self.self_ty));
                        if t {
                            any = true;
                            if offender.is_none() {
                                offender = Some((cap, "an inline capture of a local bound from"));
                            }
                        }
                    }
                }
                // Sub-parse failed (no args recovered): fall back to the
                // raw identifier bag against provenance-tainted locals.
                if args.is_empty() && offender.is_none() {
                    for id in raw_idents {
                        if place_tainted(env, id) {
                            any = true;
                            offender = Some((id.clone(), "a local bound from secret-returning"));
                            break;
                        }
                    }
                }
                if self.emit && SINK_MACROS.contains(&name.as_str()) {
                    if let Some((who, how)) = offender {
                        if !self.model.allowed_line(LINT, e.line) {
                            self.findings.push(Finding {
                                lint: LINT,
                                file: self.model.rel.clone(),
                                line: e.line,
                                function: self.fun_name.to_string(),
                                message: format!(
                                    "{}! formats `{}` — {} function material that never passed \
                                     an audited open (`open_via`); secret-typed values must open \
                                     through the DisclosureLog before they may be rendered",
                                    name, who, how
                                ),
                                snippet: self.model.line_text(e.line).to_string(),
                            });
                        }
                    }
                }
                any
            }
            ExprKind::Closure { params, body } => self.eval_closure(params, body, env, false),
            ExprKind::Binary(_, a, b) => {
                let ta = self.eval(a, env);
                let tb = self.eval(b, env);
                ta || tb
            }
            ExprKind::Unary(i) | ExprKind::Try(i) | ExprKind::Cast(i, _) => self.eval(i, env),
            ExprKind::Index { base, index } => {
                let bt = self.eval(base, env);
                self.eval(index, env);
                bt
            }
            ExprKind::StructLit { fields, base, .. } => {
                let mut t = false;
                for (_, fe) in fields {
                    t |= self.eval(fe, env);
                }
                if let Some(b) = base {
                    t |= self.eval(b, env);
                }
                t
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                let mut t = false;
                for e in es {
                    t |= self.eval(e, env);
                }
                t
            }
            ExprKind::If { cond, then, els } => {
                self.eval(cond, env);
                let t1 = self.eval_block(then, env);
                let t2 = els.as_ref().is_some_and(|e| self.eval(e, env));
                t1 || t2
            }
            ExprKind::Match { scrutinee, arms } => {
                let taint = self.eval(scrutinee, env);
                let mode = self.bind_mode(scrutinee, taint, env);
                let sty = self.type_of(scrutinee, env);
                let mut t = false;
                for arm in arms {
                    self.bind(&arm.pat, mode, sty.as_ref(), env);
                    if let Some(g) = &arm.guard {
                        self.eval(g, env);
                    }
                    t |= self.eval(&arm.body, env);
                }
                t
            }
            ExprKind::While { cond, body } => {
                self.eval(cond, env);
                self.eval_block(body, env);
                false
            }
            ExprKind::ForLoop { pat, iter, body } => {
                let taint = self.eval(iter, env);
                let mode = self.bind_mode(iter, taint, env);
                let ety = self.type_of(iter, env).and_then(|t| t.elem().cloned());
                self.bind(pat, mode, ety.as_ref(), env);
                self.eval_block(body, env);
                false
            }
            ExprKind::Loop(b) => {
                self.eval_block(b, env);
                false
            }
            ExprKind::Block(b) => self.eval_block(b, env),
            ExprKind::Return(v) => {
                if let Some(v) = v {
                    let t = self.eval(v, env);
                    self.ret_tainted |= t;
                }
                false
            }
            ExprKind::Break(v) => {
                if let Some(v) = v {
                    self.eval(v, env);
                }
                false
            }
            ExprKind::Assign { lhs, rhs } => {
                let rt = self.eval(rhs, env);
                if let Some(p) = lhs.place() {
                    if rt {
                        env.tainted.insert(p);
                    }
                } else {
                    self.eval(lhs, env);
                }
                false
            }
            ExprKind::Range(a, b) => {
                let ta = a.as_ref().is_some_and(|x| self.eval(x, env));
                let tb = b.as_ref().is_some_and(|x| self.eval(x, env));
                ta || tb
            }
        }
    }
}

/// How to describe a tainted macro argument in the finding message.
fn offender_of(e: &Expr) -> (String, &'static str) {
    if let Some(p) = e.place() {
        if p.contains('.') {
            return (p, "a field projection of `Secret`-bearing");
        }
        return (p, "a local bound from secret-returning");
    }
    match &e.kind {
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(l) = segs.last() {
                    return (l.clone(), "a call to secret-returning");
                }
            }
            ("a call".to_string(), "a call to secret-returning")
        }
        ExprKind::MethodCall { name, .. } => (name.clone(), "a call to secret-returning"),
        _ => ("this expression".to_string(), "an expression deriving"),
    }
}

/// Abstractly execute one function. Returns whether its return value is
/// tainted; findings accumulate only when `emit` is set.
fn analyze_entry(
    reg: &Registry,
    tainted_free: &BTreeSet<String>,
    tainted_methods: &BTreeSet<(String, String)>,
    e: &FnEntry,
    emit: bool,
) -> (bool, Vec<Finding>) {
    let Some(model) = reg.models.get(e.model) else {
        return (false, Vec::new());
    };
    let mut it = Intra {
        reg,
        tainted_free,
        tainted_methods,
        model,
        fun_name: &e.fun.name,
        self_ty: e.self_ty.as_deref(),
        emit,
        findings: Vec::new(),
        ret_tainted: false,
        tainted_reads: 0,
    };
    let mut env = Env::default();
    if e.fun.has_self {
        if let Some(st) = &e.self_ty {
            env.types.insert("self".to_string(), Ty::simple(st));
        }
    }
    for (pat, ty) in &e.fun.params {
        let t = (!ty.is_unknown()).then_some(ty);
        it.bind(pat, BindTaint::No, t, &mut env);
    }
    let tail = it.eval_block(&e.fun.body, &mut env);
    (it.ret_tainted || tail, it.findings)
}

/// Runs the AST cross-function taint pass over a set of (secure-scope)
/// file models: seed from declared return types, propagate function-level
/// taint to a fixpoint by abstract interpretation, then report formatter
/// sinks fed by secret material.
pub fn run(models: &[FileModel]) -> Vec<Finding> {
    let reg = Registry::build(models);
    let mut tainted_free: BTreeSet<String> = BTreeSet::new();
    let mut tainted_methods: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &reg.fns {
        if e.fun.is_test || is_audited_entry(e) {
            continue;
        }
        if !reg.ty_secret(&e.fun.ret, e.self_ty.as_deref()) {
            continue;
        }
        match &e.self_ty {
            // Methods are seeded even inside secret.rs: resolution gates
            // them behind an actual `Secret`-typed receiver.
            Some(st) => {
                tainted_methods.insert((st.clone(), e.fun.name.clone()));
            }
            None => {
                if !e.in_secret_rs {
                    tainted_free.insert(e.fun.name.clone());
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for e in &reg.fns {
            if e.fun.is_test || !e.returns_value() || is_audited_entry(e) {
                continue;
            }
            let already = match &e.self_ty {
                Some(st) => tainted_methods.contains(&(st.clone(), e.fun.name.clone())),
                None => tainted_free.contains(&e.fun.name),
            };
            if already {
                continue;
            }
            let (ret_t, _) = analyze_entry(&reg, &tainted_free, &tainted_methods, e, false);
            if ret_t {
                match &e.self_ty {
                    Some(st) => {
                        tainted_methods.insert((st.clone(), e.fun.name.clone()));
                    }
                    None => {
                        tainted_free.insert(e.fun.name.clone());
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = Vec::new();
    for e in &reg.fns {
        if e.fun.is_test {
            continue;
        }
        let (_, f) = analyze_entry(&reg, &tainted_free, &tainted_methods, e, true);
        out.extend(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(rel, src)| FileModel::parse(rel, src))
            .collect()
    }

    fn lint_count(f: &[Finding]) -> usize {
        f.iter().filter(|x| x.lint == LINT).count()
    }

    #[test]
    fn direct_seed_and_sink_same_file() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak(prg: &mut Prg) -> String {
    let noise = draw(prg);
    format!("{:?}", noise)
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
        assert!(f[0].message.contains("noise"));
    }

    #[test]
    fn taint_propagates_across_files_and_wrapper_types() {
        // draw() returns Secret; summarize() hides it inside a struct with
        // an innocuous declared type; report() (another file) formats the
        // result two calls downstream.
        let a = r#"
pub fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
pub fn summarize(prg: &mut Prg) -> Summary {
    Summary { label: "round", payload: draw(prg) }
}
"#;
        let b = r#"
fn report(prg: &mut Prg) -> String {
    let stats = summarize(prg);
    format!("{stats:?}")
}
"#;
        let f = run(&models(&[
            ("crates/mpc/src/a.rs", a),
            ("crates/core/src/secure/b.rs", b),
        ]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "report");
        assert_eq!(f[0].file, "crates/core/src/secure/b.rs");
    }

    #[test]
    fn audited_open_sanitizes_the_chain() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn open_and_report(ctx: &mut Ctx, prg: &mut Prg) -> String {
    let shares = draw(prg);
    let total = ctx.open_local(shares, Some("total"));
    format!("{total:?}")
}
fn derived(ctx: &mut Ctx, prg: &mut Prg) -> Vec<R64> {
    let s = draw(prg);
    reconstruct_ring(&s)
}
fn uses_derived(ctx: &mut Ctx, prg: &mut Prg) -> String {
    let v = derived(ctx, prg);
    format!("{v:?}")
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn local_to_local_moves_tracked_and_pragma_respected() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak(prg: &mut Prg) {
    let a = draw(prg);
    let b = a;
    println!("{:?}", b);
}
fn allowed(prg: &mut Prg) {
    let a = draw(prg);
    // dash-analyze::allow(cross-function-taint): demo of redacted Debug
    println!("{:?}", a);
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
    }

    #[test]
    fn wrapper_module_combinators_do_not_seed() {
        // `map` defined in secret.rs returning Secret must not taint every
        // iterator `.map(...)` call in the workspace.
        let secret_rs = r#"
impl<T> Secret<T> {
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Secret<U> { Secret(f(self.0)) }
}
"#;
        let user = r#"
fn doubles(xs: &[u64]) -> Vec<u64> {
    let out = xs.iter().map(|x| x * 2).collect::<Vec<_>>();
    out
}
fn show(xs: &[u64]) -> String {
    let d = doubles(xs);
    format!("{d:?}")
}
"#;
        let f = run(&models(&[
            ("crates/mpc/src/secret.rs", secret_rs),
            ("crates/mpc/src/y.rs", user),
        ]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let s = draw(&mut prg);
        println!("{s:?}");
    }
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 0, "{f:?}");
    }

    #[test]
    fn field_projection_is_tracked_per_path() {
        let src = r#"
pub struct Pkt { label: String, share_vec: Secret<Vec<R64>> }
fn leak_field(pkt: &Pkt) -> String {
    format!("{:?}", pkt.share_vec)
}
fn clean_sibling(pkt: &Pkt) -> String {
    format!("{}", pkt.label)
}
fn leak_whole(pkt: &Pkt) -> String {
    format!("{pkt:?}")
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 2, "{f:?}");
        let fns: Vec<&str> = f.iter().map(|x| x.function.as_str()).collect();
        assert!(fns.contains(&"leak_field"));
        assert!(fns.contains(&"leak_whole"));
        assert!(!fns.contains(&"clean_sibling"));
    }

    #[test]
    fn closure_capture_and_combinator_params_taint() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak_capture(prg: &mut Prg) -> String {
    let noise = draw(prg);
    let grab = move || noise;
    format!("{:?}", grab())
}
fn leak_combinator(s: &Secret<Vec<R64>>) {
    s.map(|row| println!("{row:?}"));
}
fn clean_combinator(xs: &[u64]) -> u64 {
    xs.iter().map(|x| x + 1).sum()
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 2, "{f:?}");
        let fns: Vec<&str> = f.iter().map(|x| x.function.as_str()).collect();
        assert!(fns.contains(&"leak_capture"));
        assert!(fns.contains(&"leak_combinator"));
    }

    #[test]
    fn fake_open_on_known_type_does_not_sanitize() {
        // A *defined* `open_via` on a non-audited type must not launder,
        // while an unresolved `open_local` on an audited-typed receiver
        // still does.
        let src = r#"
pub struct RoundState { stash: Secret<Vec<R64>> }
impl RoundState {
    pub fn open_via(&self, log: &mut Log) -> Vec<R64> { self.stash.reveal_raw() }
}
fn leak(st: &RoundState, log: &mut Log) -> String {
    let v = st.open_via(log);
    format!("{v:?}")
}
fn fine(ctx: &mut PartyCtx, s: Secret<Vec<R64>>) -> String {
    let v = ctx.open_local(s, None);
    format!("{v:?}")
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
    }

    #[test]
    fn destructuring_is_field_sensitive_on_type_taint() {
        let src = r#"
pub struct Pkt { label: String, share_vec: Secret<Vec<R64>> }
fn split(pkt: Pkt) -> String {
    let Pkt { label, share_vec } = pkt;
    format!("{label} ok")
}
fn split_leak(pkt: Pkt) -> String {
    let Pkt { label, share_vec } = pkt;
    format!("{share_vec:?}")
}
"#;
        let f = run(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "split_leak");
    }

    #[test]
    fn token_pass_still_catches_the_basics() {
        let src = r#"
fn draw(prg: &mut Prg) -> Secret<Vec<R64>> { Secret::new(prg.ring_vec(4)) }
fn leak(prg: &mut Prg) -> String {
    let noise = draw(prg);
    format!("{:?}", noise)
}
"#;
        let f = run_token(&models(&[("crates/mpc/src/x.rs", src)]));
        assert_eq!(lint_count(&f), 1, "{f:?}");
        assert_eq!(f[0].function, "leak");
    }

    #[test]
    fn inline_capture_parsing() {
        assert_eq!(
            inline_captures("\"{a} {b:?} {{escaped}} {0} {c:>8}\""),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }
}
