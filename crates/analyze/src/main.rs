//! `dash-analyze` CLI: the workspace invariants gate.
//!
//! ```text
//! dash-analyze [--root <dir>] [--format text|json]
//!              [--baseline <file>] [--update-baseline]
//!              [--deny <lint>|all]... [--warn <lint>|all]... [--allow <lint>|all]...
//! dash-analyze --validate-trace <trace.json>
//! ```
//!
//! Exits 0 when no unsuppressed deny-level finding remains, 1 when the
//! gate fails, 2 on usage or I/O errors. `--validate-trace` skips the
//! workspace scan and instead checks one `dash-trace/1` JSON export
//! (as written by `dash secure-scan --trace-out`) for schema and
//! conservation-invariant violations.

use dash_analyze::baseline::Baseline;
use dash_analyze::report::{judge, render_json, render_text, Levels};
use dash_analyze::{analyze_workspace, Level};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: String,
    baseline_path: PathBuf,
    update_baseline: bool,
    levels: Levels,
}

fn usage() -> String {
    "usage: dash-analyze [--root <dir>] [--format text|json] [--baseline <file>] \
     [--update-baseline] [--deny <lint>|all] [--warn <lint>|all] [--allow <lint>|all]\n\
     \x20      dash-analyze --validate-trace <trace.json>"
        .to_string()
}

/// `--validate-trace` mode: checks one trace export and exits.
fn validate_trace_file(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dash-analyze: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match dash_analyze::trace_check::validate_trace(&src) {
        Ok(s) => {
            println!(
                "trace ok: {} parties, {} bytes, {} spans",
                s.n_parties, s.total_bytes, s.n_spans
            );
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("trace invalid: {e}");
            }
            ExitCode::from(1)
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut levels = Levels::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(take("--root")?)),
            "--format" => {
                format = take("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("--format must be text or json\n{}", usage()));
                }
            }
            "--baseline" => baseline_path = Some(PathBuf::from(take("--baseline")?)),
            "--update-baseline" => update_baseline = true,
            "--deny" => levels.set(&take("--deny")?, Level::Deny)?,
            "--warn" => levels.set(&take("--warn")?, Level::Warn)?,
            "--allow" => levels.set(&take("--allow")?, Level::Allow)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyze-baseline.json"));
    Ok(Args {
        root,
        format,
        baseline_path,
        update_baseline,
        levels,
    })
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor holding both `Cargo.toml` and `crates/`).
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("could not find the workspace root (Cargo.toml + crates/); \
                        pass --root"
                .to_string());
        }
    }
}

fn main() -> ExitCode {
    // Trace validation is a self-contained mode with its own exit paths.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--validate-trace") {
        return match raw.get(i + 1) {
            Some(path) if raw.len() == 2 => validate_trace_file(path),
            _ => {
                eprintln!(
                    "--validate-trace takes exactly one file argument\n{}",
                    usage()
                );
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let findings = match analyze_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "dash-analyze: cannot read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let prev = if args.baseline_path.is_file() {
        match std::fs::read_to_string(&args.baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| Baseline::parse(&s))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "dash-analyze: bad baseline {}: {e}",
                    args.baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    if args.update_baseline {
        let base = Baseline::from_findings(
            &findings,
            &prev,
            "grandfathered pre-existing site; burn down per ROADMAP",
        );
        if let Err(e) = std::fs::write(&args.baseline_path, base.to_json()) {
            eprintln!(
                "dash-analyze: cannot write {}: {e}",
                args.baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "dash-analyze: wrote {} entries to {}",
            base.entries.len(),
            args.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let outcome = judge(findings, &args.levels, &prev);
    if args.format == "json" {
        print!("{}", render_json(&outcome));
    } else {
        print!("{}", render_text(&outcome));
    }
    if outcome.blocking > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
