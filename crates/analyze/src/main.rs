//! `dash-analyze` CLI: the workspace invariants gate.
//!
//! ```text
//! dash-analyze [--root <dir>] [--format text|json|github]
//!              [--baseline <file>] [--update-baseline] [--prune]
//!              [--deny <lint>|all]... [--warn <lint>|all]... [--allow <lint>|all]...
//! dash-analyze --differential [--root <dir>]
//! dash-analyze --validate-trace <trace.json>
//! ```
//!
//! Exits 0 when no unsuppressed deny-level finding remains, 1 when the
//! gate fails, 2 on usage or I/O errors. `--format github` emits
//! workflow-command annotations for CI. `--update-baseline` keeps (and
//! warns about) stale fingerprints unless `--prune` is also given.
//! `--differential` runs the legacy token taint engine and the AST engine
//! side by side and fails if the AST engine misses any token-engine
//! cross-function-taint finding. `--validate-trace` skips the workspace
//! scan and instead checks one `dash-trace/1` JSON export (as written by
//! `dash secure-scan --trace-out`) for schema and conservation-invariant
//! violations.

use dash_analyze::baseline::Baseline;
use dash_analyze::report::{judge, render_github, render_json, render_text, Levels};
use dash_analyze::{analyze_workspace, analyze_workspace_engine, Level, TaintEngine};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: String,
    baseline_path: PathBuf,
    update_baseline: bool,
    prune: bool,
    differential: bool,
    levels: Levels,
}

fn usage() -> String {
    "usage: dash-analyze [--root <dir>] [--format text|json|github] [--baseline <file>] \
     [--update-baseline] [--prune] [--deny <lint>|all] [--warn <lint>|all] \
     [--allow <lint>|all]\n\
     \x20      dash-analyze --differential [--root <dir>]\n\
     \x20      dash-analyze --validate-trace <trace.json>"
        .to_string()
}

/// `--validate-trace` mode: checks one trace export and exits.
fn validate_trace_file(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dash-analyze: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match dash_analyze::trace_check::validate_trace(&src) {
        Ok(s) => {
            println!(
                "trace ok: {} parties, {} bytes, {} spans",
                s.n_parties, s.total_bytes, s.n_spans
            );
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("trace invalid: {e}");
            }
            ExitCode::from(1)
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut prune = false;
    let mut differential = false;
    let mut levels = Levels::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(take("--root")?)),
            "--format" => {
                format = take("--format")?;
                if format != "text" && format != "json" && format != "github" {
                    return Err(format!(
                        "--format must be text, json, or github\n{}",
                        usage()
                    ));
                }
            }
            "--baseline" => baseline_path = Some(PathBuf::from(take("--baseline")?)),
            "--update-baseline" => update_baseline = true,
            "--prune" => prune = true,
            "--differential" => differential = true,
            "--deny" => levels.set(&take("--deny")?, Level::Deny)?,
            "--warn" => levels.set(&take("--warn")?, Level::Warn)?,
            "--allow" => levels.set(&take("--allow")?, Level::Allow)?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if prune && !update_baseline {
        return Err(format!(
            "--prune only makes sense with --update-baseline\n{}",
            usage()
        ));
    }
    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyze-baseline.json"));
    Ok(Args {
        root,
        format,
        baseline_path,
        update_baseline,
        prune,
        differential,
        levels,
    })
}

/// `--differential`: both taint engines over the same workspace; the AST
/// engine must report a superset of the token engine's
/// cross-function-taint findings (by file and line). Exits 1 on any miss.
fn run_differential(root: &std::path::Path) -> ExitCode {
    let token = match analyze_workspace_engine(root, TaintEngine::Token) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dash-analyze: cannot read workspace: {e}");
            return ExitCode::from(2);
        }
    };
    let ast = match analyze_workspace_engine(root, TaintEngine::Ast) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dash-analyze: cannot read workspace: {e}");
            return ExitCode::from(2);
        }
    };
    let sites = |fs: &[dash_analyze::Finding]| -> Vec<(String, usize)> {
        fs.iter()
            .filter(|f| f.lint == "cross-function-taint")
            .map(|f| (f.file.clone(), f.line))
            .collect()
    };
    let token_sites = sites(&token);
    let ast_sites = sites(&ast);
    let missed: Vec<_> = token_sites
        .iter()
        .filter(|s| !ast_sites.contains(s))
        .collect();
    println!(
        "differential: token-engine {} site{}, ast-engine {} site{}, missed by ast {}",
        token_sites.len(),
        if token_sites.len() == 1 { "" } else { "s" },
        ast_sites.len(),
        if ast_sites.len() == 1 { "" } else { "s" },
        missed.len()
    );
    for (file, line) in &missed {
        println!("  MISSED {file}:{line}");
    }
    if missed.is_empty() {
        println!("differential: PASS (ast ⊇ token)");
        ExitCode::SUCCESS
    } else {
        println!("differential: FAIL — the AST engine lost findings the token engine had");
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor holding both `Cargo.toml` and `crates/`).
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("could not find the workspace root (Cargo.toml + crates/); \
                        pass --root"
                .to_string());
        }
    }
}

fn main() -> ExitCode {
    // Trace validation is a self-contained mode with its own exit paths.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--validate-trace") {
        return match raw.get(i + 1) {
            Some(path) if raw.len() == 2 => validate_trace_file(path),
            _ => {
                eprintln!(
                    "--validate-trace takes exactly one file argument\n{}",
                    usage()
                );
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.differential {
        return run_differential(&args.root);
    }
    let findings = match analyze_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "dash-analyze: cannot read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let prev = if args.baseline_path.is_file() {
        match std::fs::read_to_string(&args.baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| Baseline::parse(&s))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "dash-analyze: bad baseline {}: {e}",
                    args.baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    if args.update_baseline {
        let (base, stale) = Baseline::regenerate(
            &findings,
            &prev,
            "grandfathered pre-existing site; burn down per ROADMAP",
            args.prune,
        );
        for e in &stale {
            eprintln!(
                "dash-analyze: stale baseline entry {} ({} in {}): {}",
                e.fingerprint,
                e.lint,
                e.file,
                if args.prune {
                    "pruned"
                } else {
                    "kept — rerun with --prune to drop it"
                }
            );
        }
        if let Err(e) = std::fs::write(&args.baseline_path, base.to_json()) {
            eprintln!(
                "dash-analyze: cannot write {}: {e}",
                args.baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "dash-analyze: wrote {} entries to {}",
            base.entries.len(),
            args.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let outcome = judge(findings, &args.levels, &prev);
    match args.format.as_str() {
        "json" => print!("{}", render_json(&outcome)),
        "github" => print!("{}", render_github(&outcome)),
        _ => print!("{}", render_text(&outcome)),
    }
    if outcome.blocking > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
