//! A minimal Rust lexer: just enough token structure for the lint passes.
//!
//! The analyzer never needs a full parse — every invariant it checks is
//! visible at the token level (identifiers adjacent to `(`/`[`/`!`,
//! attribute lists, comment pragmas). What it *does* need is to never
//! mistake string or comment contents for code, so the lexer handles the
//! complete literal grammar: nested block comments, escapes, raw strings
//! with arbitrary `#` fences, byte strings, and the char-vs-lifetime
//! ambiguity.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or the integer part of a float).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (text excludes the slashes).
    LineComment,
    /// `/* … */` comment (text excludes the delimiters).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Whether this token is a specific single punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Whether this token is a specific identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lexes `src` into a flat token stream. Unterminated literals are
/// tolerated (the rest of the file becomes one token) — the analyzer must
/// never panic on weird input, it is itself a panic-free gate.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let tok_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..end].to_string(),
                    line: tok_line,
                });
            }
            b'"' => {
                let (text, nl) = scan_string(b, src, &mut i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += nl;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (text, nl) = scan_raw_or_byte(b, src, &mut i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += nl;
            }
            b'\'' => {
                // Lifetime if 'ident not closed by a quote; else char.
                if is_lifetime_at(b, i) {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: src[start..i.min(src.len())].to_string(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Ordinary `"…"` string starting at `*i`; returns (contents, newlines).
fn scan_string(b: &[u8], src: &str, i: &mut usize) -> (String, usize) {
    let start = *i + 1;
    let mut nl = 0;
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'\n' => {
                nl += 1;
                *i += 1;
            }
            b'"' => {
                *i += 1;
                return (src[start..*i - 1].to_string(), nl);
            }
            _ => *i += 1,
        }
    }
    (src[start.min(src.len())..].to_string(), nl)
}

/// Whether position `i` starts `r"`, `r#`, `b"`, `br"`, or `br#`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_prefix = |off: usize| -> bool { matches!(rest.get(off), Some(b'"') | Some(b'#')) };
    match rest.first() {
        Some(b'r') => after_prefix(1),
        Some(b'b') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'r') => after_prefix(2),
            _ => false,
        },
        _ => false,
    }
}

/// Scans `r#"…"#` / `b"…"` style strings; returns (contents, newlines).
fn scan_raw_or_byte(b: &[u8], src: &str, i: &mut usize) -> (String, usize) {
    // Skip the r/b/br prefix.
    let mut raw = false;
    while *i < b.len() && (b[*i] == b'r' || b[*i] == b'b') {
        raw |= b[*i] == b'r';
        *i += 1;
    }
    let mut fences = 0usize;
    while *i < b.len() && b[*i] == b'#' {
        fences += 1;
        *i += 1;
    }
    if *i >= b.len() || b[*i] != b'"' {
        return (String::new(), 0);
    }
    *i += 1;
    let start = *i;
    let mut nl = 0;
    while *i < b.len() {
        match b[*i] {
            b'\\' if !raw => *i += 2,
            b'\n' => {
                nl += 1;
                *i += 1;
            }
            b'"' => {
                // A raw string closes only when followed by its fences.
                let close_ok = (0..fences).all(|k| b.get(*i + 1 + k) == Some(&b'#'));
                if close_ok {
                    let text = src[start..*i].to_string();
                    *i += 1 + fences;
                    return (text, nl);
                }
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    (src[start.min(src.len())..].to_string(), nl)
}

/// `'a` is a lifetime when the quote is followed by an identifier that is
/// not itself closed by another quote (`'a'` is a char literal).
fn is_lifetime_at(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= b.len() || !(b[j] == b'_' || b[j].is_ascii_alphabetic()) {
        return false;
    }
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let toks = kinds(r#"let s = "unwrap()"; // unwrap() here"#);
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Ident && t == "unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#; x"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'y'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'y'"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_including_hex_and_underscores() {
        let toks = kinds("0xFF_u32 1_000 1 << 20");
        assert_eq!(toks[0], (TokKind::Number, "0xFF_u32".to_string()));
        assert_eq!(toks[1], (TokKind::Number, "1_000".to_string()));
    }
}
