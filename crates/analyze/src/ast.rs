//! A lossy-but-faithful Rust AST for the analyzer.
//!
//! The parser (`parser.rs`) produces these nodes from the comment-free
//! token stream. "Lossy" means: anything the taint and constant-time
//! passes don't need (lifetimes, generic bounds, visibility, attributes
//! other than `#[test]`/`#[cfg(test)]`/`#[derive(..)]`) is dropped or
//! flattened, and any construct the parser cannot make sense of becomes
//! [`Expr::Unknown`] rather than an error. "Faithful" means: for the
//! constructs the passes *do* reason about — items, fn signatures and
//! bodies, `let`/`match` bindings, field accesses, closures, method and
//! free calls — the tree mirrors real syntax, so the passes never have to
//! re-guess structure from adjacency.

/// A type, flattened to what the passes need: a head identifier, its
/// generic/element arguments, and the bag of every identifier mentioned
/// anywhere inside (for cheap "does this type mention `Secret`" checks).
///
/// `&mut std::vec::Vec<Secret<R64>>` ⇒ head `Vec`, one arg with head
/// `Secret`, idents `[std, vec, Vec, Secret, R64]`. Tuples use head `""`
/// with one arg per element; slices/arrays use head `""` with the element
/// as the single arg.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ty {
    pub head: String,
    pub args: Vec<Ty>,
    pub idents: Vec<String>,
}

impl Ty {
    pub fn simple(head: &str) -> Ty {
        Ty {
            head: head.to_string(),
            args: Vec::new(),
            idents: vec![head.to_string()],
        }
    }

    /// Whether `name` appears anywhere in the type expression.
    pub fn mentions(&self, name: &str) -> bool {
        self.idents.iter().any(|s| s == name)
    }

    pub fn is_unknown(&self) -> bool {
        self.head.is_empty() && self.args.is_empty()
    }

    /// The element type of a container/wrapper, if this type is one the
    /// passes understand (`Vec<T>`, `[T]`, `Option<T>`, `Box<T>`, …).
    pub fn elem(&self) -> Option<&Ty> {
        match self.head.as_str() {
            "Vec" | "VecDeque" | "Box" | "Rc" | "Arc" | "Option" | "Some" | "Cow" => {
                self.args.first()
            }
            // Slice `[T]` / array `[T; N]`: head "" with exactly one arg.
            "" if self.args.len() == 1 => self.args.first(),
            _ => None,
        }
    }

    /// Tuple element `i`, when this is a tuple type.
    pub fn tuple_elem(&self, i: usize) -> Option<&Ty> {
        if self.head.is_empty() && self.args.len() >= 2 {
            self.args.get(i)
        } else {
            None
        }
    }
}

/// Top-level or nested item.
#[derive(Debug)]
pub enum Item {
    Fn(Fun),
    Struct(StructDef),
    Impl(ImplBlock),
    Mod(ModDef),
    /// `use`, `const`, `static`, `type`, `macro_rules!`, `extern` blocks —
    /// parsed past, not modeled.
    Other,
}

/// A `struct` or `enum` definition with the fields the taint pass needs.
#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    /// Named fields (`name: Ty`). Tuple-struct fields use `"0"`, `"1"`, …
    /// For enums, the union of every variant's fields.
    pub fields: Vec<(String, Ty)>,
    /// Idents inside `#[derive(...)]`.
    pub derives: Vec<String>,
    pub is_enum: bool,
    pub line: usize,
}

/// An `impl` block (inherent or trait) or a `trait` definition.
#[derive(Debug)]
pub struct ImplBlock {
    /// Head of the self type (`Secret` for `impl<T> Secret<T>`); the trait
    /// name itself for `trait` definitions with default bodies.
    pub self_ty: String,
    /// Trait being implemented, if any.
    pub trait_name: Option<String>,
    pub fns: Vec<Fun>,
}

/// A module with a body (`mod m { … }`).
#[derive(Debug)]
pub struct ModDef {
    pub name: String,
    pub cfg_test: bool,
    pub items: Vec<Item>,
}

/// One function: signature + body.
#[derive(Debug)]
pub struct Fun {
    pub name: String,
    /// `(pattern-root-name, type)`; `self` appears as `("self", Ty-of-impl)`
    /// only once flattened by the passes — here its type is empty.
    pub params: Vec<(Pat, Ty)>,
    pub ret: Ty,
    pub body: Block,
    pub line: usize,
    pub end_line: usize,
    pub is_test: bool,
    pub has_self: bool,
}

/// `{ stmt* }` — the value of the block is its tail expression, if any.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// The tail expression (last statement, expression, no semicolon).
    pub fn tail(&self) -> Option<&Expr> {
        match self.stmts.last() {
            Some(Stmt::Expr { expr, semi: false }) => Some(expr),
            _ => None,
        }
    }
}

#[derive(Debug)]
pub enum Stmt {
    Let {
        pat: Pat,
        ty: Option<Ty>,
        init: Option<Expr>,
        /// `let … else { … }` diverging block.
        else_block: Option<Block>,
        line: usize,
    },
    Expr {
        expr: Expr,
        semi: bool,
    },
    /// Nested item (fn/struct/impl/mod defined inside a body).
    Item(Box<Item>),
    Empty,
}

/// Patterns, to the depth bindings need.
#[derive(Debug)]
pub enum Pat {
    /// A binding (`x`, `mut x`, `ref x`).
    Ident(String),
    /// `(a, b)` — positional.
    Tuple(Vec<Pat>),
    /// `Path { field: pat, field, .. }` — (field-name, pattern) pairs.
    Struct(String, Vec<(String, Pat)>),
    /// `Path(a, b)` — tuple-struct / enum-variant destructuring.
    TupleStruct(String, Vec<Pat>),
    Wild,
    /// Literals, paths (`None`), ranges, slices — no bindings extracted
    /// beyond those nested in `Or`/slice elements, which the parser
    /// flattens into `Tuple`.
    Other,
}

impl Pat {
    /// Every binding name introduced by the pattern.
    pub fn bindings(&self, out: &mut Vec<String>) {
        match self {
            Pat::Ident(n) => out.push(n.clone()),
            Pat::Tuple(ps) | Pat::TupleStruct(_, ps) => {
                for p in ps {
                    p.bindings(out);
                }
            }
            Pat::Struct(_, fs) => {
                for (_, p) in fs {
                    p.bindings(out);
                }
            }
            Pat::Wild | Pat::Other => {}
        }
    }
}

/// Binary operators the passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

impl BinOp {
    /// Comparison operators (the constant-time lint denies these on
    /// secret operands).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    pub pat: Pat,
    pub guard: Option<Expr>,
    pub body: Expr,
}

/// Expressions. Every variant carries the 1-based line of its first
/// token via the wrapper [`Expr`].
#[derive(Debug)]
pub struct Expr {
    pub line: usize,
    pub kind: ExprKind,
}

#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` — path segments (turbofish dropped). A single lowercase
    /// segment is usually a local variable.
    Path(Vec<String>),
    /// Numeric/char/bool literal.
    Lit,
    /// String literal (text retained for inline-capture scanning).
    Str(String),
    /// `base.field` / `base.0`.
    Field(Box<Expr>, String),
    /// `recv.name(args…)`.
    MethodCall {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    /// `callee(args…)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `name!(args…)`. `raw_idents` is every identifier token inside the
    /// delimiters (robust even when an arg fails to parse), `strs` every
    /// string-literal token.
    Macro {
        name: String,
        args: Vec<Expr>,
        raw_idents: Vec<String>,
        strs: Vec<String>,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        params: Vec<(Pat, Ty)>,
        body: Box<Expr>,
    },
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `-x`, `!x`, `*x`, `&x`.
    Unary(Box<Expr>),
    /// `x as T`.
    Cast(Box<Expr>, Ty),
    /// `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    /// `Path { field: expr, … }` — (path-head, fields, functional-update
    /// base).
    StructLit {
        path: String,
        fields: Vec<(String, Expr)>,
        base: Option<Box<Expr>>,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
    },
    While {
        cond: Box<Expr>,
        body: Block,
    },
    ForLoop {
        pat: Pat,
        iter: Box<Expr>,
        body: Block,
    },
    Loop(Block),
    Block(Block),
    Return(Option<Box<Expr>>),
    Break(Option<Box<Expr>>),
    /// `lhs = rhs` and compound assignments.
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `a..b` / `a..=b` (either side optional).
    Range(Option<Box<Expr>>, Option<Box<Expr>>),
    /// `x?`.
    Try(Box<Expr>),
    /// Reference the parser could not model; opaque to the passes.
    Unknown,
}

impl Expr {
    pub fn unknown(line: usize) -> Expr {
        Expr {
            line,
            kind: ExprKind::Unknown,
        }
    }

    /// The dotted place this expression names, if it is a pure
    /// local/field projection: `x` ⇒ `x`, `pkt.shares` ⇒ `pkt.shares`,
    /// `pair.1` ⇒ `pair.1`. References and parens are transparent.
    pub fn place(&self) -> Option<String> {
        match &self.kind {
            ExprKind::Path(segs) if segs.len() == 1 => segs.first().cloned(),
            ExprKind::Field(base, name) => {
                let mut p = base.place()?;
                p.push('.');
                p.push_str(name);
                Some(p)
            }
            ExprKind::Unary(inner) | ExprKind::Try(inner) => inner.place(),
            _ => None,
        }
    }

    /// Collect every identifier mentioned anywhere under this expression
    /// (path segments, field and method names, macro raw idents).
    pub fn collect_idents(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Path(segs) => out.extend(segs.iter().cloned()),
            ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => {}
            ExprKind::Field(b, name) => {
                b.collect_idents(out);
                out.push(name.clone());
            }
            ExprKind::MethodCall { recv, name, args } => {
                recv.collect_idents(out);
                out.push(name.clone());
                for a in args {
                    a.collect_idents(out);
                }
            }
            ExprKind::Call { callee, args } => {
                callee.collect_idents(out);
                for a in args {
                    a.collect_idents(out);
                }
            }
            ExprKind::Macro {
                name, raw_idents, ..
            } => {
                out.push(name.clone());
                out.extend(raw_idents.iter().cloned());
            }
            ExprKind::Closure { body, .. } => body.collect_idents(out),
            ExprKind::Binary(_, a, b) | ExprKind::Assign { lhs: a, rhs: b } => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            ExprKind::Unary(a) | ExprKind::Cast(a, _) | ExprKind::Try(a) => a.collect_idents(out),
            ExprKind::Index { base, index } => {
                base.collect_idents(out);
                index.collect_idents(out);
            }
            ExprKind::StructLit { path, fields, base } => {
                out.push(path.clone());
                for (n, e) in fields {
                    out.push(n.clone());
                    e.collect_idents(out);
                }
                if let Some(b) = base {
                    b.collect_idents(out);
                }
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
            ExprKind::If { cond, then, els } => {
                cond.collect_idents(out);
                block_idents(then, out);
                if let Some(e) = els {
                    e.collect_idents(out);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                scrutinee.collect_idents(out);
                for a in arms {
                    if let Some(g) = &a.guard {
                        g.collect_idents(out);
                    }
                    a.body.collect_idents(out);
                }
            }
            ExprKind::While { cond, body } => {
                cond.collect_idents(out);
                block_idents(body, out);
            }
            ExprKind::ForLoop { iter, body, .. } => {
                iter.collect_idents(out);
                block_idents(body, out);
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => block_idents(b, out),
            ExprKind::Return(e) | ExprKind::Break(e) => {
                if let Some(e) = e {
                    e.collect_idents(out);
                }
            }
            ExprKind::Range(a, b) => {
                if let Some(a) = a {
                    a.collect_idents(out);
                }
                if let Some(b) = b {
                    b.collect_idents(out);
                }
            }
        }
    }
}

fn block_idents(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    e.collect_idents(out);
                }
            }
            Stmt::Expr { expr, .. } => expr.collect_idents(out),
            Stmt::Item(_) | Stmt::Empty => {}
        }
    }
}

impl Expr {
    /// Visit this expression and every sub-expression, pre-order. Blocks
    /// (bodies, arms, closures, `let` initializers) are traversed too, so
    /// one call covers a whole function body via [`Block::walk`].
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Path(_) | ExprKind::Lit | ExprKind::Str(_) | ExprKind::Unknown => {}
            ExprKind::Field(b, _)
            | ExprKind::Unary(b)
            | ExprKind::Cast(b, _)
            | ExprKind::Try(b) => b.walk(f),
            ExprKind::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Closure { body, .. } => body.walk(f),
            ExprKind::Binary(_, a, b) | ExprKind::Assign { lhs: a, rhs: b } => {
                a.walk(f);
                b.walk(f);
            }
            ExprKind::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            ExprKind::StructLit { fields, base, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
                if let Some(b) = base {
                    b.walk(f);
                }
            }
            ExprKind::If { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                scrutinee.walk(f);
                for a in arms {
                    if let Some(g) = &a.guard {
                        g.walk(f);
                    }
                    a.body.walk(f);
                }
            }
            ExprKind::While { cond, body } => {
                cond.walk(f);
                body.walk(f);
            }
            ExprKind::ForLoop { iter, body, .. } => {
                iter.walk(f);
                body.walk(f);
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => b.walk(f),
            ExprKind::Return(e) | ExprKind::Break(e) => {
                if let Some(e) = e {
                    e.walk(f);
                }
            }
            ExprKind::Range(a, b) => {
                if let Some(a) = a {
                    a.walk(f);
                }
                if let Some(b) = b {
                    b.walk(f);
                }
            }
        }
    }
}

impl Block {
    /// Visit every expression in the block, pre-order (see [`Expr::walk`]).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        for s in &self.stmts {
            match s {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                    if let Some(b) = else_block {
                        b.walk(f);
                    }
                }
                Stmt::Expr { expr, .. } => expr.walk(f),
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
    }
}
