//! `dash-analyze`: a dependency-free static analyzer for the DASH
//! workspace, enforcing the protocol invariants that the type system
//! cannot express:
//!
//! - **disclosure-completeness** — every call to an opening primitive
//!   (`all_gather*`, `broadcast*`, `exchange_sum*`, `open_*`) must be
//!   accounted to the [`DisclosureLog`] in the same function, so the
//!   leakage ladder measured by the experiments stays honest.
//! - **tag-range** — the message-tag registry in `dash_mpc::tags` must be
//!   pairwise disjoint, exhaustively named, and cover the whole `u32`
//!   space; tag constants may not be declared anywhere else.
//! - **panic-free** — `unwrap`/`expect`/`panic!`-family macros are denied
//!   in the secure crates' non-test code: a party that panics mid-round
//!   deadlocks or crashes everyone else.
//! - **secret-taint** — share/mask/triple types must not derive `Debug`,
//!   flow into print macros, or appear in formatting/assertions outside
//!   `#[cfg(test)]`.
//! - **cross-function-taint** — call-graph closure of secret-taint: a
//!   value produced by any `Secret`-returning function (directly or
//!   through a call chain that never passes an audited open) must not
//!   reach a print/format macro, even via innocuously-named locals or
//!   wrapper structs.
//! - **secure-indexing** — direct `x[i]` indexing in secure code. The
//!   grandfathered baseline has been burned down to zero and the lint now
//!   denies like the rest.
//! - **constant-time** — the mpc crate's element/share modules must stay
//!   branch-free on secret data: no `if`/`while`/`match`, comparison,
//!   `%`/`/`, or table indexing whose operand is share material. Scoped
//!   to the arithmetic core (`field.rs`, `ring.rs`, `ctime.rs`,
//!   `fixed.rs`, `share.rs`, `secret.rs`); protocol layers branch on
//!   public control flow and are exempt by design.
//!
//! All lints deny by default; there is no warn tier left in the defaults.
//!
//! The analyzer is self-contained by design: a hand-rolled lexer and JSON
//! reader/writer, no registry access, consistent with the workspace's
//! vendored-shim policy. Findings are suppressed either by an inline
//! pragma —
//!
//! ```text
//! // dash-analyze::allow(<lint>): <reason>
//! ```
//!
//! — which applies to the enclosing (or immediately following) function,
//! or by an entry in the checked-in baseline file.
//!
//! [`DisclosureLog`]: ../dash_mpc/audit/struct.DisclosureLog.html

pub mod ast;
pub mod baseline;
pub mod ct;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod parser;
pub(crate) mod registry;
pub mod report;
pub mod tags_check;
pub mod taint;
pub mod trace_check;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Names of every lint, in report order.
pub const LINTS: [&str; 7] = [
    "disclosure-completeness",
    "tag-range",
    "panic-free",
    "secret-taint",
    "cross-function-taint",
    "secure-indexing",
    "constant-time",
];

/// Severity of a lint or finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Allow,
    Warn,
    Deny,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// Default level of each lint before CLI overrides. Every lint denies:
/// `secure-indexing` graduated from warn once its grandfathered baseline
/// reached zero.
pub fn default_level(_lint: &str) -> Level {
    Level::Deny
}

/// One raw finding (before level resolution and baseline suppression).
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function, or `""` for item-level findings.
    pub function: String,
    pub message: String,
    /// Trimmed source line, used for fingerprinting.
    pub snippet: String,
}

/// Whether a repo-relative path is in the secure scope the deny lints
/// cover.
pub fn in_scope(rel: &str) -> bool {
    rel.contains("crates/mpc/src") || rel.contains("crates/core/src/secure")
}

/// Which cross-function-taint engine to run.
///
/// `Ast` is the production engine: field-sensitive, closure-aware
/// abstract interpretation over the parsed syntax. `Token` is the legacy
/// token-stream closure, kept as a differential baseline — every leak it
/// can see, the AST engine must also see (`--differential` enforces
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintEngine {
    Token,
    Ast,
}

/// Analyzes one file's source. `scoped` selects whether the secure-code
/// lints apply; the tag-registry consistency check additionally runs when
/// `rel` is the registry module itself.
///
/// The cross-function taint pass runs here over the single file only —
/// enough for fixtures and ad-hoc checks. Whole-workspace runs go through
/// [`analyze_workspace`], which feeds the pass every scoped file at once
/// so chains spanning files are closed too.
pub fn analyze_source(rel: &str, src: &str, scoped: bool) -> Vec<Finding> {
    analyze_source_engine(rel, src, scoped, TaintEngine::Ast)
}

/// [`analyze_source`] with an explicit taint engine (differential runs).
pub fn analyze_source_engine(
    rel: &str,
    src: &str,
    scoped: bool,
    engine: TaintEngine,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if scoped {
        let m = model::FileModel::parse(rel, src);
        findings.extend(lints::run_all(&m));
        findings.extend(run_taint(std::slice::from_ref(&m), engine));
        findings.extend(ct::run(std::slice::from_ref(&m)));
    }
    if rel.ends_with("crates/mpc/src/tags.rs") || rel == "crates/mpc/src/tags.rs" {
        findings.extend(tags_check::check_tags_source(rel, src));
    }
    findings
}

fn run_taint(models: &[model::FileModel], engine: TaintEngine) -> Vec<Finding> {
    match engine {
        TaintEngine::Ast => taint::run(models),
        TaintEngine::Token => taint::run_token(models),
    }
}

/// Walks the workspace under `root` and analyzes every `.rs` file beneath
/// each crate's `src/` (plus the root package's `src/`, if any).
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    analyze_workspace_engine(root, TaintEngine::Ast)
}

/// [`analyze_workspace`] with an explicit taint engine (differential
/// runs: `--differential` runs both and requires the AST engine to see a
/// superset of the token engine's cross-function-taint findings).
pub fn analyze_workspace_engine(root: &Path, engine: TaintEngine) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut saw_registry = false;
    let mut models = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        if rel.ends_with("crates/mpc/src/tags.rs") {
            saw_registry = true;
            findings.extend(tags_check::check_tags_source(&rel, &src));
        }
        if in_scope(&rel) {
            let m = model::FileModel::parse(&rel, &src);
            findings.extend(lints::run_all(&m));
            models.push(m);
        }
    }
    // One global taint pass over every scoped file, so secret-returning
    // call chains that cross files (mpc → core/secure) are closed.
    findings.extend(run_taint(&models, engine));
    findings.extend(ct::run(&models));
    if !saw_registry {
        findings.push(Finding {
            lint: "tag-range",
            file: "crates/mpc/src/tags.rs".to_string(),
            line: 1,
            function: String::new(),
            message: "tag registry module is missing: crates/mpc/src/tags.rs must exist and \
                      define REGISTRY"
                .to_string(),
            snippet: String::new(),
        });
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes (stable across platforms for
/// baselines and reports).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_covers_secure_dirs_only() {
        assert!(in_scope("crates/mpc/src/net.rs"));
        assert!(in_scope("crates/core/src/secure/aggregate.rs"));
        assert!(!in_scope("crates/core/src/scan/parallel.rs"));
        assert!(!in_scope("crates/linalg/src/lib.rs"));
        assert!(!in_scope("crates/mpc/tests/props.rs"));
    }

    #[test]
    fn default_levels() {
        assert_eq!(default_level("panic-free"), Level::Deny);
        assert_eq!(default_level("secure-indexing"), Level::Deny);
        assert_eq!(default_level("cross-function-taint"), Level::Deny);
    }

    #[test]
    fn unscoped_source_yields_nothing() {
        let src = "fn f(v: Vec<u32>) -> u32 { v[0] }";
        assert!(analyze_source("crates/linalg/src/x.rs", src, false).is_empty());
    }
}
