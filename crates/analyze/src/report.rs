//! Level resolution, baseline application, and report rendering.

use crate::baseline::{fingerprint, Baseline};
use crate::{baseline::json_str, default_level, Finding, Level, LINTS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Effective per-lint levels after CLI overrides.
#[derive(Debug, Clone)]
pub struct Levels(BTreeMap<&'static str, Level>);

impl Default for Levels {
    fn default() -> Self {
        Levels(LINTS.iter().map(|&l| (l, default_level(l))).collect())
    }
}

impl Levels {
    /// Applies an override; `lint` may be `"all"`. Unknown names error so
    /// typos fail loudly in CI rather than silently keeping defaults.
    pub fn set(&mut self, lint: &str, level: Level) -> Result<(), String> {
        if lint == "all" {
            for v in self.0.values_mut() {
                *v = level;
            }
            return Ok(());
        }
        let key = LINTS
            .iter()
            .find(|&&l| l == lint)
            .ok_or_else(|| format!("unknown lint `{lint}`; known: {}", LINTS.join(", ")))?;
        self.0.insert(key, level);
        Ok(())
    }

    pub fn get(&self, lint: &str) -> Level {
        self.0.get(lint).copied().unwrap_or(Level::Deny)
    }
}

/// One finding with its resolved level and suppression state.
#[derive(Debug, Clone)]
pub struct Judged {
    pub finding: Finding,
    pub level: Level,
    pub suppressed: bool,
}

/// The gate's overall outcome.
#[derive(Debug)]
pub struct Outcome {
    pub judged: Vec<Judged>,
    pub stale_baseline: usize,
    /// Deny findings that are neither pragma'd nor baselined.
    pub blocking: usize,
}

/// Resolves levels and applies the baseline. Allow-level findings are
/// dropped entirely; suppressed findings are kept (reported, non-fatal).
pub fn judge(findings: Vec<Finding>, levels: &Levels, baseline: &Baseline) -> Outcome {
    let stale_baseline = baseline.unused(&findings).len();
    let mut judged = Vec::new();
    for finding in findings {
        let level = levels.get(finding.lint);
        if level == Level::Allow {
            continue;
        }
        let suppressed = baseline.suppresses(&finding);
        judged.push(Judged {
            finding,
            level,
            suppressed,
        });
    }
    judged.sort_by(|a, b| {
        (b.level, &a.finding.file, a.finding.line).cmp(&(a.level, &b.finding.file, b.finding.line))
    });
    let blocking = judged
        .iter()
        .filter(|j| j.level == Level::Deny && !j.suppressed)
        .count();
    Outcome {
        judged,
        stale_baseline,
        blocking,
    }
}

/// Human-readable report.
pub fn render_text(o: &Outcome) -> String {
    let mut s = String::new();
    for j in &o.judged {
        if j.suppressed {
            continue;
        }
        let f = &j.finding;
        let _ = writeln!(
            s,
            "{}[{}] {}:{}{}",
            j.level.as_str(),
            f.lint,
            f.file,
            f.line,
            if f.function.is_empty() {
                String::new()
            } else {
                format!(" (in fn {})", f.function)
            }
        );
        let _ = writeln!(s, "  {}", f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(s, "  > {}", f.snippet);
        }
    }
    let suppressed = o.judged.iter().filter(|j| j.suppressed).count();
    let warns = o
        .judged
        .iter()
        .filter(|j| j.level == Level::Warn && !j.suppressed)
        .count();
    let _ = writeln!(
        s,
        "dash-analyze: {} blocking, {} warnings, {} baselined, {} stale baseline entr{}",
        o.blocking,
        warns,
        suppressed,
        o.stale_baseline,
        if o.stale_baseline == 1 { "y" } else { "ies" }
    );
    if o.blocking == 0 {
        let _ = writeln!(s, "dash-analyze: PASS");
    } else {
        let _ = writeln!(
            s,
            "dash-analyze: FAIL — fix the findings, add a `// dash-analyze::allow(<lint>): \
             reason` pragma, or (for grandfathered warns only) regenerate the baseline with \
             --update-baseline"
        );
    }
    s
}

/// GitHub Actions workflow-command annotations: one
/// `::error`/`::warning` line per unsuppressed finding, so findings show
/// inline on the PR diff. Message text is percent-encoded per the
/// workflow-command escaping rules (`%` → `%25`, newline → `%0A`,
/// carriage return → `%0D`). A plain summary line follows for the log.
pub fn render_github(o: &Outcome) -> String {
    fn esc(s: &str) -> String {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    }
    let mut s = String::new();
    for j in &o.judged {
        if j.suppressed {
            continue;
        }
        let f = &j.finding;
        let kind = match j.level {
            Level::Deny => "error",
            _ => "warning",
        };
        let _ = writeln!(
            s,
            "::{kind} file={},line={},title=dash-analyze[{}]::{}",
            f.file,
            f.line,
            f.lint,
            esc(&f.message)
        );
    }
    let _ = writeln!(
        s,
        "dash-analyze: {} blocking, {} stale baseline entr{}",
        o.blocking,
        o.stale_baseline,
        if o.stale_baseline == 1 { "y" } else { "ies" }
    );
    s
}

/// Machine-readable report (one JSON document on stdout).
pub fn render_json(o: &Outcome) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, j) in o.judged.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let f = &j.finding;
        let _ = write!(
            s,
            "\n    {{\"lint\": {}, \"level\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \
             \"message\": {}, \"snippet\": {}, \"fingerprint\": {}, \"suppressed\": {}}}",
            json_str(f.lint),
            json_str(j.level.as_str()),
            json_str(&f.file),
            f.line,
            json_str(&f.function),
            json_str(&f.message),
            json_str(&f.snippet),
            json_str(&fingerprint(f)),
            j.suppressed
        );
    }
    if !o.judged.is_empty() {
        s.push_str("\n  ");
    }
    let _ = write!(
        s,
        "],\n  \"summary\": {{\"blocking\": {}, \"suppressed\": {}, \"stale_baseline\": {}, \
         \"pass\": {}}}\n}}\n",
        o.blocking,
        o.judged.iter().filter(|j| j.suppressed).count(),
        o.stale_baseline,
        o.blocking == 0
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &'static str, snippet: &str) -> Finding {
        Finding {
            lint,
            file: "crates/mpc/src/x.rs".to_string(),
            line: 3,
            function: "g".to_string(),
            message: "msg".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn deny_blocks_warn_does_not() {
        // Every lint denies by default now; demote one explicitly to
        // exercise the warn path.
        let mut levels = Levels::default();
        levels.set("secure-indexing", Level::Warn).unwrap();
        let o = judge(
            vec![f("panic-free", "a.unwrap()"), f("secure-indexing", "v[0]")],
            &levels,
            &Baseline::default(),
        );
        assert_eq!(o.blocking, 1);
        assert!(render_text(&o).contains("FAIL"));
    }

    #[test]
    fn defaults_block_secure_indexing() {
        let o = judge(
            vec![f("secure-indexing", "v[0]")],
            &Levels::default(),
            &Baseline::default(),
        );
        assert_eq!(o.blocking, 1);
    }

    #[test]
    fn baseline_suppresses_denies_too() {
        let findings = vec![f("panic-free", "a.unwrap()")];
        let base = Baseline::from_findings(&findings, &Baseline::default(), "documented");
        let o = judge(findings, &Levels::default(), &base);
        assert_eq!(o.blocking, 0);
        assert!(render_text(&o).contains("PASS"));
    }

    #[test]
    fn deny_all_escalates_warns() {
        let mut levels = Levels::default();
        levels.set("all", Level::Deny).unwrap();
        let o = judge(
            vec![f("secure-indexing", "v[0]")],
            &levels,
            &Baseline::default(),
        );
        assert_eq!(o.blocking, 1);
    }

    #[test]
    fn allow_drops_findings() {
        let mut levels = Levels::default();
        levels.set("secure-indexing", Level::Allow).unwrap();
        let o = judge(
            vec![f("secure-indexing", "v[0]")],
            &levels,
            &Baseline::default(),
        );
        assert!(o.judged.is_empty());
        assert_eq!(o.blocking, 0);
    }

    #[test]
    fn unknown_lint_rejected() {
        assert!(Levels::default().set("nope", Level::Deny).is_err());
    }

    #[test]
    fn github_annotations_escape_workflow_commands() {
        let mut bad = f("panic-free", "a.unwrap()");
        bad.message = "50% of cases\nbreak".to_string();
        let o = judge(vec![bad], &Levels::default(), &Baseline::default());
        let s = render_github(&o);
        assert!(
            s.contains("::error file=crates/mpc/src/x.rs,line=3,title=dash-analyze[panic-free]::"),
            "{s}"
        );
        assert!(s.contains("50%25 of cases%0Abreak"), "{s}");
        // Suppressed findings emit no annotation.
        let findings = vec![f("panic-free", "a.unwrap()")];
        let base = Baseline::from_findings(&findings, &Baseline::default(), "ok");
        let o = judge(findings, &Levels::default(), &base);
        assert!(
            !render_github(&o).contains("::error"),
            "{}",
            render_github(&o)
        );
    }

    #[test]
    fn json_report_is_parseable() {
        let o = judge(
            vec![f("panic-free", "a.unwrap()")],
            &Levels::default(),
            &Baseline::default(),
        );
        let v = crate::baseline::parse_json(&render_json(&o)).unwrap();
        let _ = v;
    }
}
