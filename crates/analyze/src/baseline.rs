//! Checked-in suppression baseline.
//!
//! The baseline grandfathers pre-existing findings (today: the
//! `secure-indexing` warn sites) so the gate can be deny-by-default for
//! new code without a flag day. Entries are keyed by a *fingerprint* —
//! a stable hash of lint, file, enclosing function, and the normalized
//! source line — so reformatting or moving a line within its function
//! does not invalidate the suppression, while any semantic change does.
//!
//! The file format is a small, stable JSON document read and written by
//! the hand-rolled parser below (no serde, per the vendored-shim policy).

use crate::Finding;
use std::fmt::Write as _;

/// One suppression entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub lint: String,
    pub file: String,
    pub function: String,
    pub fingerprint: String,
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// FNV-1a 64-bit over `lint|file|function|normalized-snippet`, rendered
/// as 16 hex digits. Line numbers are deliberately excluded so unrelated
/// edits above a site do not churn the baseline.
pub fn fingerprint(f: &Finding) -> String {
    let norm: String = f.snippet.split_whitespace().collect::<Vec<_>>().join(" ");
    let key = format!("{}|{}|{}|{}", f.lint, f.file, f.function, norm);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

impl Baseline {
    /// Whether `f` is suppressed by this baseline.
    pub fn suppresses(&self, f: &Finding) -> bool {
        let fp = fingerprint(f);
        self.entries.iter().any(|e| e.fingerprint == fp)
    }

    /// Fingerprints present in the baseline but matching none of
    /// `findings` — stale entries that should be pruned.
    pub fn unused<'a>(&'a self, findings: &[Finding]) -> Vec<&'a BaselineEntry> {
        let live: Vec<String> = findings.iter().map(fingerprint).collect();
        self.entries
            .iter()
            .filter(|e| !live.contains(&e.fingerprint))
            .collect()
    }

    /// Builds a baseline suppressing all of `findings`, carrying over
    /// reasons from `prev` where fingerprints match.
    pub fn from_findings(findings: &[Finding], prev: &Baseline, default_reason: &str) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for f in findings {
            let fp = fingerprint(f);
            if entries.iter().any(|e| e.fingerprint == fp) {
                continue;
            }
            let reason = prev
                .entries
                .iter()
                .find(|e| e.fingerprint == fp)
                .map(|e| e.reason.clone())
                .unwrap_or_else(|| default_reason.to_string());
            entries.push(BaselineEntry {
                lint: f.lint.to_string(),
                file: f.file.clone(),
                function: f.function.clone(),
                fingerprint: fp,
                reason,
            });
        }
        entries.sort_by(|a, b| {
            (&a.lint, &a.file, &a.function, &a.fingerprint).cmp(&(
                &b.lint,
                &b.file,
                &b.function,
                &b.fingerprint,
            ))
        });
        Baseline { entries }
    }

    /// Regenerates the baseline from the current `findings`.
    ///
    /// Stale entries in `prev` — fingerprints matching no current finding,
    /// e.g. after the offending line was fixed or reworded — are *kept* by
    /// default so an `--update-baseline` run cannot silently lose a
    /// suppression that a concurrent branch still needs; the caller warns
    /// about each. With `prune` set they are dropped. Returns the new
    /// baseline and the stale entries (kept or pruned).
    pub fn regenerate(
        findings: &[Finding],
        prev: &Baseline,
        default_reason: &str,
        prune: bool,
    ) -> (Baseline, Vec<BaselineEntry>) {
        let mut base = Baseline::from_findings(findings, prev, default_reason);
        let stale: Vec<BaselineEntry> = prev.unused(findings).into_iter().cloned().collect();
        if !prune {
            for e in &stale {
                if !base.entries.iter().any(|x| x.fingerprint == e.fingerprint) {
                    base.entries.push(e.clone());
                }
            }
            base.entries.sort_by(|a, b| {
                (&a.lint, &a.file, &a.function, &a.fingerprint).cmp(&(
                    &b.lint,
                    &b.file,
                    &b.function,
                    &b.fingerprint,
                ))
            });
        }
        (base, stale)
    }

    /// Serializes to the checked-in JSON format (stable ordering, one
    /// entry per line group, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"lint\": {},\n      \"file\": {},\n      \"function\": {},\n      \"fingerprint\": {},\n      \"reason\": {}\n    }}",
                json_str(&e.lint),
                json_str(&e.file),
                json_str(&e.function),
                json_str(&e.fingerprint),
                json_str(&e.reason)
            );
        }
        if !self.entries.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses the baseline JSON; `Err` carries a human-readable reason.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = parse_json(src)?;
        let obj = v.as_obj().ok_or("baseline root must be an object")?;
        let list = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .and_then(|(_, v)| v.as_arr())
            .ok_or("baseline must contain a \"findings\" array")?;
        let mut entries = Vec::new();
        for item in list {
            let o = item
                .as_obj()
                .ok_or("each baseline finding must be an object")?;
            let get = |k: &str| -> String {
                o.iter()
                    .find(|(n, _)| n == k)
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or_default()
                    .to_string()
            };
            let e = BaselineEntry {
                lint: get("lint"),
                file: get("file"),
                function: get("function"),
                fingerprint: get("fingerprint"),
                reason: get("reason"),
            };
            if e.fingerprint.is_empty() {
                return Err("baseline entry missing \"fingerprint\"".to_string());
            }
            entries.push(e);
        }
        Ok(Baseline { entries })
    }
}

/// JSON string literal with escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the baseline format.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let k = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                let v = parse_value(b, i)?;
                fields.push((k, v));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    let mut out = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        out.push(hex);
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            c => {
                // Multi-byte UTF-8: copy the full char.
                let s = std::str::from_utf8(&b[*i..])
                    .map_err(|_| format!("invalid utf-8 at byte {i}"))?;
                let ch = s.chars().next().ok_or("empty string tail")?;
                out.push(ch);
                *i += ch.len_utf8();
                let _ = c;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &'static str, file: &str, func: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line: 10,
            function: func.to_string(),
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn fingerprint_stable_under_whitespace_and_line_moves() {
        let a = f("panic-free", "a.rs", "g", "v.unwrap()");
        let mut b = a.clone();
        b.line = 99;
        b.snippet = "  v.unwrap()  ".to_string();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = f("panic-free", "a.rs", "h", "v.unwrap()");
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn roundtrip_and_suppression() {
        let findings = vec![
            f("secure-indexing", "crates/mpc/src/net.rs", "recv", "buf[i]"),
            f("secure-indexing", "crates/mpc/src/net.rs", "send", "q[j]"),
        ];
        let base = Baseline::from_findings(&findings, &Baseline::default(), "grandfathered");
        let json = base.to_json();
        let back = Baseline::parse(&json).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert!(back.suppresses(&findings[0]));
        assert!(back.suppresses(&findings[1]));
        let novel = f(
            "secure-indexing",
            "crates/mpc/src/net.rs",
            "recv",
            "other[k]",
        );
        assert!(!back.suppresses(&novel));
        assert_eq!(back.unused(&findings).len(), 0);
        assert_eq!(back.unused(&findings[..1]).len(), 1);
    }

    #[test]
    fn reasons_survive_regeneration() {
        let findings = vec![f("panic-free", "x.rs", "g", "a.unwrap()")];
        let mut prev = Baseline::from_findings(&findings, &Baseline::default(), "old reason");
        prev.entries[0].reason = "documented exception".to_string();
        let next = Baseline::from_findings(&findings, &prev, "new default");
        assert_eq!(next.entries[0].reason, "documented exception");
    }

    #[test]
    fn regenerate_keeps_stale_entries_unless_pruned() {
        let old = vec![
            f("secure-indexing", "crates/mpc/src/net.rs", "recv", "buf[i]"),
            f("secure-indexing", "crates/mpc/src/net.rs", "send", "q[j]"),
        ];
        let prev = Baseline::from_findings(&old, &Baseline::default(), "grandfathered");
        // The `send` site was fixed: only `recv` still fires.
        let current = &old[..1];
        let (kept, stale) = Baseline::regenerate(current, &prev, "grandfathered", false);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].function, "send");
        assert_eq!(
            kept.entries.len(),
            2,
            "stale entry retained without --prune"
        );
        let (pruned, stale) = Baseline::regenerate(current, &prev, "grandfathered", true);
        assert_eq!(stale.len(), 1);
        assert_eq!(pruned.entries.len(), 1, "stale entry dropped with --prune");
        assert_eq!(pruned.entries[0].function, "recv");
    }

    #[test]
    fn json_escapes() {
        let s = json_str("a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let v = parse_json("{\"k\": \"a\\\"b\\\\c\\nd\", \"n\": [1, 2.5], \"t\": true}").unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"findings\": [{}]}").is_err());
        assert!(Baseline::parse("[]").is_err());
    }
}
