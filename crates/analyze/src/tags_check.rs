//! Lint 2: static verification of the message-tag registry.
//!
//! Parses `crates/mpc/src/tags.rs` at the token level, evaluates the
//! `u32` constant expressions (with real Rust operator precedence), and
//! re-proves what the registry's unit tests assert at runtime: the
//! [`REGISTRY`] ranges are in ascending order, pairwise disjoint,
//! contiguous, exhaustively named, and cover `0..=u32::MAX` exactly.
//!
//! Duplicating the proof statically matters because the unit test only
//! runs when `dash-mpc`'s tests run; the analyzer gate re-checks it on
//! every `scripts/check.sh` invocation, including doc-only changes, and
//! fails closed when the module can no longer be parsed (an unevaluable
//! constant is itself a finding).
//!
//! [`REGISTRY`]: ../../dash_mpc/tags/constant.REGISTRY.html

use crate::lexer::{lex, Tok, TokKind};
use crate::Finding;
use std::collections::HashMap;

/// One parsed `TagRange { name, first, last }` literal.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRange {
    pub name: String,
    pub first: u64,
    pub last: u64,
    pub line: usize,
}

/// Checks the registry source; returns findings (empty when sound).
pub fn check_tags_source(rel: &str, src: &str) -> Vec<Finding> {
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut out = Vec::new();
    let mk = |line: usize, message: String| Finding {
        lint: "tag-range",
        file: rel.to_string(),
        line,
        function: String::new(),
        message,
        snippet: src
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
            .to_string(),
    };

    let env = collect_consts(&toks, &mut out, &mk);
    let ranges = collect_registry(&toks, &env, &mut out, &mk);
    let Some(ranges) = ranges else {
        return out;
    };
    if ranges.is_empty() {
        out.push(mk(1, "REGISTRY has no TagRange entries".to_string()));
        return out;
    }
    // Names: non-empty and unique.
    for r in &ranges {
        if r.name.is_empty() {
            out.push(mk(r.line, "registry range has an empty name".to_string()));
        }
        if r.first > r.last {
            out.push(mk(
                r.line,
                format!("range `{}` is inverted: {}..={}", r.name, r.first, r.last),
            ));
        }
    }
    for (i, a) in ranges.iter().enumerate() {
        for b in ranges.iter().skip(i + 1) {
            if a.name == b.name {
                out.push(mk(
                    b.line,
                    format!("duplicate registry range name `{}`", a.name),
                ));
            }
        }
    }
    // Order, disjointness, contiguity, coverage.
    for w in ranges.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.first <= a.last {
            out.push(mk(
                b.line,
                format!(
                    "ranges `{}` ({}..={}) and `{}` ({}..={}) overlap or are out of order",
                    a.name, a.first, a.last, b.name, b.first, b.last
                ),
            ));
        } else if a.last + 1 != b.first {
            out.push(mk(
                b.line,
                format!(
                    "gap between `{}` (ends {}) and `{}` (starts {}): tags {}..={} are unnamed",
                    a.name,
                    a.last,
                    b.name,
                    b.first,
                    a.last + 1,
                    b.first - 1
                ),
            ));
        }
    }
    if let Some(first) = ranges.first() {
        if first.first != 0 {
            out.push(mk(
                first.line,
                format!("registry must start at tag 0, starts at {}", first.first),
            ));
        }
    }
    if let Some(last) = ranges.last() {
        if last.last != u64::from(u32::MAX) {
            out.push(mk(
                last.line,
                format!(
                    "registry must end at u32::MAX, ends at {} — the tag space is not \
                     exhaustively named",
                    last.last
                ),
            ));
        }
    }
    out
}

/// Parses the registry entries only (for reuse in tests); `None` when the
/// `REGISTRY` constant cannot be found.
pub fn parse_registry(src: &str) -> Option<Vec<ParsedRange>> {
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut sink = Vec::new();
    let mk = |_: usize, _: String| Finding {
        lint: "tag-range",
        file: String::new(),
        line: 0,
        function: String::new(),
        message: String::new(),
        snippet: String::new(),
    };
    let env = collect_consts(&toks, &mut sink, &mk);
    collect_registry(&toks, &env, &mut sink, &mk)
}

/// Evaluates every `const NAME: u32 = expr;` to a fixpoint, so forward
/// references between constants resolve just as they do in Rust.
fn collect_consts(
    toks: &[Tok],
    out: &mut Vec<Finding>,
    mk: &impl Fn(usize, String) -> Finding,
) -> HashMap<String, u64> {
    // Gather declarations first.
    struct Decl {
        name: String,
        line: usize,
        start: usize,
        end: usize,
    }
    let mut decls: Vec<Decl> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("const")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && !t.is_ident("fn"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("u32"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('='))
        {
            let start = i + 5;
            let end = (start..toks.len())
                .find(|&k| toks[k].is_punct(';'))
                .unwrap_or(toks.len());
            decls.push(Decl {
                name: toks[i + 1].text.clone(),
                line: toks[i + 1].line,
                start,
                end,
            });
            i = end;
            continue;
        }
        i += 1;
    }
    // Fixpoint: re-try unevaluated declarations until a full pass makes
    // no progress (handles any forward-reference order; cycles fail).
    let mut env = HashMap::new();
    let mut resolved = vec![false; decls.len()];
    loop {
        let mut progressed = false;
        for (k, d) in decls.iter().enumerate() {
            if resolved[k] {
                continue;
            }
            if let Some(v) = eval(&toks[d.start..d.end], &env) {
                if v <= u64::from(u32::MAX) {
                    env.insert(d.name.clone(), v);
                } else {
                    out.push(mk(
                        d.line,
                        format!("const `{}` evaluates to {v}, which overflows u32", d.name),
                    ));
                }
                resolved[k] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for (k, d) in decls.iter().enumerate() {
        if !resolved[k] {
            out.push(mk(
                d.line,
                format!(
                    "cannot statically evaluate const `{}`; keep registry constants to \
                     literals, +, -, *, /, <<, >>, u32::MAX and other registry constants",
                    d.name
                ),
            ));
        }
    }
    env
}

/// Parses the `REGISTRY` array literal into evaluated ranges.
fn collect_registry(
    toks: &[Tok],
    env: &HashMap<String, u64>,
    out: &mut Vec<Finding>,
    mk: &impl Fn(usize, String) -> Finding,
) -> Option<Vec<ParsedRange>> {
    // Find `REGISTRY` followed by `:` (its const declaration).
    let reg = (0..toks.len()).find(|&i| {
        toks[i].is_ident("REGISTRY") && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
    });
    let Some(reg) = reg else {
        out.push(mk(
            1,
            "no `REGISTRY: [TagRange; N]` constant found in the tags module".to_string(),
        ));
        return None;
    };
    let end = (reg..toks.len())
        .find(|&k| toks[k].is_punct(';') && brace_free(&toks[reg..k]))
        .unwrap_or(toks.len());
    let mut ranges = Vec::new();
    let mut i = reg;
    while i < end {
        if toks[i].is_ident("TagRange") && toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            let line = toks[i].line;
            let close = matching_brace(toks, i + 1, end);
            let mut name = None;
            let mut first = None;
            let mut last = None;
            let mut k = i + 2;
            while k < close {
                if toks[k].kind == TokKind::Ident
                    && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                {
                    let field = toks[k].text.clone();
                    let vstart = k + 2;
                    let vend = field_end(toks, vstart, close);
                    match field.as_str() {
                        "name" => {
                            name = toks[vstart..vend]
                                .iter()
                                .find(|t| t.kind == TokKind::Str)
                                .map(|t| t.text.clone());
                        }
                        "first" => first = eval(&toks[vstart..vend], env),
                        "last" => last = eval(&toks[vstart..vend], env),
                        _ => {}
                    }
                    k = vend;
                    continue;
                }
                k += 1;
            }
            match (name, first, last) {
                (Some(name), Some(first), Some(last)) => ranges.push(ParsedRange {
                    name,
                    first,
                    last,
                    line,
                }),
                _ => out.push(mk(
                    line,
                    "cannot statically evaluate a TagRange entry (name/first/last)".to_string(),
                )),
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    Some(ranges)
}

fn brace_free(toks: &[Tok]) -> bool {
    let mut depth = 0i64;
    for t in toks {
        if t.is_punct('{') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(']') {
            depth -= 1;
        }
    }
    depth <= 0
}

fn matching_brace(toks: &[Tok], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < limit {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit
}

/// End of a struct-literal field value: the `,` or `}` at depth 0.
fn field_end(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            return i;
        }
        i += 1;
    }
    limit
}

/// Evaluates an integer const expression with Rust precedence:
/// `*`/`/` bind tighter than `+`/`-`, which bind tighter than `<<`/`>>`.
/// Supports parenthesized subexpressions, `u32::MAX`, underscored and
/// hex/octal/binary literals with type suffixes, and named constants.
pub fn eval(toks: &[Tok], env: &HashMap<String, u64>) -> Option<u64> {
    let mut pos = 0usize;
    let v = parse_shift(toks, &mut pos, env)?;
    // Trailing tokens (e.g. an unsupported operator) make the result
    // unreliable: fail closed.
    while pos < toks.len() {
        if toks[pos].is_punct(',') {
            pos += 1;
            continue;
        }
        return None;
    }
    Some(v)
}

fn parse_shift(toks: &[Tok], pos: &mut usize, env: &HashMap<String, u64>) -> Option<u64> {
    let mut acc = parse_add(toks, pos, env)?;
    loop {
        let (shl, shr) = (
            toks.get(*pos).is_some_and(|t| t.is_punct('<'))
                && toks.get(*pos + 1).is_some_and(|t| t.is_punct('<')),
            toks.get(*pos).is_some_and(|t| t.is_punct('>'))
                && toks.get(*pos + 1).is_some_and(|t| t.is_punct('>')),
        );
        if !shl && !shr {
            return Some(acc);
        }
        *pos += 2;
        let rhs = parse_add(toks, pos, env)?;
        if rhs >= 64 {
            return None;
        }
        acc = if shl {
            acc.checked_shl(rhs as u32)?
        } else {
            acc.checked_shr(rhs as u32)?
        };
    }
}

fn parse_add(toks: &[Tok], pos: &mut usize, env: &HashMap<String, u64>) -> Option<u64> {
    let mut acc = parse_mul(toks, pos, env)?;
    loop {
        let t = toks.get(*pos);
        if t.is_some_and(|t| t.is_punct('+')) {
            *pos += 1;
            acc = acc.checked_add(parse_mul(toks, pos, env)?)?;
        } else if t.is_some_and(|t| t.is_punct('-')) {
            *pos += 1;
            acc = acc.checked_sub(parse_mul(toks, pos, env)?)?;
        } else {
            return Some(acc);
        }
    }
}

fn parse_mul(toks: &[Tok], pos: &mut usize, env: &HashMap<String, u64>) -> Option<u64> {
    let mut acc = parse_primary(toks, pos, env)?;
    loop {
        let t = toks.get(*pos);
        if t.is_some_and(|t| t.is_punct('*')) {
            *pos += 1;
            acc = acc.checked_mul(parse_primary(toks, pos, env)?)?;
        } else if t.is_some_and(|t| t.is_punct('/')) {
            *pos += 1;
            let d = parse_primary(toks, pos, env)?;
            acc = acc.checked_div(d)?;
        } else {
            return Some(acc);
        }
    }
}

fn parse_primary(toks: &[Tok], pos: &mut usize, env: &HashMap<String, u64>) -> Option<u64> {
    let t = toks.get(*pos)?;
    if t.is_punct('(') {
        *pos += 1;
        let v = parse_shift(toks, pos, env)?;
        if !toks.get(*pos).is_some_and(|t| t.is_punct(')')) {
            return None;
        }
        *pos += 1;
        return Some(v);
    }
    if t.kind == TokKind::Number {
        *pos += 1;
        return parse_number(&t.text);
    }
    if t.kind == TokKind::Ident {
        // Path: `u32::MAX`, or a cast suffix `NAME as u64` is rejected.
        if toks.get(*pos + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(*pos + 2).is_some_and(|n| n.is_punct(':'))
        {
            let base = &t.text;
            let member = toks.get(*pos + 3)?;
            *pos += 4;
            return match (base.as_str(), member.text.as_str()) {
                ("u32", "MAX") => Some(u64::from(u32::MAX)),
                ("u32", "MIN") => Some(0),
                _ => None,
            };
        }
        *pos += 1;
        return env.get(&t.text).copied();
    }
    None
}

/// Parses `1_000`, `0xFF`, `0b1010`, `0o77`, with optional type suffix.
fn parse_number(s: &str) -> Option<u64> {
    let clean: String = s.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = clean.strip_prefix("0x").or(clean.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = clean.strip_prefix("0b").or(clean.strip_prefix("0B")) {
        (2, rest)
    } else if let Some(rest) = clean.strip_prefix("0o").or(clean.strip_prefix("0O")) {
        (8, rest)
    } else {
        (10, clean.as_str())
    };
    // Strip a type suffix (u32, u64, usize…): keep the leading digits
    // valid in this radix.
    let end = digits
        .char_indices()
        .find(|&(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> Option<u64> {
        let toks: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let mut env = HashMap::new();
        env.insert("BASE".to_string(), 1u64 << 20);
        env.insert("STRIDE".to_string(), 1u64 << 10);
        eval(&toks, &env)
    }

    #[test]
    fn precedence_matches_rust() {
        assert_eq!(ev("1 + 2 * 3"), Some(7));
        assert_eq!(ev("1 << 20"), Some(1 << 20));
        // Shifts bind looser than +: `1 << 2 + 3` is `1 << 5` in Rust.
        assert_eq!(ev("1 << 2 + 3"), Some(32));
        assert_eq!(
            ev("(u32::MAX - BASE) / STRIDE - 1"),
            Some((0xFFFF_FFFFu64 - (1 << 20)) / 1024 - 1)
        );
        assert_eq!(
            ev("BASE + (4 + 1) * STRIDE - 1"),
            Some((1 << 20) + 5 * 1024 - 1)
        );
    }

    #[test]
    fn literals_with_radix_and_suffix() {
        assert_eq!(ev("0xFF"), Some(255));
        assert_eq!(ev("0b101"), Some(5));
        assert_eq!(ev("1_000u32"), Some(1000));
        assert_eq!(ev("999"), Some(999));
    }

    #[test]
    fn unknown_names_fail_closed() {
        assert_eq!(ev("MYSTERY + 1"), None);
        assert_eq!(ev("1 %% 2"), None);
    }

    const GOOD: &str = r#"
pub const A_LAST: u32 = 9;
pub const B_FIRST: u32 = 10;
pub const REGISTRY: [TagRange; 2] = [
    TagRange { name: "low", first: 0, last: A_LAST },
    TagRange { name: "high", first: B_FIRST, last: u32::MAX },
];
"#;

    #[test]
    fn sound_registry_passes() {
        let f = check_tags_source("tags.rs", GOOD);
        assert!(f.is_empty(), "{f:?}");
        let ranges = parse_registry(GOOD).unwrap();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[1].name, "high");
        assert_eq!(ranges[1].last, u64::from(u32::MAX));
    }

    #[test]
    fn overlap_gap_and_coverage_detected() {
        let overlap = GOOD.replace("first: B_FIRST", "first: 5");
        assert!(check_tags_source("tags.rs", &overlap)
            .iter()
            .any(|f| f.message.contains("overlap")));
        let gap = GOOD.replace("first: B_FIRST", "first: 12");
        assert!(check_tags_source("tags.rs", &gap)
            .iter()
            .any(|f| f.message.contains("gap")));
        let short = GOOD.replace("last: u32::MAX", "last: 100");
        assert!(check_tags_source("tags.rs", &short)
            .iter()
            .any(|f| f.message.contains("u32::MAX")));
        let dup = GOOD.replace("name: \"high\"", "name: \"low\"");
        assert!(check_tags_source("tags.rs", &dup)
            .iter()
            .any(|f| f.message.contains("duplicate")));
    }

    #[test]
    fn missing_registry_is_a_finding() {
        let f = check_tags_source("tags.rs", "pub const X_TAG: u32 = 1;");
        assert!(f.iter().any(|f| f.message.contains("REGISTRY")));
    }
}
