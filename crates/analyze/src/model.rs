//! File model: function spans, test regions, and suppression pragmas
//! recovered from the token stream by brace tracking — plus the parsed
//! AST (`ast` field) that the taint and constant-time passes walk.
//!
//! The token-level view (`code`, `fns`, `enclosing_fn`, …) remains the
//! interface for the cheap lints (disclosure-completeness, panic-free,
//! secure-indexing, tag-range); the AST passes use `ast` together with
//! the line-based helpers `allowed_line` and `line_in_test`.

use crate::ast::Item;
use crate::lexer::{lex, Tok, TokKind};
use crate::parser;

/// A function's span in the token stream (indices into the *code* view,
/// i.e. the comment-free token list).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Index of the opening `{` in the code view.
    pub body_start: usize,
    /// Index of the closing `}` in the code view.
    pub body_end: usize,
    pub start_line: usize,
    pub end_line: usize,
    /// `#[test]` function or nested inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// An inline `// dash-analyze::allow(<lint>): reason` suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub lint: String,
    pub line: usize,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path (forward slashes).
    pub rel: String,
    /// Comment-free token stream — what the lints scan.
    pub code: Vec<Tok>,
    pub fns: Vec<FnSpan>,
    pub pragmas: Vec<Pragma>,
    /// Line ranges (inclusive) of `#[cfg(test)]` modules.
    pub test_mod_lines: Vec<(usize, usize)>,
    /// Trimmed source lines, for finding snippets (index = line − 1).
    pub lines: Vec<String>,
    /// Parsed AST of the same comment-free token stream.
    pub ast: Vec<Item>,
}

impl FileModel {
    /// Lexes and models `src`.
    pub fn parse(rel: &str, src: &str) -> FileModel {
        let all = lex(src);
        let mut pragmas = Vec::new();
        for t in &all {
            if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                let body = t.text.trim().trim_start_matches('!').trim();
                if let Some(rest) = body.strip_prefix("dash-analyze::allow(") {
                    if let Some(end) = rest.find(')') {
                        pragmas.push(Pragma {
                            lint: rest[..end].trim().to_string(),
                            line: t.line,
                        });
                    }
                }
            }
        }
        let code: Vec<Tok> = all
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let (fns, test_mod_lines) = scan_items(&code);
        let ast = parser::parse_items(&code);
        FileModel {
            rel: rel.to_string(),
            code,
            fns,
            pragmas,
            test_mod_lines,
            lines: src.lines().map(|l| l.trim().to_string()).collect(),
            ast,
        }
    }

    /// The trimmed source text of `line` (1-based), for snippets.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// The innermost function whose body contains code-token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start <= idx && idx <= f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }

    /// Whether code-token `idx` is inside test-only code (a `#[test]` fn
    /// or a `#[cfg(test)]` module).
    pub fn in_test(&self, idx: usize) -> bool {
        if self.enclosing_fn(idx).is_some_and(|f| f.is_test) {
            return true;
        }
        let line = self.code.get(idx).map_or(0, |t| t.line);
        self.test_mod_lines
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether source `line` (1-based) is inside test-only code.
    pub fn line_in_test(&self, line: usize) -> bool {
        if self
            .fns
            .iter()
            .any(|f| f.is_test && f.start_line <= line && line <= f.end_line)
        {
            return true;
        }
        self.test_mod_lines
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Line-based variant of [`FileModel::allowed`], for the AST passes:
    /// whether a pragma suppresses `lint` at source `line` (1-based).
    pub fn allowed_line(&self, lint: &str, line: usize) -> bool {
        let enclosing = self
            .fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line);
        let Some(f) = enclosing else {
            return self
                .pragmas
                .iter()
                .any(|p| p.lint == lint && p.line <= line && line - p.line <= 5);
        };
        self.pragmas.iter().any(|p| {
            p.lint == lint
                && ((f.start_line <= p.line && p.line <= f.end_line)
                    || (p.line < f.start_line
                        && !self
                            .fns
                            .iter()
                            .any(|g| g.start_line > p.line && g.start_line < f.start_line)))
        })
    }

    /// Whether a pragma suppresses `lint` for the function around code
    /// token `idx`. A pragma applies to the function whose line span
    /// contains it, or — when written above an item — to the first
    /// function starting after the pragma line.
    pub fn allowed(&self, lint: &str, idx: usize) -> bool {
        let Some(f) = self.enclosing_fn(idx) else {
            // Item-level code: accept a pragma anywhere above it within
            // the preceding 5 lines.
            let line = self.code.get(idx).map_or(0, |t| t.line);
            return self
                .pragmas
                .iter()
                .any(|p| p.lint == lint && p.line <= line && line - p.line <= 5);
        };
        self.pragmas.iter().any(|p| {
            p.lint == lint
                && ((f.start_line <= p.line && p.line <= f.end_line)
                    || (p.line < f.start_line
                        && !self
                            .fns
                            .iter()
                            .any(|g| g.start_line > p.line && g.start_line < f.start_line)))
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    Plain,
    Fn(usize),
    TestMod,
}

/// Single pass over the code tokens: tracks braces, attributes, `fn` and
/// `mod` items; returns function spans and test-module line ranges.
fn scan_items(code: &[Tok]) -> (Vec<FnSpan>, Vec<(usize, usize)>) {
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut test_mods: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut test_depth = 0usize;
    let mut attr_is_test = false;
    let mut pending_fn: Option<(String, usize, bool)> = None;
    let mut pending_test_mod = false;
    let mut mod_start_line = 0usize;
    // Paren/bracket nesting, so the `;` inside an array type in a
    // signature (`fn f(t: &[u64; 8])`) doesn't cancel the pending fn.
    let mut pdepth = 0usize;
    // Angle-bracket nesting between `fn` and its body, arrow-aware (the
    // `>` of `->` is not a closer), so a const-generic brace argument
    // (`-> Table<{N >> 1}>`) is not taken for the fn body.
    let mut adepth = 0usize;

    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute: collect idents to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < code.len() {
                let a = &code[j];
                if a.is_punct('[') {
                    depth += 1;
                } else if a.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident && a.text == "test" {
                    has_test = true;
                }
                j += 1;
            }
            attr_is_test |= has_test;
            i = j + 1;
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending_fn = Some((name.text.clone(), t.line, attr_is_test || test_depth > 0));
                }
                attr_is_test = false;
                adepth = 0;
            }
            TokKind::Ident if t.text == "mod" => {
                pending_test_mod = attr_is_test;
                mod_start_line = t.line;
                attr_is_test = false;
            }
            TokKind::Punct if t.is_punct('(') || t.is_punct('[') => {
                pdepth += 1;
            }
            TokKind::Punct if t.is_punct(')') || t.is_punct(']') => {
                pdepth = pdepth.saturating_sub(1);
            }
            TokKind::Punct if t.is_punct(';') && pdepth == 0 => {
                // Trait method signature or `mod foo;` — no body.
                pending_fn = None;
                pending_test_mod = false;
                adepth = 0;
            }
            TokKind::Punct if t.is_punct('<') && pending_fn.is_some() => {
                adepth += 1;
            }
            // The `>` of `->` closes nothing (the guard skips it; no
            // later arm matches a bare `>`, so falling through is inert).
            TokKind::Punct
                if t.is_punct('>')
                    && pending_fn.is_some()
                    && !(i > 0 && code[i - 1].is_punct('-')) =>
            {
                adepth = adepth.saturating_sub(1);
            }
            TokKind::Punct if t.is_punct('{') && pending_fn.is_some() && adepth > 0 => {
                // Const-generic argument brace inside the signature
                // (`Table<{N >> 1}>`): skip to its close, it is not the
                // fn body. (The `>>` inside decrements `adepth` harmlessly
                // — it saturates and the real closer re-saturates at 0.)
                i = crate::lints::matching(code, i, '{', '}');
            }
            TokKind::Punct if t.is_punct('{') => {
                adepth = 0;
                if let Some((name, line, is_test)) = pending_fn.take() {
                    fns.push(FnSpan {
                        name,
                        body_start: i,
                        body_end: code.len().saturating_sub(1),
                        start_line: line,
                        end_line: t.line,
                        is_test,
                    });
                    stack.push(Frame::Fn(fns.len() - 1));
                } else if pending_test_mod {
                    pending_test_mod = false;
                    test_depth += 1;
                    test_mods.push((mod_start_line, usize::MAX));
                    stack.push(Frame::TestMod);
                } else {
                    stack.push(Frame::Plain);
                }
            }
            TokKind::Punct if t.is_punct('}') => match stack.pop() {
                Some(Frame::Fn(k)) => {
                    if let Some(f) = fns.get_mut(k) {
                        f.body_end = i;
                        f.end_line = t.line;
                    }
                }
                Some(Frame::TestMod) => {
                    test_depth = test_depth.saturating_sub(1);
                    if let Some(m) = test_mods.iter_mut().rev().find(|m| m.1 == usize::MAX) {
                        m.1 = t.line;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    for m in &mut test_mods {
        if m.1 == usize::MAX {
            m.1 = code.last().map_or(m.0, |t| t.line);
        }
    }
    (fns, test_mods)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
// dash-analyze::allow(panic-free): demo pragma above item
fn top() { inner_call(); }

fn plain(v: Vec<u32>) -> u32 {
    // dash-analyze::allow(secure-indexing): demo inline
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn a_test() { assert!(true); }
}
"#;

    #[test]
    fn functions_and_tests_found() {
        let m = FileModel::parse("x.rs", SRC);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "plain", "a_test"]);
        assert!(m.fns[2].is_test);
        assert!(!m.fns[0].is_test);
        assert_eq!(m.test_mod_lines.len(), 1);
    }

    #[test]
    fn pragmas_resolve_to_functions() {
        let m = FileModel::parse("x.rs", SRC);
        let top = m.fns.iter().find(|f| f.name == "top").unwrap();
        let plain = m.fns.iter().find(|f| f.name == "plain").unwrap();
        assert!(m.allowed("panic-free", top.body_start + 1));
        assert!(!m.allowed("panic-free", plain.body_start + 1));
        assert!(m.allowed("secure-indexing", plain.body_start + 1));
        assert!(!m.allowed("secure-indexing", top.body_start + 1));
    }

    #[test]
    fn array_type_semicolon_in_signature_keeps_fn() {
        // Regression: the `;` inside `[u64; 8]` used to cancel the
        // pending fn, hiding the function from every lint.
        let m = FileModel::parse(
            "x.rs",
            "fn lut(t: &[u64; 8]) -> [u8; 4] { body() }\nfn after() {}",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["lut", "after"]);
    }

    #[test]
    fn const_generic_brace_in_signature_is_not_the_body() {
        // Regression: the `{` of a const-generic argument used to open
        // the fn body, so the body span ended at the argument's `}` and
        // everything after escaped the lints.
        let m = FileModel::parse(
            "x.rs",
            "fn lut<const N: usize>() -> Table<{ N >> 1 }> { body() }\nfn after() {}",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["lut", "after"]);
        assert_eq!(m.fns[0].end_line, 1);
        assert_eq!(m.fns[1].start_line, 2);
    }

    #[test]
    fn nested_generics_where_clause_and_impl_trait_params() {
        // `>>` closers, an `impl Fn() -> u64` arrow in the parameter
        // list, and a where-clause must all leave the spans intact.
        let src = "fn f<T: Iterator<Item = Vec<u64>>>(g: impl Fn() -> u64, v: Vec<Vec<u64>>) \
                   -> bool where T: Clone { g() > 0 }\nfn tail() { after(); }";
        let m = FileModel::parse("x.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "tail"]);
        assert_eq!(m.fns[0].start_line, 1);
        assert_eq!(m.fns[1].start_line, 2);
        // Both bodies are properly delimited: token in f's body resolves
        // to f, token in tail's body to tail.
        assert_eq!(
            m.enclosing_fn(m.fns[0].body_start + 1).map(|x| &*x.name),
            Some("f")
        );
        assert_eq!(
            m.enclosing_fn(m.fns[1].body_start + 1).map(|x| &*x.name),
            Some("tail")
        );
    }

    #[test]
    fn in_test_detects_cfg_test_module() {
        let m = FileModel::parse("x.rs", SRC);
        let a = m.fns.iter().find(|f| f.name == "a_test").unwrap();
        assert!(m.in_test(a.body_start + 1));
        let top = m.fns.iter().find(|f| f.name == "top").unwrap();
        assert!(!m.in_test(top.body_start + 1));
    }
}
