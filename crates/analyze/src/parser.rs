//! Hand-rolled recursive-descent parser from the lexer's token stream to
//! the lossy AST in `ast.rs`.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** Every loop consumes at least one token
//!    or breaks; malformed input degrades to [`ExprKind::Unknown`], not
//!    an error. The analyzer is itself a panic-free gate.
//! 2. **Faithful where the passes look.** Items, signatures, bodies,
//!    `let`/`match` bindings, field projections, closures, and calls are
//!    modeled structurally.
//! 3. **Lossy everywhere else.** Lifetimes, bounds, visibility, and
//!    attribute contents (beyond `test`/`cfg(test)`/`derive`) are
//!    skipped. Known ambiguities inherited from a single-char punct
//!    stream (`a | |x| x`, `a < <T>::f()`) resolve toward the common
//!    reading.

use crate::ast::{
    Arm, BinOp, Block, Expr, ExprKind, Fun, ImplBlock, Item, ModDef, Pat, Stmt, StructDef, Ty,
};
use crate::lexer::{Tok, TokKind};

/// Parses a comment-free token stream into items.
pub fn parse_items(code: &[Tok]) -> Vec<Item> {
    let mut p = Parser { t: code, pos: 0 };
    p.items(false)
}

/// Parses a standalone expression from a token slice (used for macro
/// argument segments). Leftover tokens are ignored.
fn parse_expr_slice(code: &[Tok]) -> Option<Expr> {
    if code.is_empty() {
        return None;
    }
    let mut p = Parser { t: code, pos: 0 };
    Some(p.expr(false))
}

#[derive(Default)]
struct Attrs {
    test: bool,
    cfg_test: bool,
    derives: Vec<String>,
}

struct Parser<'a> {
    t: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    // ----- token helpers ---------------------------------------------

    fn tok(&self) -> Option<&'a Tok> {
        self.t.get(self.pos)
    }

    fn nth(&self, k: usize) -> Option<&'a Tok> {
        self.t.get(self.pos + k)
    }

    fn is_p(&self, c: char) -> bool {
        self.tok().is_some_and(|t| t.is_punct(c))
    }

    fn nth_is_p(&self, k: usize, c: char) -> bool {
        self.nth(k).is_some_and(|t| t.is_punct(c))
    }

    fn is_id(&self, s: &str) -> bool {
        self.tok().is_some_and(|t| t.is_ident(s))
    }

    fn is_ident_tok(&self) -> bool {
        self.tok().is_some_and(|t| t.kind == TokKind::Ident)
    }

    fn line(&self) -> usize {
        self.tok()
            .map_or(self.t.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat_p(&mut self, c: char) -> bool {
        if self.is_p(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_id(&mut self, s: &str) -> bool {
        if self.is_id(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.t.len()
    }

    /// Skips a balanced delimiter group; `pos` must sit on an opener.
    /// Tracks all three bracket kinds so `)` inside `{}` doesn't confuse
    /// the count. Collects idents and string literals if sinks given.
    fn skip_balanced(&mut self, idents: Option<&mut Vec<String>>, strs: Option<&mut Vec<String>>) {
        let mut depth = 0usize;
        let mut id_sink = idents;
        let mut str_sink = strs;
        while let Some(t) = self.tok() {
            match t.kind {
                TokKind::Punct => {
                    let c = t.text.as_bytes().first().copied().unwrap_or(0);
                    if matches!(c, b'(' | b'[' | b'{') {
                        depth += 1;
                    } else if matches!(c, b')' | b']' | b'}') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.bump();
                            return;
                        }
                    }
                }
                TokKind::Ident => {
                    if let Some(sink) = id_sink.as_deref_mut() {
                        sink.push(t.text.clone());
                    }
                }
                TokKind::Str => {
                    if let Some(sink) = str_sink.as_deref_mut() {
                        sink.push(t.text.clone());
                    }
                }
                _ => {}
            }
            self.bump();
            if depth == 0 {
                // Wasn't on an opener — give up after one token.
                return;
            }
        }
    }

    /// Skips a generic-argument group; `pos` must sit on `<`. Understands
    /// `->` (its `>` is not a closer), nested delimiters, and
    /// const-generic braces.
    fn skip_angles(&mut self, idents: Option<&mut Vec<String>>) {
        let mut depth = 0usize;
        let mut sink = idents;
        while let Some(t) = self.tok() {
            if t.is_punct('<') {
                depth += 1;
                self.bump();
            } else if t.is_punct('>') {
                depth = depth.saturating_sub(1);
                self.bump();
                if depth == 0 {
                    return;
                }
            } else if t.is_punct('-') && self.nth_is_p(1, '>') {
                self.bump();
                self.bump();
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.skip_balanced(sink.as_deref_mut(), None);
            } else {
                if t.kind == TokKind::Ident {
                    if let Some(s) = sink.as_deref_mut() {
                        s.push(t.text.clone());
                    }
                }
                self.bump();
            }
            if depth == 0 {
                return;
            }
        }
    }

    /// Consumes `#[...]` / `#![...]` attributes, classifying the bits the
    /// passes care about.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.is_p('#') {
            let mut k = 1;
            if self.nth_is_p(1, '!') {
                k = 2;
            }
            if !self.nth_is_p(k, '[') {
                break;
            }
            self.bump();
            if k == 2 {
                self.bump();
            }
            let mut ids = Vec::new();
            self.skip_balanced(Some(&mut ids), None);
            let has = |s: &str| ids.iter().any(|i| i == s);
            if has("derive") {
                out.derives
                    .extend(ids.iter().filter(|i| *i != "derive").cloned());
            }
            if has("test") {
                out.test = true;
                if has("cfg") {
                    out.cfg_test = true;
                }
            }
        }
        out
    }

    // ----- types -----------------------------------------------------

    /// Parses a type, stopping at any token that cannot continue one
    /// (`,` `)` `;` `=` `>` `{` `]` `where` `for` …).
    fn ty(&mut self) -> Ty {
        let mut ty = self.ty_component();
        // Trait bounds: `A + B + 'a`.
        while self.is_p('+') {
            self.bump();
            if self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
                continue;
            }
            let more = self.ty_component();
            ty.idents.extend(more.idents);
        }
        ty
    }

    fn ty_component(&mut self) -> Ty {
        // Prefixes that don't change the head.
        loop {
            if self.is_p('&') {
                self.bump();
                if self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                self.eat_id("mut");
            } else if self.is_p('*') {
                self.bump();
                let _ = self.eat_id("const") || self.eat_id("mut");
            } else if self.is_id("dyn") || self.is_id("impl") {
                self.bump();
            } else if self.is_id("for") && self.nth_is_p(1, '<') {
                self.bump();
                self.skip_angles(None);
            } else if self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            } else {
                break;
            }
        }
        if self.is_p('(') {
            // Tuple (or parenthesized) type.
            self.bump();
            let mut args = Vec::new();
            let mut idents = Vec::new();
            let mut saw_comma = false;
            while !self.at_end() && !self.is_p(')') {
                let before = self.pos;
                let el = self.ty();
                idents.extend(el.idents.iter().cloned());
                args.push(el);
                saw_comma |= self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p(')');
            if args.len() == 1 && !saw_comma {
                return args.into_iter().next().unwrap_or_default();
            }
            return Ty {
                head: String::new(),
                args,
                idents,
            };
        }
        if self.is_p('[') {
            // Slice / array.
            self.bump();
            let el = self.ty();
            let mut idents = el.idents.clone();
            if self.eat_p(';') {
                // Const length expression: skip to `]` at depth 0.
                while let Some(t) = self.tok() {
                    if t.is_punct(']') {
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        self.skip_balanced(Some(&mut idents), None);
                    } else {
                        if t.kind == TokKind::Ident {
                            idents.push(t.text.clone());
                        }
                        self.bump();
                    }
                }
            }
            self.eat_p(']');
            return Ty {
                head: String::new(),
                args: vec![el],
                idents,
            };
        }
        if self.is_id("fn") {
            // Fn-pointer type.
            self.bump();
            let mut idents = vec!["fn".to_string()];
            if self.is_p('(') {
                self.skip_balanced(Some(&mut idents), None);
            }
            if self.is_p('-') && self.nth_is_p(1, '>') {
                self.bump();
                self.bump();
                let ret = self.ty();
                idents.extend(ret.idents);
            }
            return Ty {
                head: "fn".to_string(),
                args: Vec::new(),
                idents,
            };
        }
        if !self.is_ident_tok() && !self.is_p(':') {
            return Ty::default();
        }
        // Path type: `a::b::C<...>`, `Fn(..) -> R` sugar on any segment.
        let mut segs: Vec<String> = Vec::new();
        let mut idents = Vec::new();
        let mut args: Vec<Ty> = Vec::new();
        // Leading `::`.
        if self.is_p(':') && self.nth_is_p(1, ':') {
            self.bump();
            self.bump();
        }
        while let Some(t) = self.tok() {
            if t.kind != TokKind::Ident {
                break;
            }
            if t.text == "where" || (t.text == "for" && !self.nth_is_p(1, '<')) || t.text == "as" {
                break;
            }
            segs.push(t.text.clone());
            idents.push(t.text.clone());
            self.bump();
            if self.is_p('(') {
                // `Fn(args) -> Ret` sugar.
                self.skip_balanced(Some(&mut idents), None);
                if self.is_p('-') && self.nth_is_p(1, '>') {
                    self.bump();
                    self.bump();
                    let ret = self.ty();
                    idents.extend(ret.idents.iter().cloned());
                    args.push(ret);
                }
                break;
            }
            if self.is_p('<') {
                let (a, ids) = self.generic_args();
                args = a;
                idents.extend(ids);
            }
            if self.is_p(':') && self.nth_is_p(1, ':') {
                self.bump();
                self.bump();
                // A later segment's generic args win; reset.
                args.clear();
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return Ty::default();
        }
        Ty {
            head: segs.last().cloned().unwrap_or_default(),
            args,
            idents,
        }
    }

    /// Parses `<...>` generic arguments; `pos` sits on `<`. Returns the
    /// positional type args and every ident seen.
    fn generic_args(&mut self) -> (Vec<Ty>, Vec<String>) {
        let mut args = Vec::new();
        let mut idents = Vec::new();
        self.bump(); // `<`
        while let Some(t) = self.tok() {
            if t.is_punct('>') {
                self.bump();
                break;
            }
            if t.is_punct(',') {
                self.bump();
                continue;
            }
            if t.kind == TokKind::Lifetime {
                self.bump();
                continue;
            }
            if t.kind == TokKind::Ident && self.nth_is_p(1, '=') {
                // Associated binding `Item = T`.
                idents.push(t.text.clone());
                self.bump();
                self.bump();
                let ty = self.ty();
                idents.extend(ty.idents);
                continue;
            }
            if t.is_punct('{') {
                // Const-generic expression.
                self.skip_balanced(Some(&mut idents), None);
                continue;
            }
            if t.kind == TokKind::Number || t.is_ident("true") || t.is_ident("false") {
                self.bump();
                continue;
            }
            let before = self.pos;
            let ty = self.ty();
            idents.extend(ty.idents.iter().cloned());
            args.push(ty);
            if self.pos == before {
                self.bump();
            }
        }
        (args, idents)
    }

    // ----- patterns --------------------------------------------------

    fn pat(&mut self) -> Pat {
        let first = self.pat_single();
        if !self.is_p('|') || self.nth_is_p(1, '|') {
            return first;
        }
        // Or-pattern: union of alternatives' bindings.
        let mut alts = vec![first];
        while self.is_p('|') && !self.nth_is_p(1, '|') {
            self.bump();
            alts.push(self.pat_single());
        }
        Pat::Tuple(alts)
    }

    fn pat_single(&mut self) -> Pat {
        loop {
            if self.eat_id("ref") || self.eat_id("mut") || self.eat_id("box") {
                continue;
            }
            if self.is_p('&') {
                self.bump();
                continue;
            }
            break;
        }
        let Some(t) = self.tok() else {
            return Pat::Other;
        };
        match t.kind {
            TokKind::Ident if t.text == "_" => {
                self.bump();
                Pat::Wild
            }
            TokKind::Number | TokKind::Str | TokKind::Char => {
                self.bump();
                self.pat_range_tail();
                Pat::Other
            }
            TokKind::Punct if t.is_punct('-') => {
                self.bump();
                if self.tok().is_some_and(|t| t.kind == TokKind::Number) {
                    self.bump();
                }
                self.pat_range_tail();
                Pat::Other
            }
            TokKind::Punct if t.is_punct('(') => {
                self.bump();
                let ps = self.pat_list(')');
                Pat::Tuple(ps)
            }
            TokKind::Punct if t.is_punct('[') => {
                self.bump();
                let ps = self.pat_list(']');
                Pat::Tuple(ps)
            }
            TokKind::Punct if t.is_punct('.') => {
                // `..` rest pattern.
                self.bump();
                self.eat_p('.');
                self.eat_p('=');
                Pat::Other
            }
            TokKind::Ident => {
                let mut segs = vec![t.text.clone()];
                self.bump();
                while self.is_p(':') && self.nth_is_p(1, ':') {
                    self.bump();
                    self.bump();
                    if self.is_p('<') {
                        self.skip_angles(None);
                    }
                    if let Some(n) = self.tok().filter(|n| n.kind == TokKind::Ident) {
                        segs.push(n.text.clone());
                        self.bump();
                    } else {
                        break;
                    }
                }
                let name = segs.last().cloned().unwrap_or_default();
                if self.is_p('(') {
                    self.bump();
                    let ps = self.pat_list(')');
                    return Pat::TupleStruct(name, ps);
                }
                if self.is_p('{') {
                    self.bump();
                    let mut fields = Vec::new();
                    while !self.at_end() && !self.is_p('}') {
                        let before = self.pos;
                        if self.is_p('.') {
                            // `..` rest.
                            self.bump();
                            self.eat_p('.');
                        } else if let Some(f) =
                            self.tok().filter(|f| f.kind == TokKind::Ident).cloned()
                        {
                            self.bump();
                            if self.eat_p(':') {
                                let p = self.pat();
                                fields.push((f.text.clone(), p));
                            } else {
                                fields.push((f.text.clone(), Pat::Ident(f.text.clone())));
                            }
                        }
                        self.eat_p(',');
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_p('}');
                    return Pat::Struct(name, fields);
                }
                if segs.len() > 1 {
                    self.pat_range_tail();
                    return Pat::Other;
                }
                // `n @ sub-pattern` keeps the binding.
                if self.is_p('@') {
                    self.bump();
                    let _ = self.pat_single();
                    return Pat::Ident(name);
                }
                if self.is_p('.') && self.nth_is_p(1, '.') {
                    self.pat_range_tail();
                    return Pat::Other;
                }
                // Heuristic: lowercase-initial single segment binds;
                // uppercase is a unit variant / const (`None`, `MAX`).
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    Pat::Ident(name)
                } else {
                    Pat::Other
                }
            }
            _ => {
                self.bump();
                Pat::Other
            }
        }
    }

    /// Consumes a `..`/`..=` literal-range tail if present.
    fn pat_range_tail(&mut self) {
        if self.is_p('.') && self.nth_is_p(1, '.') {
            self.bump();
            self.bump();
            self.eat_p('=');
            if self
                .tok()
                .is_some_and(|t| matches!(t.kind, TokKind::Number | TokKind::Char))
            {
                self.bump();
            } else if self.is_p('-') {
                self.bump();
                if self.tok().is_some_and(|t| t.kind == TokKind::Number) {
                    self.bump();
                }
            }
        }
    }

    fn pat_list(&mut self, close: char) -> Vec<Pat> {
        let mut ps = Vec::new();
        while !self.at_end() && !self.is_p(close) {
            let before = self.pos;
            ps.push(self.pat());
            self.eat_p(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p(close);
        ps
    }

    // ----- items -----------------------------------------------------

    /// Parses items until `}` or EOF. `in_test` marks everything inside a
    /// `#[cfg(test)]` module.
    fn items(&mut self, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.at_end() && !self.is_p('}') {
            let before = self.pos;
            if let Some(item) = self.item_one(in_test) {
                out.push(item);
            }
            if self.pos == before {
                self.bump();
            }
        }
        out
    }

    fn item_one(&mut self, in_test: bool) -> Option<Item> {
        if self.eat_p(';') {
            return None;
        }
        let attrs = self.attrs();
        if self.eat_id("pub") && self.is_p('(') {
            self.skip_balanced(None, None);
        }
        // Fn qualifiers.
        let mut saw_qual = false;
        loop {
            if (self.is_id("const") && self.nth(1).is_some_and(|t| t.is_ident("fn")))
                || self.is_id("async")
                || self.is_id("unsafe")
            {
                self.bump();
                saw_qual = true;
            } else if self.is_id("extern") {
                self.bump();
                saw_qual = true;
                if self.tok().is_some_and(|t| t.kind == TokKind::Str) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        if self.is_id("fn") {
            return Some(Item::Fn(self.fun(in_test || attrs.test)));
        }
        if saw_qual {
            // `unsafe impl`, `extern { … }` blocks.
            if self.is_id("impl") {
                return Some(Item::Impl(self.impl_block(in_test)));
            }
            if self.is_p('{') {
                self.skip_balanced(None, None);
            }
            return Some(Item::Other);
        }
        if self.is_id("struct") || self.is_id("enum") || self.is_id("union") {
            return Some(Item::Struct(self.struct_def(attrs.derives)));
        }
        if self.is_id("impl") {
            return Some(Item::Impl(self.impl_block(in_test)));
        }
        if self.is_id("trait") {
            return Some(Item::Impl(self.trait_def(in_test)));
        }
        if self.is_id("mod") {
            self.bump();
            let name = self
                .tok()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            self.bump();
            if self.eat_p(';') {
                return Some(Item::Other);
            }
            let cfg_test = attrs.cfg_test || attrs.test;
            if self.eat_p('{') {
                let items = self.items(in_test || cfg_test);
                self.eat_p('}');
                return Some(Item::Mod(ModDef {
                    name,
                    cfg_test,
                    items,
                }));
            }
            return Some(Item::Other);
        }
        if self.is_id("use") || self.is_id("const") || self.is_id("static") || self.is_id("type") {
            // Skip to `;` at depth 0, stepping over any delimiter groups.
            self.bump();
            while let Some(t) = self.tok() {
                if t.is_punct(';') {
                    self.bump();
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    self.skip_balanced(None, None);
                } else if t.is_punct('<') {
                    self.skip_angles(None);
                } else if t.is_punct('}') {
                    break;
                } else {
                    self.bump();
                }
            }
            return Some(Item::Other);
        }
        if self.is_id("macro_rules") {
            self.bump();
            self.eat_p('!');
            if self.is_ident_tok() {
                self.bump();
            }
            if self.is_p('(') || self.is_p('[') || self.is_p('{') {
                self.skip_balanced(None, None);
            }
            return Some(Item::Other);
        }
        None
    }

    fn fun(&mut self, is_test: bool) -> Fun {
        let line = self.line();
        self.bump(); // `fn`
        let name = self
            .tok()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.is_p('<') {
            self.skip_angles(None);
        }
        let mut params = Vec::new();
        let mut has_self = false;
        if self.eat_p('(') {
            while !self.at_end() && !self.is_p(')') {
                let before = self.pos;
                let _ = self.attrs();
                // Self parameter: `[&]['a][mut] self [: Ty]`.
                let save = self.pos;
                if self.eat_p('&') && self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                self.eat_id("mut");
                if self.eat_id("self") {
                    has_self = true;
                    if self.eat_p(':') {
                        let _ = self.ty();
                    }
                } else {
                    self.pos = save;
                    let pat = self.pat();
                    let ty = if self.eat_p(':') {
                        self.ty()
                    } else {
                        Ty::default()
                    };
                    params.push((pat, ty));
                }
                self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p(')');
        }
        let ret = if self.is_p('-') && self.nth_is_p(1, '>') {
            self.bump();
            self.bump();
            self.ty()
        } else {
            Ty::default()
        };
        if self.is_id("where") {
            self.skip_where();
        }
        let (body, end_line) = if self.is_p('{') {
            let b = self.block();
            (
                b,
                self.t
                    .get(self.pos.saturating_sub(1))
                    .map_or(line, |t| t.line),
            )
        } else {
            self.eat_p(';');
            (Block::default(), line)
        };
        Fun {
            name,
            params,
            ret,
            body,
            line,
            end_line,
            is_test,
            has_self,
        }
    }

    /// Skips a `where` clause up to the `{`/`;` that ends it, with the
    /// same `->`/angle awareness as the type parser.
    fn skip_where(&mut self) {
        self.bump(); // `where`
        while let Some(t) = self.tok() {
            if t.is_punct('{') || t.is_punct(';') {
                return;
            }
            if t.is_punct('<') {
                self.skip_angles(None);
            } else if t.is_punct('-') && self.nth_is_p(1, '>') {
                self.bump();
                self.bump();
            } else if t.is_punct('(') || t.is_punct('[') {
                self.skip_balanced(None, None);
            } else {
                self.bump();
            }
        }
    }

    fn struct_def(&mut self, derives: Vec<String>) -> StructDef {
        let line = self.line();
        let is_enum = self.is_id("enum");
        self.bump(); // struct/enum/union
        let name = self
            .tok()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.is_p('<') {
            self.skip_angles(None);
        }
        if self.is_id("where") {
            self.skip_where();
        }
        let mut fields = Vec::new();
        if self.eat_p('(') {
            // Tuple struct.
            let mut idx = 0usize;
            while !self.at_end() && !self.is_p(')') {
                let before = self.pos;
                let _ = self.attrs();
                let _ = self.eat_id("pub");
                if self.is_p('(') {
                    self.skip_balanced(None, None);
                }
                let ty = self.ty();
                fields.push((idx.to_string(), ty));
                idx += 1;
                self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p(')');
            self.eat_p(';');
        } else if self.eat_p('{') {
            if is_enum {
                while !self.at_end() && !self.is_p('}') {
                    let before = self.pos;
                    let _ = self.attrs();
                    if self.is_ident_tok() {
                        self.bump();
                    }
                    if self.eat_p('(') {
                        let mut idx = 0usize;
                        while !self.at_end() && !self.is_p(')') {
                            let b2 = self.pos;
                            let ty = self.ty();
                            fields.push((idx.to_string(), ty));
                            idx += 1;
                            self.eat_p(',');
                            if self.pos == b2 {
                                self.bump();
                            }
                        }
                        self.eat_p(')');
                    } else if self.eat_p('{') {
                        self.named_fields(&mut fields);
                    }
                    if self.eat_p('=') {
                        // Discriminant: skip to `,`/`}`.
                        while let Some(t) = self.tok() {
                            if t.is_punct(',') || t.is_punct('}') {
                                break;
                            }
                            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                                self.skip_balanced(None, None);
                            } else {
                                self.bump();
                            }
                        }
                    }
                    self.eat_p(',');
                    if self.pos == before {
                        self.bump();
                    }
                }
            } else {
                self.named_fields(&mut fields);
            }
            self.eat_p('}');
        } else {
            self.eat_p(';');
        }
        StructDef {
            name,
            fields,
            derives,
            is_enum,
            line,
        }
    }

    /// Parses `name: Ty,` pairs up to (and including) the closing `}` of
    /// the *current* group — the opener has already been consumed.
    fn named_fields(&mut self, fields: &mut Vec<(String, Ty)>) {
        while !self.at_end() && !self.is_p('}') {
            let before = self.pos;
            let _ = self.attrs();
            if self.eat_id("pub") && self.is_p('(') {
                self.skip_balanced(None, None);
            }
            if let Some(f) = self.tok().filter(|t| t.kind == TokKind::Ident).cloned() {
                self.bump();
                if self.eat_p(':') {
                    let ty = self.ty();
                    fields.push((f.text.clone(), ty));
                }
            }
            self.eat_p(',');
            if self.pos == before {
                self.bump();
            }
        }
    }

    fn impl_block(&mut self, in_test: bool) -> ImplBlock {
        self.bump(); // `impl`
        if self.is_p('<') {
            self.skip_angles(None);
        }
        let first = self.ty();
        let (self_ty, trait_name) = if self.eat_id("for") {
            let target = self.ty();
            (target.head, Some(first.head))
        } else {
            (first.head, None)
        };
        if self.is_id("where") {
            self.skip_where();
        }
        let mut fns = Vec::new();
        if self.eat_p('{') {
            for item in self.items(in_test) {
                if let Item::Fn(f) = item {
                    fns.push(f);
                }
            }
            self.eat_p('}');
        }
        ImplBlock {
            self_ty,
            trait_name,
            fns,
        }
    }

    fn trait_def(&mut self, in_test: bool) -> ImplBlock {
        self.bump(); // `trait`
        let name = self
            .tok()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.is_p('<') {
            self.skip_angles(None);
        }
        if self.eat_p(':') {
            // Supertrait bounds.
            while let Some(t) = self.tok() {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_angles(None);
                } else if t.is_punct('(') {
                    self.skip_balanced(None, None);
                } else {
                    self.bump();
                }
            }
        }
        if self.is_id("where") {
            self.skip_where();
        }
        let mut fns = Vec::new();
        if self.eat_p('{') {
            for item in self.items(in_test) {
                if let Item::Fn(f) = item {
                    fns.push(f);
                }
            }
            self.eat_p('}');
        }
        ImplBlock {
            self_ty: name,
            trait_name: None,
            fns,
        }
    }

    // ----- statements & blocks ---------------------------------------

    /// Parses a `{ … }` block; `pos` sits on `{`.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_p('{') {
            return Block { stmts };
        }
        while !self.at_end() && !self.is_p('}') {
            let before = self.pos;
            if self.eat_p(';') {
                stmts.push(Stmt::Empty);
                continue;
            }
            if self.is_id("let") {
                stmts.push(self.let_stmt());
            } else if self.at_item_start() {
                if let Some(item) = self.item_one(false) {
                    stmts.push(Stmt::Item(Box::new(item)));
                }
            } else {
                let expr = self.expr(false);
                let semi = self.eat_p(';');
                stmts.push(Stmt::Expr { expr, semi });
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p('}');
        Block { stmts }
    }

    /// Whether the current token begins a nested item rather than an
    /// expression statement.
    fn at_item_start(&self) -> bool {
        let Some(t) = self.tok() else { return false };
        if t.is_punct('#') {
            return true;
        }
        if t.kind != TokKind::Ident {
            return false;
        }
        matches!(
            t.text.as_str(),
            "fn" | "struct"
                | "enum"
                | "union"
                | "impl"
                | "trait"
                | "mod"
                | "use"
                | "static"
                | "type"
                | "macro_rules"
                | "pub"
        ) || (t.text == "const" && !self.nth_is_p(1, '{'))
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        let pat = self.pat();
        let ty = if self.eat_p(':') {
            Some(self.ty())
        } else {
            None
        };
        let init = if self.is_p('=') && !self.nth_is_p(1, '=') {
            self.bump();
            Some(self.expr(false))
        } else {
            None
        };
        let else_block = if self.eat_id("else") {
            if self.is_p('{') {
                Some(self.block())
            } else {
                None
            }
        } else {
            None
        };
        self.eat_p(';');
        Stmt::Let {
            pat,
            ty,
            init,
            else_block,
            line,
        }
    }

    // ----- expressions -----------------------------------------------

    /// Parses one expression. `ns` (no-struct) forbids `Path { … }`
    /// struct literals, as in `if`/`while`/`match`-header positions.
    fn expr(&mut self, ns: bool) -> Expr {
        self.assign(ns)
    }

    fn assign(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let lhs = self.range_expr(ns);
        // `=` (plain) or compound `op=`; comparison `<=`/`>=`/`==`/`!=`
        // were already consumed at the binary level.
        if self.is_p('=') && !self.nth_is_p(1, '=') {
            self.bump();
            let rhs = self.assign(ns);
            return Expr {
                line,
                kind: ExprKind::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        for op in ["+", "-", "*", "/", "%", "^", "&", "|"] {
            if self.is_p(op.as_bytes()[0] as char) && self.nth_is_p(1, '=') {
                self.bump();
                self.bump();
                let rhs = self.assign(ns);
                return Expr {
                    line,
                    kind: ExprKind::Assign {
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                };
            }
        }
        for c in ['<', '>'] {
            if self.is_p(c) && self.nth_is_p(1, c) && self.nth_is_p(2, '=') {
                self.bump();
                self.bump();
                self.bump();
                let rhs = self.assign(ns);
                return Expr {
                    line,
                    kind: ExprKind::Assign {
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                };
            }
        }
        lhs
    }

    fn range_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.is_p('.') && self.nth_is_p(1, '.') {
            // Leading `..hi` / `..`.
            self.bump();
            self.bump();
            self.eat_p('=');
            let hi = if self.expr_can_start(ns) {
                Some(Box::new(self.or_expr(ns)))
            } else {
                None
            };
            return Expr {
                line,
                kind: ExprKind::Range(None, hi),
            };
        }
        let lo = self.or_expr(ns);
        if self.is_p('.') && self.nth_is_p(1, '.') {
            self.bump();
            self.bump();
            self.eat_p('=');
            let hi = if self.expr_can_start(ns) {
                Some(Box::new(self.or_expr(ns)))
            } else {
                None
            };
            return Expr {
                line,
                kind: ExprKind::Range(Some(Box::new(lo)), hi),
            };
        }
        lo
    }

    /// Whether the current token can plausibly begin an expression (used
    /// only to decide open-ended ranges).
    fn expr_can_start(&self, _ns: bool) -> bool {
        let Some(t) = self.tok() else { return false };
        match t.kind {
            TokKind::Ident => !matches!(t.text.as_str(), "in" | "else" | "where"),
            TokKind::Number | TokKind::Str | TokKind::Char => true,
            TokKind::Punct => {
                matches!(
                    t.text.as_bytes().first(),
                    Some(b'(' | b'[' | b'{' | b'-' | b'!' | b'*' | b'&' | b'|')
                )
            }
            _ => false,
        }
    }

    fn or_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.and_expr(ns);
        while self.is_p('|') && self.nth_is_p(1, '|') && !self.nth_is_p(2, '=') {
            let line = self.line();
            self.bump();
            self.bump();
            let rhs = self.and_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn and_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cmp_expr(ns);
        while self.is_p('&') && self.nth_is_p(1, '&') && !self.nth_is_p(2, '=') {
            let line = self.line();
            self.bump();
            self.bump();
            let rhs = self.cmp_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn cmp_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitor_expr(ns);
        loop {
            let line = self.line();
            let op = if self.is_p('=') && self.nth_is_p(1, '=') {
                self.bump();
                self.bump();
                BinOp::Eq
            } else if self.is_p('!') && self.nth_is_p(1, '=') {
                self.bump();
                self.bump();
                BinOp::Ne
            } else if self.is_p('<') && self.nth_is_p(1, '=') {
                self.bump();
                self.bump();
                BinOp::Le
            } else if self.is_p('>') && self.nth_is_p(1, '=') {
                self.bump();
                self.bump();
                BinOp::Ge
            } else if self.is_p('<') && !self.nth_is_p(1, '<') {
                self.bump();
                BinOp::Lt
            } else if self.is_p('>') && !self.nth_is_p(1, '>') {
                self.bump();
                BinOp::Gt
            } else {
                break;
            };
            let rhs = self.bitor_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn bitor_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitxor_expr(ns);
        while self.is_p('|') && !self.nth_is_p(1, '|') && !self.nth_is_p(1, '=') {
            let line = self.line();
            self.bump();
            let rhs = self.bitxor_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn bitxor_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitand_expr(ns);
        while self.is_p('^') && !self.nth_is_p(1, '=') {
            let line = self.line();
            self.bump();
            let rhs = self.bitand_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn bitand_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.shift_expr(ns);
        while self.is_p('&') && !self.nth_is_p(1, '&') && !self.nth_is_p(1, '=') {
            let line = self.line();
            self.bump();
            let rhs = self.shift_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn shift_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.add_expr(ns);
        loop {
            let line = self.line();
            let op = if self.is_p('<') && self.nth_is_p(1, '<') && !self.nth_is_p(2, '=') {
                self.bump();
                self.bump();
                BinOp::Shl
            } else if self.is_p('>') && self.nth_is_p(1, '>') && !self.nth_is_p(2, '=') {
                self.bump();
                self.bump();
                BinOp::Shr
            } else {
                break;
            };
            let rhs = self.add_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn add_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.mul_expr(ns);
        loop {
            let line = self.line();
            let op = if self.is_p('+') && !self.nth_is_p(1, '=') {
                self.bump();
                BinOp::Add
            } else if self.is_p('-') && !self.nth_is_p(1, '=') && !self.nth_is_p(1, '>') {
                self.bump();
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.mul_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn mul_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cast_expr(ns);
        loop {
            let line = self.line();
            let op = if self.is_p('*') && !self.nth_is_p(1, '=') {
                self.bump();
                BinOp::Mul
            } else if self.is_p('/') && !self.nth_is_p(1, '=') {
                self.bump();
                BinOp::Div
            } else if self.is_p('%') && !self.nth_is_p(1, '=') {
                self.bump();
                BinOp::Rem
            } else {
                break;
            };
            let rhs = self.cast_expr(ns);
            lhs = Expr {
                line,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        lhs
    }

    fn cast_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let mut e = self.unary(ns);
        while self.eat_id("as") {
            let ty = self.ty();
            e = Expr {
                line,
                kind: ExprKind::Cast(Box::new(e), ty),
            };
        }
        e
    }

    fn unary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.is_p('-') || self.is_p('!') || self.is_p('*') {
            self.bump();
            let inner = self.unary(ns);
            return Expr {
                line,
                kind: ExprKind::Unary(Box::new(inner)),
            };
        }
        if self.is_p('&') {
            self.bump();
            // `&&x` is two tokens; the second `&` recurses.
            self.eat_id("mut");
            let inner = self.unary(ns);
            return Expr {
                line,
                kind: ExprKind::Unary(Box::new(inner)),
            };
        }
        self.postfix(ns)
    }

    fn postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.primary(ns);
        loop {
            let line = self.line();
            if self.is_p('.') && !self.nth_is_p(1, '.') {
                let Some(next) = self.nth(1) else { break };
                match next.kind {
                    TokKind::Ident if next.text == "await" => {
                        self.bump();
                        self.bump();
                        // `.await` is transparent to the passes.
                    }
                    TokKind::Ident => {
                        let name = next.text.clone();
                        self.bump();
                        self.bump();
                        // Turbofish between name and call parens.
                        if self.is_p(':') && self.nth_is_p(1, ':') && self.nth_is_p(2, '<') {
                            self.bump();
                            self.bump();
                            self.skip_angles(None);
                        }
                        if self.is_p('(') {
                            let args = self.call_args();
                            e = Expr {
                                line,
                                kind: ExprKind::MethodCall {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                },
                            };
                        } else {
                            e = Expr {
                                line,
                                kind: ExprKind::Field(Box::new(e), name),
                            };
                        }
                    }
                    TokKind::Number => {
                        let name = next.text.clone();
                        self.bump();
                        self.bump();
                        e = Expr {
                            line,
                            kind: ExprKind::Field(Box::new(e), name),
                        };
                    }
                    _ => break,
                }
            } else if self.is_p('(') {
                let args = self.call_args();
                e = Expr {
                    line,
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                };
            } else if self.is_p('[') {
                self.bump();
                let idx = self.expr(false);
                self.eat_p(']');
                e = Expr {
                    line,
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    },
                };
            } else if self.is_p('?') {
                self.bump();
                e = Expr {
                    line,
                    kind: ExprKind::Try(Box::new(e)),
                };
            } else {
                break;
            }
        }
        e
    }

    /// Parses `( expr, … )` call arguments; `pos` sits on `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.bump(); // `(`
        while !self.at_end() && !self.is_p(')') {
            let before = self.pos;
            args.push(self.expr(false));
            self.eat_p(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p(')');
        args
    }

    fn primary(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.tok() else {
            return Expr::unknown(line);
        };
        match t.kind {
            TokKind::Number | TokKind::Char => {
                self.bump();
                Expr {
                    line,
                    kind: ExprKind::Lit,
                }
            }
            TokKind::Str => {
                let s = t.text.clone();
                self.bump();
                Expr {
                    line,
                    kind: ExprKind::Str(s),
                }
            }
            TokKind::Lifetime => {
                // Loop label: `'l: loop { … }`.
                self.bump();
                self.eat_p(':');
                self.primary(ns)
            }
            TokKind::Punct => self.primary_punct(ns, line),
            TokKind::Ident => self.primary_ident(ns, line),
            _ => {
                self.bump();
                Expr::unknown(line)
            }
        }
    }

    fn primary_punct(&mut self, _ns: bool, line: usize) -> Expr {
        if self.is_p('(') {
            self.bump();
            let mut els = Vec::new();
            let mut saw_comma = false;
            while !self.at_end() && !self.is_p(')') {
                let before = self.pos;
                els.push(self.expr(false));
                saw_comma |= self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p(')');
            if els.len() == 1 && !saw_comma {
                return els.pop().unwrap_or_else(|| Expr::unknown(line));
            }
            return Expr {
                line,
                kind: ExprKind::Tuple(els),
            };
        }
        if self.is_p('[') {
            self.bump();
            let mut els = Vec::new();
            while !self.at_end() && !self.is_p(']') {
                let before = self.pos;
                els.push(self.expr(false));
                let _ = self.eat_p(',') || self.eat_p(';');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p(']');
            return Expr {
                line,
                kind: ExprKind::Array(els),
            };
        }
        if self.is_p('{') {
            let b = self.block();
            return Expr {
                line,
                kind: ExprKind::Block(b),
            };
        }
        if self.is_p('|') {
            return self.closure(line);
        }
        if self.is_p('<') {
            // Qualified path `<T as Trait>::method(…)`: skip the type,
            // then parse the path tail.
            self.skip_angles(None);
            if self.is_p(':') && self.nth_is_p(1, ':') {
                self.bump();
                self.bump();
                return self.primary(true);
            }
            return Expr::unknown(line);
        }
        self.bump();
        Expr::unknown(line)
    }

    fn closure(&mut self, line: usize) -> Expr {
        // `pos` sits on the first `|` (or caller consumed `move`).
        let mut params = Vec::new();
        self.bump(); // `|`
        if self.eat_p('|') {
            // `||` zero-param closure.
        } else {
            while !self.at_end() && !self.is_p('|') {
                let before = self.pos;
                // `pat_single`, not `pat`: the closing `|` of the closure
                // must not start an or-pattern.
                let pat = self.pat_single();
                let ty = if self.eat_p(':') {
                    self.ty()
                } else {
                    Ty::default()
                };
                params.push((pat, ty));
                self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p('|');
        }
        if self.is_p('-') && self.nth_is_p(1, '>') {
            self.bump();
            self.bump();
            let _ = self.ty();
        }
        let body = self.expr(false);
        Expr {
            line,
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    fn primary_ident(&mut self, ns: bool, line: usize) -> Expr {
        let Some(t) = self.tok() else {
            return Expr::unknown(line);
        };
        match t.text.as_str() {
            "true" | "false" | "continue" => {
                self.bump();
                if self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                Expr {
                    line,
                    kind: ExprKind::Lit,
                }
            }
            "if" => self.if_expr(line),
            "match" => self.match_expr(line),
            "while" => self.while_expr(line),
            "for" => {
                self.bump();
                let pat = self.pat();
                self.eat_id("in");
                let iter = self.expr(true);
                let body = self.block();
                Expr {
                    line,
                    kind: ExprKind::ForLoop {
                        pat,
                        iter: Box::new(iter),
                        body,
                    },
                }
            }
            "loop" => {
                self.bump();
                let body = self.block();
                Expr {
                    line,
                    kind: ExprKind::Loop(body),
                }
            }
            "return" => {
                self.bump();
                let val = if self.expr_can_start(ns) && !self.is_p('}') {
                    Some(Box::new(self.expr(ns)))
                } else {
                    None
                };
                Expr {
                    line,
                    kind: ExprKind::Return(val),
                }
            }
            "break" => {
                self.bump();
                if self.tok().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                let val = if self.expr_can_start(ns) && !self.is_p('}') && !self.is_p(';') {
                    Some(Box::new(self.expr(ns)))
                } else {
                    None
                };
                Expr {
                    line,
                    kind: ExprKind::Break(val),
                }
            }
            "unsafe" => {
                self.bump();
                if self.is_p('{') {
                    let b = self.block();
                    return Expr {
                        line,
                        kind: ExprKind::Block(b),
                    };
                }
                Expr::unknown(line)
            }
            "move" => {
                self.bump();
                if self.is_p('|') {
                    return self.closure(line);
                }
                Expr::unknown(line)
            }
            "let" => {
                // Let-chain fragment (`… && let Some(x) = e`): keep the
                // scrutinee, drop the binding — lossy but safe.
                self.bump();
                let _ = self.pat();
                if self.is_p('=') && !self.nth_is_p(1, '=') {
                    self.bump();
                    return self.expr(true);
                }
                Expr::unknown(line)
            }
            _ => self.path_expr(ns, line),
        }
    }

    fn if_expr(&mut self, line: usize) -> Expr {
        self.bump(); // `if`
        if self.eat_id("let") {
            // Desugar `if let P = e { A } else { B }` to a two-arm match.
            let pat = self.pat();
            let scrutinee = if self.is_p('=') && !self.nth_is_p(1, '=') {
                self.bump();
                self.expr(true)
            } else {
                Expr::unknown(line)
            };
            let then = self.block();
            let els = self.else_tail(line);
            let mut arms = vec![Arm {
                pat,
                guard: None,
                body: Expr {
                    line,
                    kind: ExprKind::Block(then),
                },
            }];
            arms.push(Arm {
                pat: Pat::Wild,
                guard: None,
                body: els.unwrap_or_else(|| Expr {
                    line,
                    kind: ExprKind::Block(Block::default()),
                }),
            });
            return Expr {
                line,
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                },
            };
        }
        let cond = self.expr(true);
        let then = self.block();
        let els = self.else_tail(line);
        Expr {
            line,
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els: els.map(Box::new),
            },
        }
    }

    fn else_tail(&mut self, line: usize) -> Option<Expr> {
        if !self.eat_id("else") {
            return None;
        }
        if self.is_id("if") {
            return Some(self.if_expr(self.line()));
        }
        if self.is_p('{') {
            let b = self.block();
            return Some(Expr {
                line,
                kind: ExprKind::Block(b),
            });
        }
        None
    }

    fn match_expr(&mut self, line: usize) -> Expr {
        self.bump(); // `match`
        let scrutinee = self.expr(true);
        let mut arms = Vec::new();
        if self.eat_p('{') {
            while !self.at_end() && !self.is_p('}') {
                let before = self.pos;
                let _ = self.attrs();
                self.eat_p('|');
                let pat = self.pat();
                let guard = if self.eat_id("if") {
                    Some(self.expr(true))
                } else {
                    None
                };
                if self.is_p('=') && self.nth_is_p(1, '>') {
                    self.bump();
                    self.bump();
                }
                let body = self.expr(false);
                arms.push(Arm { pat, guard, body });
                self.eat_p(',');
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_p('}');
        }
        Expr {
            line,
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }

    fn while_expr(&mut self, line: usize) -> Expr {
        self.bump(); // `while`
        if self.eat_id("let") {
            // Desugar `while let P = e { B }` to
            // `loop { match e { P => B, _ => break } }`.
            let pat = self.pat();
            let scrutinee = if self.is_p('=') && !self.nth_is_p(1, '=') {
                self.bump();
                self.expr(true)
            } else {
                Expr::unknown(line)
            };
            let body = self.block();
            let mtch = Expr {
                line,
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms: vec![
                        Arm {
                            pat,
                            guard: None,
                            body: Expr {
                                line,
                                kind: ExprKind::Block(body),
                            },
                        },
                        Arm {
                            pat: Pat::Wild,
                            guard: None,
                            body: Expr {
                                line,
                                kind: ExprKind::Break(None),
                            },
                        },
                    ],
                },
            };
            return Expr {
                line,
                kind: ExprKind::Loop(Block {
                    stmts: vec![Stmt::Expr {
                        expr: mtch,
                        semi: true,
                    }],
                }),
            };
        }
        let cond = self.expr(true);
        let body = self.block();
        Expr {
            line,
            kind: ExprKind::While {
                cond: Box::new(cond),
                body,
            },
        }
    }

    fn path_expr(&mut self, ns: bool, line: usize) -> Expr {
        let mut segs: Vec<String> = Vec::new();
        while let Some(t) = self.tok() {
            if t.kind != TokKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.bump();
            if self.is_p(':') && self.nth_is_p(1, ':') {
                self.bump();
                self.bump();
                if self.is_p('<') {
                    // Turbofish.
                    self.skip_angles(None);
                    if self.is_p(':') && self.nth_is_p(1, ':') {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.bump();
            return Expr::unknown(line);
        }
        // Macro invocation.
        if self.is_p('!')
            && self
                .nth(1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            self.bump(); // `!`
            return self.macro_call(segs.last().cloned().unwrap_or_default(), line);
        }
        // Struct literal (uppercase-initial heads only, outside header
        // positions).
        let head = segs.last().cloned().unwrap_or_default();
        if !ns && self.is_p('{') && head.chars().next().is_some_and(|c| c.is_uppercase()) {
            return self.struct_lit(head, line);
        }
        Expr {
            line,
            kind: ExprKind::Path(segs),
        }
    }

    fn struct_lit(&mut self, path: String, line: usize) -> Expr {
        self.bump(); // `{`
        let mut fields = Vec::new();
        let mut base = None;
        while !self.at_end() && !self.is_p('}') {
            let before = self.pos;
            if self.is_p('.') && self.nth_is_p(1, '.') {
                self.bump();
                self.bump();
                base = Some(Box::new(self.expr(false)));
            } else if let Some(f) = self.tok().filter(|t| t.kind == TokKind::Ident).cloned() {
                self.bump();
                if self.eat_p(':') {
                    let e = self.expr(false);
                    fields.push((f.text.clone(), e));
                } else {
                    // Shorthand `Foo { x }`.
                    fields.push((
                        f.text.clone(),
                        Expr {
                            line: f.line,
                            kind: ExprKind::Path(vec![f.text.clone()]),
                        },
                    ));
                }
            }
            self.eat_p(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_p('}');
        Expr {
            line,
            kind: ExprKind::StructLit { path, fields, base },
        }
    }

    /// Parses `name!(…)` — `pos` sits on the opening delimiter. Captures
    /// the raw ident/string bag, then best-effort parses the top-level
    /// `,`/`;`-separated segments as expressions.
    fn macro_call(&mut self, name: String, line: usize) -> Expr {
        let open = self.pos;
        let mut raw_idents = Vec::new();
        let mut strs = Vec::new();
        self.skip_balanced(Some(&mut raw_idents), Some(&mut strs));
        let close = self.pos.saturating_sub(1);
        let inner: &[Tok] = if open < close {
            &self.t[open + 1..close]
        } else {
            &[]
        };
        let mut args = Vec::new();
        let mut depth = 0usize;
        let mut seg_start = 0usize;
        for (i, t) in inner.iter().enumerate() {
            if t.kind == TokKind::Punct {
                let c = t.text.as_bytes().first().copied().unwrap_or(0);
                if matches!(c, b'(' | b'[' | b'{') {
                    depth += 1;
                } else if matches!(c, b')' | b']' | b'}') {
                    depth = depth.saturating_sub(1);
                } else if (c == b',' || c == b';') && depth == 0 {
                    if let Some(e) = parse_expr_slice(&inner[seg_start..i]) {
                        args.push(e);
                    }
                    seg_start = i + 1;
                }
            }
        }
        if let Some(e) = parse_expr_slice(&inner[seg_start.min(inner.len())..]) {
            args.push(e);
        }
        Expr {
            line,
            kind: ExprKind::Macro {
                name,
                args,
                raw_idents,
                strs,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::FileModel;

    fn parse(src: &str) -> Vec<Item> {
        let m = FileModel::parse("x.rs", src);
        let _ = m;
        let code: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    crate::lexer::TokKind::LineComment | crate::lexer::TokKind::BlockComment
                )
            })
            .collect();
        parse_items(&code)
    }

    fn first_fn(items: &[Item]) -> &Fun {
        items
            .iter()
            .find_map(|i| match i {
                Item::Fn(f) => Some(f),
                _ => None,
            })
            .expect("no fn parsed")
    }

    #[test]
    fn fn_signature_and_ret() {
        let items = parse("fn f(a: Secret<Vec<R64>>, n: usize) -> Secret<u64> { a.open() }");
        let f = first_fn(&items);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].1.head, "Secret");
        assert_eq!(f.params[0].1.args[0].head, "Vec");
        assert!(f.ret.mentions("Secret"));
    }

    #[test]
    fn nested_generics_with_shift_close() {
        let items = parse("fn g(m: BTreeMap<String, Vec<Vec<u64>>>) -> usize { m.len() }");
        let f = first_fn(&items);
        assert_eq!(f.params[0].1.head, "BTreeMap");
        assert!(f.params[0].1.mentions("u64"));
        assert_eq!(f.ret.head, "usize");
    }

    #[test]
    fn impl_fn_param_arrow_does_not_split_params() {
        // The `->` inside the Fn trait must not eat the second param.
        let items = parse("fn h(g: impl Fn(u64) -> Vec<u64>, share: F61) -> u64 { 0 }");
        let f = first_fn(&items);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].1.head, "F61");
    }

    #[test]
    fn const_generic_brace_is_not_fn_body() {
        let items = parse("fn k() -> Foo<{ 1 >> 2 }> { make() }\nfn after() {}");
        let names: Vec<&str> = items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some(f.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["k", "after"]);
        let f = first_fn(&items);
        assert_eq!(f.body.stmts.len(), 1);
    }

    #[test]
    fn where_clause_skipped() {
        let items = parse("fn w<T>(x: T) -> T where T: Clone + Send, Vec<T>: IntoIterator { x }");
        let f = first_fn(&items);
        assert_eq!(f.name, "w");
        assert!(f.body.tail().is_some());
    }

    #[test]
    fn struct_fields_and_derives() {
        let items = parse(
            "#[derive(Clone, Debug)]\npub struct Pkt { pub label: String, shares: Secret<Vec<R64>> }",
        );
        let Some(Item::Struct(s)) = items.first() else {
            panic!("expected struct");
        };
        assert_eq!(s.name, "Pkt");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].0, "shares");
        assert!(s.fields[1].1.mentions("Secret"));
        assert!(s.derives.iter().any(|d| d == "Debug"));
    }

    #[test]
    fn impl_methods_resolved_to_self_ty() {
        let items = parse(
            "impl<T> Secret<T> { pub fn open_via(&self) -> T { self.0 } }\n\
             impl Render for Pkt { fn render(&self) -> String { format!(\"x\") } }",
        );
        let Some(Item::Impl(i1)) = items.first() else {
            panic!("expected impl");
        };
        assert_eq!(i1.self_ty, "Secret");
        assert_eq!(i1.fns[0].name, "open_via");
        assert!(i1.fns[0].has_self);
        let Some(Item::Impl(i2)) = items.get(1) else {
            panic!("expected impl");
        };
        assert_eq!(i2.self_ty, "Pkt");
        assert_eq!(i2.trait_name.as_deref(), Some("Render"));
    }

    #[test]
    fn method_chain_and_field_projection() {
        let items = parse("fn f(p: Pkt) { p.shares.iter().for_each(|s| drop(s)); }");
        let f = first_fn(&items);
        let Some(Stmt::Expr { expr, .. }) = f.body.stmts.first() else {
            panic!("expected expr stmt");
        };
        // for_each(recv = iter() on field p.shares, arg = closure)
        let ExprKind::MethodCall { recv, name, args } = &expr.kind else {
            panic!("expected method call, got {expr:?}");
        };
        assert_eq!(name, "for_each");
        assert!(matches!(args[0].kind, ExprKind::Closure { .. }));
        let ExprKind::MethodCall {
            recv: r2, name: n2, ..
        } = &recv.kind
        else {
            panic!("expected inner call");
        };
        assert_eq!(n2, "iter");
        assert_eq!(r2.place().as_deref(), Some("p.shares"));
    }

    #[test]
    fn closures_params_and_captures() {
        let items = parse("fn f() { let g = move |x: u64, y| x + y; g(1, 2); }");
        let f = first_fn(&items);
        let Some(Stmt::Let { init: Some(e), .. }) = f.body.stmts.first() else {
            panic!("expected let");
        };
        let ExprKind::Closure { params, .. } = &e.kind else {
            panic!("expected closure, got {e:?}");
        };
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn if_let_desugars_to_match() {
        let items = parse("fn f(o: Option<u64>) { if let Some(v) = o { use_it(v); } }");
        let f = first_fn(&items);
        let Some(Stmt::Expr { expr, .. }) = f.body.stmts.first() else {
            panic!("expected stmt");
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            panic!("expected match desugar, got {expr:?}");
        };
        assert_eq!(arms.len(), 2);
        let mut binds = Vec::new();
        arms[0].pat.bindings(&mut binds);
        assert_eq!(binds, vec!["v"]);
    }

    #[test]
    fn match_arms_with_struct_patterns() {
        let items = parse(
            "fn f(y: Y) -> u64 { match y { Y::Shared { qty, .. } => qty, Y::Plain(v) => v, _ => 0 } }",
        );
        let f = first_fn(&items);
        let Some(Stmt::Expr { expr, .. }) = f.body.stmts.first() else {
            panic!("expected stmt");
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        let mut b0 = Vec::new();
        arms[0].pat.bindings(&mut b0);
        assert_eq!(b0, vec!["qty"]);
        let mut b1 = Vec::new();
        arms[1].pat.bindings(&mut b1);
        assert_eq!(b1, vec!["v"]);
    }

    #[test]
    fn macro_args_and_inline_captures() {
        let items = parse(r#"fn f(x: u64) { println!("v={:?} {x}", pkt.shares); }"#);
        let f = first_fn(&items);
        let Some(Stmt::Expr { expr, .. }) = f.body.stmts.first() else {
            panic!("expected stmt");
        };
        let ExprKind::Macro {
            name, args, strs, ..
        } = &expr.kind
        else {
            panic!("expected macro, got {expr:?}");
        };
        assert_eq!(name, "println");
        assert!(strs[0].contains("{x}"));
        assert_eq!(args[1].place().as_deref(), Some("pkt.shares"));
    }

    #[test]
    fn tuple_field_access() {
        let items = parse("fn f(pair: (u64, Secret<R64>)) -> u64 { pair.0 }");
        let f = first_fn(&items);
        let tail = f.body.tail().expect("tail");
        assert_eq!(tail.place().as_deref(), Some("pair.0"));
        assert_eq!(f.params[0].1.args.len(), 2);
        assert!(f.params[0]
            .1
            .tuple_elem(1)
            .is_some_and(|t| t.mentions("Secret")));
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let items = parse("#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }");
        let Some(Item::Mod(m)) = items.first() else {
            panic!("expected mod");
        };
        assert!(m.cfg_test);
        for item in &m.items {
            if let Item::Fn(f) = item {
                assert!(f.is_test, "{} should be test-scoped", f.name);
            }
        }
    }

    #[test]
    fn while_let_and_ranges_parse() {
        let items = parse(
            "fn f(mut it: I) { while let Some(x) = it.next() { use_it(x); } for i in 0..10 { g(i); } }",
        );
        let f = first_fn(&items);
        assert!(f.body.stmts.len() >= 2);
        let Some(Stmt::Expr { expr, .. }) = f.body.stmts.get(1) else {
            panic!("expected for loop");
        };
        let ExprKind::ForLoop { iter, .. } = &expr.kind else {
            panic!("expected for, got {expr:?}");
        };
        assert!(matches!(iter.kind, ExprKind::Range(_, _)));
    }

    #[test]
    fn operators_classified() {
        let items = parse("fn f(a: u64, b: u64) -> bool { (a % b) < (a / b) }");
        let f = first_fn(&items);
        let tail = f.body.tail().expect("tail");
        let ExprKind::Binary(op, l, r) = &tail.kind else {
            panic!("expected cmp, got {tail:?}");
        };
        assert_eq!(*op, BinOp::Lt);
        assert!(matches!(l.kind, ExprKind::Binary(BinOp::Rem, _, _)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Div, _, _)));
    }

    #[test]
    fn shift_vs_comparison() {
        let items = parse("fn f(a: u64) -> u64 { a << 3 >> 1 }");
        let f = first_fn(&items);
        let tail = f.body.tail().expect("tail");
        assert!(matches!(tail.kind, ExprKind::Binary(BinOp::Shr, _, _)));
    }

    #[test]
    fn struct_literal_vs_block() {
        let items = parse("fn f() -> Pkt { Pkt { label: name(), shares: s } }");
        let f = first_fn(&items);
        let tail = f.body.tail().expect("tail");
        let ExprKind::StructLit { path, fields, .. } = &tail.kind else {
            panic!("expected struct lit, got {tail:?}");
        };
        assert_eq!(path, "Pkt");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn f( { ) }",
            "impl { fn }",
            "fn g() { let = ; match { } }",
            "struct S { x: , }",
            "fn h() { a.b.(c) }",
            "fn i() { x < < y }",
        ] {
            let _ = parse(src);
        }
    }
}
