//! The per-file lint passes.
//!
//! The cheap structural lints (disclosure-completeness, panic-free,
//! secure-indexing, stray tag constants) walk the comment-free token
//! stream of one [`FileModel`] — they key off single tokens and need no
//! syntax. `secret-taint` works over the parsed AST so it sees macro
//! argument structure, inline format-string captures, and derive lists as
//! syntax rather than token windows. All passes skip test code and honour
//! inline `// dash-analyze::allow(<lint>): …` pragmas (function scope).

use crate::ast::{Expr, ExprKind, Item};
use crate::lexer::{Tok, TokKind};
use crate::model::FileModel;
use crate::Finding;

/// Identifier prefixes that open values to other parties. A function
/// whose own name starts with one of these is the primitive layer itself
/// and is exempt from disclosure-completeness.
const OPENING_PREFIXES: [&str; 4] = ["all_gather", "broadcast", "exchange_sum", "open_"];

/// Idents that record into the [`DisclosureLog`]: the log's own
/// `record_*` methods, plus the audited-open primitives that record
/// internally at the moment of opening (`Secret::open_via` and
/// `PartyCtx::open_local`). The `open_sum_*` helpers are *not* listed —
/// they carry the `open_` prefix and are covered by the
/// `Some(label)`-argument check below, so an unlabelled (pad) open cannot
/// self-exempt.
///
/// [`DisclosureLog`]: ../../dash_mpc/audit/struct.DisclosureLog.html
const RECORDERS: [&str; 4] = ["record_aggregate", "record_party", "open_via", "open_local"];

/// Runs every secure-scope lint over one file.
pub fn run_all(m: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    disclosure_completeness(m, &mut out);
    panic_free(m, &mut out);
    secure_indexing(m, &mut out);
    secret_taint(m, &mut out);
    stray_tag_consts(m, &mut out);
    out
}

fn finding(m: &FileModel, lint: &'static str, idx: usize, message: String) -> Finding {
    let line = m.code.get(idx).map_or(0, |t| t.line);
    Finding {
        lint,
        file: m.rel.clone(),
        line,
        function: m
            .enclosing_fn(idx)
            .map(|f| f.name.clone())
            .unwrap_or_default(),
        message,
        snippet: m.line_text(line).to_string(),
    }
}

/// Finding constructor for the AST passes, which carry lines (not token
/// indices) and know their enclosing function directly.
fn finding_at(
    m: &FileModel,
    lint: &'static str,
    line: usize,
    function: String,
    message: String,
) -> Finding {
    Finding {
        lint,
        file: m.rel.clone(),
        line,
        function,
        message,
        snippet: m.line_text(line).to_string(),
    }
}

/// Index (in the code view) of the token matching the opener at `open`.
/// `open`/`close` are single punctuation chars. Returns the last token on
/// unbalanced input (the lints must not panic).
pub(crate) fn matching(code: &[Tok], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        if code[i].is_punct(oc) {
            depth += 1;
        } else if code[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Lint 1: every opening-primitive call must be accounted to the
/// disclosure log within the same function — either directly
/// (`record_aggregate`/`record_party` reachable in the body), through the
/// primitive itself (`open_field(.., Some(label))` records internally),
/// or via an explicit pragma for the by-design cases (uniform masked
/// differences).
fn disclosure_completeness(m: &FileModel, out: &mut Vec<Finding>) {
    const LINT: &str = "disclosure-completeness";
    for f in &m.fns {
        if f.is_test {
            continue;
        }
        if OPENING_PREFIXES.iter().any(|p| f.name.starts_with(p)) {
            continue; // the primitive layer itself
        }
        let body = &m.code[f.body_start..=f.body_end.min(m.code.len() - 1)];
        let records = body
            .iter()
            .any(|t| t.kind == TokKind::Ident && RECORDERS.contains(&t.text.as_str()));
        for (k, t) in body.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_open = OPENING_PREFIXES.iter().any(|p| t.text.starts_with(p));
            if !is_open || !body.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            // `open_*` primitives record internally when handed a label.
            if t.text.starts_with("open_") {
                let close = matching(body, k + 1, '(', ')');
                let labelled = body[k + 1..=close].iter().any(|a| a.is_ident("Some"));
                if labelled {
                    continue;
                }
            }
            if records {
                continue;
            }
            let idx = f.body_start + k;
            if m.allowed(LINT, idx) {
                continue;
            }
            out.push(finding(
                m,
                LINT,
                idx,
                format!(
                    "`{}` opens values to other parties but `{}` has no reachable \
                     DisclosureLog::record_* call (and no recording label); every opening \
                     must be accounted or pragma-allowed with a justification",
                    t.text, f.name
                ),
            ));
        }
    }
}

/// Lint 3: no panicking constructs in secure non-test code.
fn panic_free(m: &FileModel, out: &mut Vec<Finding>) {
    const LINT: &str = "panic-free";
    const METHODS: [&str; 2] = ["unwrap", "expect"];
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for (i, t) in m.code.iter().enumerate() {
        if t.kind != TokKind::Ident || m.in_test(i) {
            continue;
        }
        let what = if METHODS.contains(&t.text.as_str())
            && i > 0
            && m.code[i - 1].is_punct('.')
            && m.code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            format!(".{}() panics on the error path", t.text)
        } else if MACROS.contains(&t.text.as_str())
            && m.code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            format!("{}! aborts the party mid-protocol", t.text)
        } else {
            continue;
        };
        if m.allowed(LINT, i) {
            continue;
        }
        out.push(finding(
            m,
            LINT,
            i,
            format!(
                "{what}; a panicking party deadlocks or crashes the other parties — return a \
                 structured MpcError/CoreError instead"
            ),
        ));
    }
}

/// Lint 5 (warn): direct `x[i]` indexing. Range slicing (`x[a..b]`),
/// attributes (`#[…]`) and macro brackets (`vec![…]`) are not flagged.
fn secure_indexing(m: &FileModel, out: &mut Vec<Finding>) {
    const LINT: &str = "secure-indexing";
    for (i, t) in m.code.iter().enumerate() {
        if !t.is_punct('[') || i == 0 || m.in_test(i) {
            continue;
        }
        let prev = &m.code[i - 1];
        let indexes_value = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(']')
            || prev.is_punct(')');
        if !indexes_value {
            continue;
        }
        // A top-level `..` inside the brackets is a range slice: the
        // result is a slice, and slicing is handled by length checks at
        // the call sites (and still bounds-checked by the runtime).
        let close = matching(&m.code, i, '[', ']');
        let mut depth = 0usize;
        let mut is_range = false;
        let mut j = i;
        while j < close {
            let a = &m.code[j];
            if a.is_punct('[') || a.is_punct('(') {
                depth += 1;
            } else if a.is_punct(']') || a.is_punct(')') {
                depth = depth.saturating_sub(1);
            } else if depth == 1
                && a.is_punct('.')
                && m.code.get(j + 1).is_some_and(|n| n.is_punct('.'))
            {
                is_range = true;
                break;
            }
            j += 1;
        }
        if is_range || m.allowed(LINT, i) {
            continue;
        }
        out.push(finding(
            m,
            LINT,
            i,
            "direct indexing panics on out-of-range; prefer .get()/iterators or slice \
             patterns in secure code"
                .to_string(),
        ));
    }
}

pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "as"
            | "mut"
            | "let"
            | "move"
            | "break"
            | "continue"
            | "while"
            | "for"
            | "loop"
            | "impl"
            | "dyn"
            | "where"
            | "fn"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "type"
            | "struct"
            | "enum"
            | "mod"
            | "ref"
    )
}

/// Whether an identifier names secret share/mask material.
fn secret_ident(s: &str) -> bool {
    let l = s.to_ascii_lowercase();
    l == "prg"
        || [
            "share", "shares", "mask", "masks", "secret", "secrets", "triple", "triples",
        ]
        .iter()
        .any(|suf| l.ends_with(suf))
}

/// Lint 4: secret material must not flow into Debug/Display formatting
/// or observability sinks. Works over the parsed AST (`crate::ast`).
///
/// Four shapes:
/// - `#[derive(Debug)]` on a *leaf* secret type (type name matching
///   triple/share/mask/prg, or a field named like share/mask/secret) —
///   leaf types must hand-write a redacting `Debug` impl; containers may
///   keep derived `Debug` because their leaf fields print redacted.
/// - `println!`-family / `dbg!` anywhere in secure non-test code.
/// - formatting/assert macros whose arguments mention a secret-named
///   identifier outside `#[cfg(test)]` — including inline format-string
///   captures (`format!("{share:?}")`), which the token pass could not
///   see inside string literals.
/// - trace/metric emission calls (`trace_add`, `trace_span`,
///   `trace_span_at`) with a secret-named argument: the trace exports to
///   JSON on the operator's machine, so these are formatter-like sinks —
///   only counts and static labels may flow in, never share/mask values.
fn secret_taint(m: &FileModel, out: &mut Vec<Finding>) {
    walk_items(&m.ast, &mut |item| secret_taint_item(m, item, out));
}

const PRINTS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
const TRACE_SINKS: [&str; 3] = ["trace_add", "trace_span", "trace_span_at"];
const FORMATTERS: [&str; 9] = [
    "format",
    "write",
    "writeln",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Visit every item in the tree, recursing through modules and impls.
fn walk_items<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        f(item);
        if let Item::Mod(md) = item {
            walk_items(&md.items, f);
        }
    }
}

fn secret_taint_item(m: &FileModel, item: &Item, out: &mut Vec<Finding>) {
    const LINT: &str = "secret-taint";
    match item {
        // Shape 1: #[derive(.., Debug, ..)] on a leaf secret type.
        Item::Struct(sd) => {
            if sd.derives.iter().any(|d| d == "Debug")
                && is_leaf_secret_type(sd)
                && !m.line_in_test(sd.line)
                && !m.allowed_line(LINT, sd.line)
            {
                out.push(finding_at(
                    m,
                    LINT,
                    sd.line,
                    String::new(),
                    format!(
                        "`{}` holds secret share/mask material; derive(Debug) would \
                         print it — hand-write a redacting Debug impl instead",
                        sd.name
                    ),
                ));
            }
        }
        Item::Fn(f) => secret_taint_fn(m, f, out),
        Item::Impl(ib) => {
            for f in &ib.fns {
                secret_taint_fn(m, f, out);
            }
        }
        Item::Mod(_) | Item::Other => {}
    }
}

fn secret_taint_fn(m: &FileModel, f: &crate::ast::Fun, out: &mut Vec<Finding>) {
    const LINT: &str = "secret-taint";
    if f.is_test {
        return;
    }
    f.body.walk(&mut |e| {
        // Shapes 2 and 3: macro invocations.
        if let ExprKind::Macro {
            name,
            raw_idents,
            strs,
            ..
        } = &e.kind
        {
            if m.allowed_line(LINT, e.line) {
                return;
            }
            if PRINTS.contains(&name.as_str()) {
                out.push(finding_at(
                    m,
                    LINT,
                    e.line,
                    f.name.clone(),
                    format!(
                        "{name}! in secure code can leak protocol state to stdout/stderr; \
                             route observability through the DisclosureLog or tracing in \
                             non-secure layers"
                    ),
                ));
            } else if FORMATTERS.contains(&name.as_str()) {
                // Raw idents cover both parsed args and anything the
                // sub-parse gave up on; inline captures reach inside
                // the format string itself.
                let bad = raw_idents
                    .iter()
                    .find(|i| secret_ident(i))
                    .cloned()
                    .or_else(|| {
                        strs.iter()
                            .flat_map(|s| crate::taint::inline_captures(s))
                            .find(|c| secret_ident(c))
                    });
                if let Some(bad) = bad {
                    out.push(finding_at(
                        m,
                        LINT,
                        e.line,
                        f.name.clone(),
                        format!(
                            "{name}! formats `{bad}`, which names secret share/mask \
                                 material; secrets must not reach Debug/Display output \
                                 outside #[cfg(test)]"
                        ),
                    ));
                }
            }
        }
        // Shape 4: trace/metric emission with a secret-named argument
        // (method and free-fn call forms both).
        if let Some((sink, args)) = trace_sink_call(e) {
            if !m.allowed_line(LINT, e.line) {
                let mut idents = Vec::new();
                for a in args {
                    a.collect_idents(&mut idents);
                }
                if let Some(bad) = idents.iter().find(|i| secret_ident(i)) {
                    out.push(finding_at(
                        m,
                        LINT,
                        e.line,
                        f.name.clone(),
                        format!(
                            "{sink}(..) records `{bad}`, which names secret share/mask \
                             material, into the trace; observability sinks may carry counts \
                             and static labels only"
                        ),
                    ));
                }
            }
        }
    });
}

/// If `e` is a call to a trace/metric sink, returns its name and args.
fn trace_sink_call(e: &Expr) -> Option<(&str, &[Expr])> {
    match &e.kind {
        ExprKind::MethodCall { name, args, .. } if TRACE_SINKS.contains(&name.as_str()) => {
            Some((name.as_str(), args))
        }
        ExprKind::Call { callee, args } => match &callee.kind {
            ExprKind::Path(segs)
                if segs
                    .last()
                    .is_some_and(|l| TRACE_SINKS.contains(&l.as_str())) =>
            {
                Some((segs.last().map(String::as_str).unwrap_or(""), args))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Whether a struct/enum's name or field names mark it as a secret *leaf*
/// type (the thing that must hand-write a redacting `Debug`).
fn is_leaf_secret_type(sd: &crate::ast::StructDef) -> bool {
    let lname = sd.name.to_ascii_lowercase();
    if ["triple", "share", "mask", "prg"]
        .iter()
        .any(|p| lname.contains(p))
    {
        return true;
    }
    sd.fields.iter().any(|(fname, _)| {
        let lf = fname.to_ascii_lowercase();
        ["share", "mask", "secret"].iter().any(|p| lf.contains(p))
    })
}

/// Tag-range hygiene: tag constants must live in the registry module
/// (`crates/mpc/src/tags.rs`), never scattered across the secure crates,
/// so the disjointness proof actually covers every tag in the workspace.
fn stray_tag_consts(m: &FileModel, out: &mut Vec<Finding>) {
    const LINT: &str = "tag-range";
    if m.rel.ends_with("tags.rs") {
        return;
    }
    for (i, t) in m.code.iter().enumerate() {
        if !t.is_ident("const") || m.in_test(i) {
            continue;
        }
        let Some(name) = m.code.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || name.is_ident("fn") {
            continue;
        }
        if name.text.to_ascii_uppercase().contains("TAG")
            && m.code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !m.allowed(LINT, i)
        {
            out.push(finding(
                m,
                LINT,
                i + 1,
                format!(
                    "tag constant `{}` declared outside the registry; move it into \
                     dash_mpc::tags so the disjointness check covers it",
                    name.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        run_all(&FileModel::parse("crates/mpc/src/x.rs", src))
    }

    fn lints_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.lint).collect()
    }

    #[test]
    fn unwrap_in_nontest_flagged_in_test_ok() {
        let src = r#"
fn bad(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
        let f = run(src);
        assert_eq!(lints_of(&f), vec!["panic-free"]);
        assert_eq!(f[0].function, "bad");
    }

    #[test]
    fn unwrap_or_does_not_trigger() {
        let f = run("fn ok(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_macros_flagged_unless_pragma() {
        let f = run("fn bad() { panic!(\"boom\"); }");
        assert_eq!(lints_of(&f), vec!["panic-free"]);
        let f = run(
            "fn ok() {\n// dash-analyze::allow(panic-free): documented contract\npanic!(\"x\"); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_flagged_slicing_not() {
        let f = run("fn a(v: &[u32], i: usize) -> u32 { v[i] }");
        assert_eq!(lints_of(&f), vec!["secure-indexing"]);
        let f = run("fn b(v: &[u32]) -> &[u32] { &v[1..3] }");
        assert!(f.is_empty(), "{f:?}");
        let f = run("fn c() -> Vec<u32> { vec![1, 2] }");
        assert!(f.is_empty(), "{f:?}");
        let f = run("#[derive(Clone)]\nstruct S { a: [u32; 4] }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn disclosure_requires_record_or_label() {
        let leaky = "fn leaky(ctx: &mut Ctx) { let v = all_gather_f64(ctx, t, &x); }";
        assert_eq!(lints_of(&run(leaky)), vec!["disclosure-completeness"]);
        let ok = "fn ok(ctx: &mut Ctx) { ctx.audit().record_aggregate(\"l\", 1); \
                  let v = all_gather_f64(ctx, t, &x); }";
        assert!(run(ok).is_empty());
        let labelled =
            "fn ok2(ctx: &mut Ctx) { open_field(ctx, &s, Some(\"l\")).unwrap_or_default(); }";
        assert!(run(labelled).is_empty());
        let unlabelled = "fn bad2(ctx: &mut Ctx) { open_field(ctx, &s, None).ok(); }";
        assert_eq!(lints_of(&run(unlabelled)), vec!["disclosure-completeness"]);
    }

    #[test]
    fn audited_open_primitives_count_as_recording() {
        // `open_via` / `open_local` record into the DisclosureLog at the
        // moment of opening, so a function using them to account a nearby
        // opening call is complete.
        let via = "fn finish(ctx: &mut Ctx, s: Secret<Vec<R64>>) { \
                   let v = exchange_sum_ring(ctx, t, &x); \
                   s.open_via(ctx.audit(), \"sum\", OpenMode::Aggregate(\"sum\")); }";
        assert!(run(via).is_empty());
        let local = "fn finish2(ctx: &mut Ctx, s: Secret<R64>) { \
                     let v = exchange_sum_ring(ctx, t, &x); \
                     let _ = ctx.open_local(s, Some(\"sum\")); }";
        assert!(run(local).is_empty());
    }

    #[test]
    fn primitive_layer_itself_exempt() {
        let src = "fn broadcast_ring(&mut self, tag: u32) { self.send(tag); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn derive_debug_on_leaf_secret_flagged() {
        let f = run("#[derive(Debug, Clone)]\npub struct BeaverTriple { pub a: F61 }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        // Container with an innocuous name and fields: fine.
        let f = run("#[derive(Debug)]\npub struct Config { pub bits: u32 }");
        assert!(f.is_empty(), "{f:?}");
        // Secret-named field marks a leaf even with a neutral type name.
        let f = run("#[derive(Debug)]\nstruct Buf { mask_words: Vec<u64> }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
    }

    #[test]
    fn print_and_secret_formatting_flagged() {
        let f = run("fn bad(x: u32) { println!(\"{x}\"); }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        let f = run("fn bad2(qty_share: &[F61]) { debug_assert_eq!(qty_share.len(), 3); }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        let f = run("fn ok(label: &str, n: usize) -> String { format!(\"{label}: {n}\") }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inline_format_capture_is_seen_inside_the_string() {
        // `format!("{mask:?}")` mentions the secret only inside the
        // string literal — invisible to a token scan, caught on the AST.
        let f = run("fn bad(mask: u64) -> String { format!(\"{mask:?}\") }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        let f = run("fn ok(label: &str) -> String { format!(\"{label}\") }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trace_sink_with_secret_argument_flagged() {
        // Counts and enum variants are fine.
        let f = run("fn ok(ctx: &Ctx, n: u64) { ctx.trace_add(Counter::OpenedScalars, n); }");
        assert!(f.is_empty(), "{f:?}");
        // A secret-named value flowing into the sink is not.
        let f = run(
            "fn bad(ctx: &Ctx, qty_share: u64) { ctx.trace_add(Counter::BytesSent, qty_share); }",
        );
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        let f = run("fn bad2(ctx: &Ctx, mask: u64) { ctx.trace_span_at(\"block\", mask); }");
        assert_eq!(lints_of(&f), vec!["secret-taint"]);
        // Pragma escape hatch works for sinks too.
        let f = run("fn ok2(ctx: &Ctx, n_triples: u64) {\n\
             // dash-analyze::allow(secret-taint): count of triples, not their values\n\
             ctx.trace_add(Counter::TriplesConsumed, n_triples); }");
        assert!(f.is_empty(), "{f:?}");
        // In test code the sink is unrestricted.
        let f = run("#[cfg(test)]\nmod tests {\n#[test]\nfn t() { ctx.trace_add(C::B, mask); }\n}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stray_tag_const_flagged() {
        let f = run("pub const MY_TAG_BASE: u32 = 77;");
        assert_eq!(lints_of(&f), vec!["tag-range"]);
        let m = FileModel::parse("crates/mpc/src/tags.rs", "pub const MY_TAG_BASE: u32 = 77;");
        assert!(run_all(&m).is_empty());
    }
}
