//! Integration tests: the analyzer must (a) detect every seeded violation
//! in its fixture corpus, (b) pass cleanly over the real workspace with
//! the checked-in baseline, and (c) prove the live tag registry sound.

use dash_analyze::baseline::Baseline;
use dash_analyze::report::{judge, Levels};
use dash_analyze::{
    analyze_source, analyze_source_engine, analyze_workspace, analyze_workspace_engine, tags_check,
    Finding, TaintEngine,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Runs the secure-scope lints over a fixture as if it lived in the
/// secure scope.
fn run_fixture(name: &str) -> Vec<Finding> {
    analyze_source(name, &fixture(name), true)
}

fn count(findings: &[Finding], lint: &str) -> usize {
    findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn disclosure_fixture_detected() {
    let f = run_fixture("disclosure.rs");
    assert_eq!(count(&f, "disclosure-completeness"), 2, "{f:?}");
    let fns: Vec<&str> = f.iter().map(|x| x.function.as_str()).collect();
    assert!(fns.contains(&"leaky_gather"));
    assert!(fns.contains(&"leaky_open"));
    // The recorded/labelled/pragma'd/primitive functions are all clean.
    assert!(!fns.contains(&"recorded_gather"));
    assert!(!fns.contains(&"labelled_open"));
    assert!(!fns.contains(&"masked_difference_open"));
    assert!(!fns.contains(&"broadcast_scalars"));
}

#[test]
fn panic_fixture_detected() {
    let f = run_fixture("panics.rs");
    assert_eq!(count(&f, "panic-free"), 4, "{f:?}");
    let fns: Vec<&str> = f.iter().map(|x| x.function.as_str()).collect();
    for bad in ["take_unwrap", "take_expect", "boom", "pick"] {
        assert!(fns.contains(&bad), "missing {bad} in {fns:?}");
    }
    assert!(!fns.contains(&"graceful"));
    assert!(!fns.contains(&"documented_panic"));
    assert!(!fns.contains(&"tests_may_panic_freely"));
}

#[test]
fn taint_fixture_detected() {
    let f = run_fixture("taint.rs");
    assert_eq!(count(&f, "secret-taint"), 4, "{f:?}");
    let msgs: String = f
        .iter()
        .map(|x| x.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("LeakyTriple"));
    assert!(msgs.contains("PadBuffer"));
    assert!(msgs.contains("println!"));
    assert!(msgs.contains("qty_share"));
    assert!(
        !msgs.contains("ScanConfig"),
        "containers must not be flagged"
    );
}

#[test]
fn cross_taint_fixture_detected() {
    let f = run_fixture("cross_taint.rs");
    assert_eq!(count(&f, "cross-function-taint"), 2, "{f:?}");
    let fns: Vec<&str> = f.iter().map(|x| x.function.as_str()).collect();
    assert!(fns.contains(&"report"), "{fns:?}");
    assert!(fns.contains(&"report_inline"), "{fns:?}");
    // Audited open sanitizes; counts and test code are free.
    assert!(!fns.contains(&"report_opened"));
    assert!(!fns.contains(&"report_count"));
    assert!(!fns.contains(&"tests_may_format_freely"));
}

/// Cross-taint findings from one engine over a fixture.
fn cross_taint(name: &str, engine: TaintEngine) -> Vec<Finding> {
    analyze_source_engine(name, &fixture(name), true, engine)
        .into_iter()
        .filter(|f| f.lint == "cross-function-taint")
        .collect()
}

#[test]
fn field_projection_leak_caught_by_ast_missed_by_token() {
    let ast = cross_taint("field_leak.rs", TaintEngine::Ast);
    assert_eq!(ast.len(), 1, "{ast:?}");
    assert_eq!(ast[0].function, "describe_payload");
    assert!(
        ast[0].message.contains("field projection"),
        "{}",
        ast[0].message
    );
    // The token engine has no struct-field index: documented miss.
    let token = cross_taint("field_leak.rs", TaintEngine::Token);
    assert!(
        token.is_empty(),
        "token engine unexpectedly caught: {token:?}"
    );
}

#[test]
fn closure_capture_leak_caught_by_ast_missed_by_token() {
    let ast = cross_taint("closure_leak.rs", TaintEngine::Ast);
    let fns: Vec<&str> = ast.iter().map(|f| f.function.as_str()).collect();
    assert_eq!(ast.len(), 2, "{ast:?}");
    assert!(fns.contains(&"leak_capture"), "{fns:?}");
    assert!(fns.contains(&"leak_combinator"), "{fns:?}");
    assert!(!fns.contains(&"clean_combinator"), "{fns:?}");
    // The token engine sees neither the capture nor the combinator
    // parameter: documented miss.
    let token = cross_taint("closure_leak.rs", TaintEngine::Token);
    assert!(
        token.is_empty(),
        "token engine unexpectedly caught: {token:?}"
    );
}

#[test]
fn fake_audited_open_caught_by_ast_missed_by_token() {
    let ast = cross_taint("dispatch_leak.rs", TaintEngine::Ast);
    assert_eq!(ast.len(), 1, "{ast:?}");
    assert_eq!(ast[0].function, "leak_dispatch");
    // The token engine sanitizes on the bare name `open_via`: documented
    // miss.
    let token = cross_taint("dispatch_leak.rs", TaintEngine::Token);
    assert!(
        token.is_empty(),
        "token engine unexpectedly caught: {token:?}"
    );
}

/// The acceptance gate for the seeded fixtures: judged at deny-all with
/// no baseline, each leak fixture must block.
#[test]
fn leak_fixtures_block_at_deny_all() {
    let mut levels = Levels::default();
    levels.set("all", dash_analyze::Level::Deny).unwrap();
    for name in ["field_leak.rs", "closure_leak.rs", "dispatch_leak.rs"] {
        let findings = analyze_source(name, &fixture(name), true);
        let o = judge(findings, &levels, &Baseline::default());
        assert!(o.blocking > 0, "{name} must block at deny-all");
    }
}

/// Differential safety net over the real workspace: the AST engine must
/// report a superset of the token engine's cross-function-taint sites
/// (both are empty today, and the superset property must hold as code
/// grows).
#[test]
fn ast_engine_covers_token_engine_on_workspace() {
    let root = workspace_root();
    let token = analyze_workspace_engine(&root, TaintEngine::Token).unwrap();
    let ast = analyze_workspace_engine(&root, TaintEngine::Ast).unwrap();
    let sites = |fs: &[Finding]| -> Vec<(String, usize)> {
        fs.iter()
            .filter(|f| f.lint == "cross-function-taint")
            .map(|f| (f.file.clone(), f.line))
            .collect()
    };
    let token_sites = sites(&token);
    let ast_sites = sites(&ast);
    let missed: Vec<_> = token_sites
        .iter()
        .filter(|s| !ast_sites.contains(s))
        .collect();
    assert!(
        missed.is_empty(),
        "AST engine lost token-engine findings: {missed:?}"
    );
}

#[test]
fn indexing_fixture_detected() {
    let f = run_fixture("indexing.rs");
    assert_eq!(count(&f, "secure-indexing"), 3, "{f:?}");
    assert!(f
        .iter()
        .all(|x| x.function == "first" || x.function == "pick"));
}

#[test]
fn constant_time_fixture_detected() {
    let f = run_fixture("ct_violations.rs");
    assert_eq!(count(&f, "constant-time"), 7, "{f:?}");
    let flagged: Vec<&str> = f
        .iter()
        .filter(|x| x.lint == "constant-time")
        .map(|x| x.function.as_str())
        .collect();
    for bad in [
        "branchy_reduce",
        "secret_mod",
        "table_lookup",
        "compare_shares",
        "sign_match",
        "local_leak",
        "div_leak",
    ] {
        assert!(flagged.contains(&bad), "missing {bad} in {flagged:?}");
    }
    // Branch-free arithmetic, public shape metadata, pragma'd Option
    // branches, and test code must all stay clean.
    for good in [
        "branchless_reduce",
        "ge_mask",
        "public_branch",
        "len_check",
        "checked_inverse",
        "next_mask",
        "assert_reduced",
    ] {
        assert!(!flagged.contains(&good), "false positive on {good}");
    }
}

#[test]
fn stray_tag_fixture_detected() {
    let f = run_fixture("stray_tag.rs");
    assert_eq!(count(&f, "tag-range"), 1, "{f:?}");
    assert!(f[0].message.contains("SIDE_CHANNEL_TAG_BASE"));
}

#[test]
fn broken_registry_fixture_detected() {
    let f = tags_check::check_tags_source("bad_tags.rs", &fixture("bad_tags.rs"));
    let msgs: String = f
        .iter()
        .map(|x| x.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(msgs.contains("overlap"), "{msgs}");
    assert!(msgs.contains("gap"), "{msgs}");
    assert!(msgs.contains("u32::MAX"), "{msgs}");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a workspace root two levels up")
        .to_path_buf()
}

/// The live registry in dash_mpc::tags must prove sound statically.
#[test]
fn live_tag_registry_sound() {
    let src = std::fs::read_to_string(workspace_root().join("crates/mpc/src/tags.rs")).unwrap();
    let f = tags_check::check_tags_source("crates/mpc/src/tags.rs", &src);
    assert!(f.is_empty(), "live registry findings: {f:?}");
    let ranges = tags_check::parse_registry(&src).unwrap();
    assert_eq!(ranges.len(), 4);
    assert_eq!(ranges[0].name, "reserved");
    assert_eq!(ranges[3].last, u64::from(u32::MAX));
}

/// The gate the repo actually ships under: the full workspace analysis,
/// judged with the checked-in baseline at deny-all, must pass. This is
/// the same invocation `scripts/check.sh` runs.
#[test]
fn workspace_clean_under_checked_in_baseline() {
    let root = workspace_root();
    let findings = analyze_workspace(&root).expect("workspace walk");
    let baseline_src = std::fs::read_to_string(root.join("analyze-baseline.json"))
        .expect("checked-in analyze-baseline.json");
    let baseline = Baseline::parse(&baseline_src).expect("baseline parses");
    let mut levels = Levels::default();
    levels.set("all", dash_analyze::Level::Deny).unwrap();
    let outcome = judge(findings, &levels, &baseline);
    let blocking: Vec<_> = outcome
        .judged
        .iter()
        .filter(|j| !j.suppressed)
        .map(|j| {
            format!(
                "{}:{} {} — {}",
                j.finding.file, j.finding.line, j.finding.lint, j.finding.message
            )
        })
        .collect();
    assert_eq!(
        outcome.blocking,
        0,
        "unsuppressed findings:\n{}",
        blocking.join("\n")
    );
    assert_eq!(
        outcome.stale_baseline, 0,
        "baseline has stale entries; regenerate with --update-baseline"
    );
}

/// The burn-down is done and must stay done: the grandfathered baseline
/// is empty, so every lint (secure-indexing included) holds with no
/// suppressions at all. New code must fix findings or pragma them with a
/// written justification — re-baselining is not an option.
#[test]
fn baseline_is_empty_and_stays_empty() {
    let root = workspace_root();
    let baseline_src = std::fs::read_to_string(root.join("analyze-baseline.json")).unwrap();
    let baseline = Baseline::parse(&baseline_src).unwrap();
    assert!(
        baseline.entries.is_empty(),
        "analyze-baseline.json must stay empty; fix or pragma findings instead of baselining: \
         {:?}",
        baseline.entries
    );
}

/// The crash-recovery modules (supervised transport, chaos proxy,
/// checkpoint codec, checkpointed protocol driver) must sit inside the
/// deny-gated lint scope: a future scope refactor that silently drops
/// them would let panicking constructs back into exactly the code that
/// runs while links are down and state is half-restored.
#[test]
fn recovery_modules_stay_in_lint_scope() {
    let root = workspace_root();
    for rel in [
        "crates/mpc/src/tcp.rs",
        "crates/mpc/src/chaos.rs",
        "crates/core/src/secure/checkpoint.rs",
        "crates/core/src/secure/protocol.rs",
    ] {
        assert!(dash_analyze::in_scope(rel), "{rel} must stay deny-gated");
        assert!(
            root.join(rel).is_file(),
            "{rel} moved or was renamed; update this scope pin"
        );
    }
}

/// Satellite invariant: the panic-free lint holds with zero baseline
/// entries in the two hot-path files, and indeed everywhere.
#[test]
fn no_baselined_panics_in_hot_paths() {
    let root = workspace_root();
    let baseline_src = std::fs::read_to_string(root.join("analyze-baseline.json")).unwrap();
    let baseline = Baseline::parse(&baseline_src).unwrap();
    assert!(
        baseline.entries.iter().all(|e| e.lint != "panic-free"),
        "panic-free findings must be fixed, not baselined"
    );
    let findings = analyze_workspace(&root).unwrap();
    assert_eq!(
        findings.iter().filter(|f| f.lint == "panic-free").count(),
        0,
        "un-pragma'd panicking constructs in secure code"
    );
}
