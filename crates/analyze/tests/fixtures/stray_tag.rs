//! Seeded violation: a tag constant declared outside the registry.
//! Not compiled by cargo — parsed by the analyzer's integration tests.

/// VIOLATION: this belongs in dash_mpc::tags.
pub const SIDE_CHANNEL_TAG_BASE: u32 = 7_000;

/// OK: not a tag.
pub const WORD_BYTES: u32 = 8;
