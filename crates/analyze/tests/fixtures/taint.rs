//! Seeded violations for the secret-taint lint.
//! Not compiled by cargo — parsed by the analyzer's integration tests.

/// VIOLATION: a triple type deriving Debug would print its shares.
#[derive(Debug, Clone)]
pub struct LeakyTriple {
    pub a: F61,
    pub b: F61,
}

/// VIOLATION: a neutral name, but the field names secret material.
#[derive(Debug)]
struct PadBuffer {
    mask_words: Vec<u64>,
}

/// OK: container with innocuous fields may derive Debug.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    pub frac_bits: u32,
    pub seed: u64,
}

/// VIOLATION: printing in secure code.
fn chatty(n: usize) {
    println!("aggregated {n} rows");
}

/// VIOLATION: a secret-named identifier reaches an assertion's output.
fn check_share(qty_share: &[F61]) {
    debug_assert_eq!(qty_share.len(), 4, "bad share length");
}

/// OK: formatting public metadata only.
fn describe(label: &str, scalars: usize) -> String {
    format!("{label}: {scalars} scalars")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_inspect_secrets() {
        let share = vec![1u64];
        assert_eq!(share.len(), 1);
        println!("{share:?}");
    }
}
