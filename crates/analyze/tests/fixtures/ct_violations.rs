//! Seeded `constant-time` violations. Each bad function below must be
//! flagged exactly once; the clean/pragma'd/test functions must not be.
//! The `ct_` filename prefix puts this fixture in the lint's scope as an
//! element ("word") module, so raw `u64` parameters count as secret.

const M: u64 = (1 << 61) - 1;

struct F61(u64);
struct R64(u64);
struct Prg;

// BAD 1: data-dependent branch in a reduction.
fn branchy_reduce(v: u64) -> u64 {
    if v >= M { v.wrapping_sub(M) } else { v }
}

// BAD 2: `%` is variable-time division in disguise.
fn secret_mod(x: F61, m: u64) -> u64 {
    x.0 % m
}

// BAD 3: secret-indexed table lookup (cache-timing leak).
fn table_lookup(x: F61, tbl: &[u64; 8]) -> u64 {
    tbl[(x.0 & 7) as usize]
}

// BAD 4: comparison of share words.
fn compare_shares(a: R64, b: R64) -> bool {
    a.0 < b.0
}

// BAD 5: `match` scrutinee reads a share.
fn sign_match(x: F61) -> i32 {
    match x.0 {
        0 => 0,
        _ => 1,
    }
}

// Element-producing helper: seeds the call-graph closure.
fn next_mask(_prg: &mut Prg) -> R64 {
    R64(7)
}

// BAD 6: local bound from an element-producing call, then branched on.
fn local_leak(prg: &mut Prg) -> u64 {
    let s = next_mask(prg);
    if s.0 > 10 { 1 } else { 0 }
}

// BAD 7: plain division of a share word.
fn div_leak(x: F61) -> u64 {
    x.0 / 4
}

// CLEAN: branch-free mask arithmetic — the shapes the lint demands.
fn branchless_reduce(v: u64) -> u64 {
    let folded = (v >> 61).wrapping_add(v & M);
    folded.wrapping_sub(M & ge_mask(folded, M))
}

fn ge_mask(a: u64, b: u64) -> u64 {
    let d = a.wrapping_sub(b);
    !((((!a) & b) | (((!a) | b) & d)) >> 63).wrapping_neg()
}

// CLEAN: `usize` counts are public control flow even here.
fn public_branch(n: usize) -> usize {
    if n > 4 { 1 } else { 0 }
}

// CLEAN: lengths are public shape metadata; `.len()` sanitizes.
fn len_check(shares: &[R64]) -> usize {
    if shares.is_empty() { 0 } else { shares.len() }
}

// CLEAN: pragma'd — an Option return is inherently a public branch.
// dash-analyze::allow(constant-time): invertibility is publicly observable
fn checked_inverse(x: F61) -> Option<F61> {
    if x.0 == 0 { None } else { Some(F61(x.0)) }
}

#[cfg(test)]
mod tests {
    // CLEAN: test code may branch on element values freely.
    fn assert_reduced(v: u64) -> bool {
        v < super::M
    }
}
