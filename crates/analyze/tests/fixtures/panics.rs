//! Seeded violations for the panic-free lint.
//! Not compiled by cargo — parsed by the analyzer's integration tests.

/// VIOLATION: unwrap on the hot path.
fn take_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// VIOLATION: expect on the hot path.
fn take_expect(v: Option<u32>) -> u32 {
    v.expect("always present")
}

/// VIOLATION: explicit panic.
fn boom(flag: bool) {
    if flag {
        panic!("protocol desync");
    }
}

/// VIOLATION: unreachable in a match arm.
fn pick(mode: u8) -> u8 {
    match mode {
        0 => 1,
        _ => unreachable!("handled above"),
    }
}

/// OK: the panic-free combinators do not trigger.
fn graceful(v: Option<u32>) -> u32 {
    v.unwrap_or(0).max(v.unwrap_or_else(|| 1)).max(v.unwrap_or_default())
}

/// OK: pragma'd documented contract.
fn documented_panic(v: Option<u32>) -> u32 {
    // dash-analyze::allow(panic-free): test-facing runner contract.
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        Some(1u32).unwrap();
        assert!(true);
    }
}
