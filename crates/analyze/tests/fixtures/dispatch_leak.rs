//! Seeded violation: a look-alike `open_via` on the wrong type.
//!
//! The token engine sanitizes by bare identifier, so any method named
//! `open_via` ends a taint chain — including this one, which merely
//! exposes the inner secret without recording anything. The AST engine
//! resolves the receiver type: `RoundState::open_via` is *defined* here
//! and `RoundState` is not an audited type, so the call is an ordinary
//! method whose fixpoint verdict (returns projected secret material) is
//! tainted, and the formatter downstream is flagged.

pub struct RoundState {
    pub inner: Secret<Vec<R64>>,
}

impl RoundState {
    /// Same name as the audited primitive, none of its auditing.
    pub fn open_via(&self) -> Vec<R64> {
        self.inner.expose()
    }
}

/// LEAK: `vals` comes from the fake open; the only sink mention is the
/// inline capture.
fn leak_dispatch(st: RoundState, out: &mut Vec<String>) {
    let vals = st.open_via();
    out.push(format!("{vals:?}"));
}
