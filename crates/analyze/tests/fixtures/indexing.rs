//! Seeded violations for the secure-indexing lint.
//! Not compiled by cargo — parsed by the analyzer's integration tests.

/// VIOLATION: direct indexing.
fn first(v: &[u32]) -> u32 {
    v[0]
}

/// VIOLATION: chained indexing (two sites).
fn pick(grid: &[Vec<u32>], i: usize, j: usize) -> u32 {
    grid[i][j]
}

/// OK: range slicing, macros, attributes, array types.
#[derive(Clone)]
struct Fixed {
    words: [u64; 4],
}

fn tail(v: &[u32]) -> &[u32] {
    &v[1..]
}

fn build() -> Vec<u32> {
    vec![1, 2, 3]
}
