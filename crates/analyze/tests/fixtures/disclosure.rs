//! Seeded violations for the disclosure-completeness lint.
//! Not compiled by cargo — parsed by the analyzer's integration tests.

/// VIOLATION: opens an aggregate without recording the disclosure.
fn leaky_gather(ctx: &mut PartyCtx) -> Vec<f64> {
    let tag = ctx.fresh_tag();
    all_gather_f64(ctx, tag, &[1.0]).unwrap_or_default()
}

/// VIOLATION: opens shares with no label and no record.
fn leaky_open(ctx: &mut PartyCtx, shares: &[F61]) {
    let _ = open_field(ctx, shares, None);
}

/// OK: records the opening in the same function.
fn recorded_gather(ctx: &mut PartyCtx) -> Vec<f64> {
    ctx.audit().record_aggregate("totals", 1);
    let tag = ctx.fresh_tag();
    all_gather_f64(ctx, tag, &[1.0]).unwrap_or_default()
}

/// OK: the primitive records internally when handed a label.
fn labelled_open(ctx: &mut PartyCtx, shares: &[F61]) {
    let _ = open_field(ctx, shares, Some("labelled products"));
}

/// OK: pragma documents the by-design unrecorded opening.
fn masked_difference_open(ctx: &mut PartyCtx, shares: &[F61]) {
    // dash-analyze::allow(disclosure-completeness): uniform one-time-pad
    // differences reveal nothing by construction.
    let _ = open_field(ctx, shares, None);
}

/// OK: broadcast from inside the primitive layer itself.
fn broadcast_scalars(ctx: &mut PartyCtx, v: &[f64]) {
    send_everywhere(ctx, v);
}
