//! A deliberately broken tag registry: the `low`/`mid` ranges overlap,
//! there is a gap before `high`, and the space does not reach u32::MAX.
//! Parsed (never compiled) by the analyzer's integration tests.

pub const LOW_LAST: u32 = 100;
pub const MID_FIRST: u32 = 50;
pub const MID_LAST: u32 = 1 << 10;
pub const HIGH_FIRST: u32 = MID_LAST + 10;

pub const REGISTRY: [TagRange; 3] = [
    TagRange {
        name: "low",
        first: 0,
        last: LOW_LAST,
    },
    TagRange {
        name: "mid",
        first: MID_FIRST,
        last: MID_LAST,
    },
    TagRange {
        name: "high",
        first: HIGH_FIRST,
        last: 1_000_000,
    },
];
