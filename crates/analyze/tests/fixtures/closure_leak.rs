//! Seeded violation: closure-capture and combinator-body leaks.
//!
//! Neither leak mentions a tainted name inside the macro parentheses the
//! token engine scans: the first hides the secret behind a captured
//! closure called at the sink, the second behind a combinator parameter
//! whose only appearance is an inline format-string capture. The AST
//! engine propagates taint into closure captures and through combinator
//! parameters on tainted receivers, and catches both.

pub struct RoundBuf {
    pub label: String,
    pub rows: Secret<Vec<R64>>,
}

/// LEAK: `grab` captures the secret-bearing projection; calling it at
/// the sink yields share material straight into the formatter.
fn leak_capture(buf: RoundBuf, out: &mut Vec<String>) {
    let grab = move || buf.rows;
    out.push(format!("{:?}", grab()));
}

/// LEAK: the combinator body's parameter is a projection of the tainted
/// receiver; the only mention is the inline capture inside the string.
fn leak_combinator(s: &Secret<Vec<R64>>, out: &mut Vec<String>) {
    s.map(|row| out.push(format!("{row:?}")));
}

/// Clean: the same shape over public words taints nothing.
fn clean_combinator(xs: &[u64], out: &mut Vec<String>) {
    xs.iter().map(|x| out.push(format!("{x}"))).count();
}
