//! Fixture: secret material escaping through a call chain.
//!
//! `draw_noise` returns `Secret<Vec<R64>>`; `collect_summary` hides the
//! value inside a struct with an innocuous declared type; `report`
//! finally Debug-formats the struct. No single expression mixes a
//! secret-named identifier with a formatter, so the token-level
//! `secret-taint` lint cannot see it — only the call-graph closure can.

pub struct Summary {
    pub label: &'static str,
    pub payload: Secret<Vec<R64>>,
}

/// Seed: declared return type mentions `Secret`.
pub fn draw_noise(prg: &mut PartyPrg) -> Secret<Vec<R64>> {
    Secret::new(prg.ring_vec(8))
}

/// Propagation: returns a value, calls a tainted fn, never opens.
pub fn collect_summary(prg: &mut PartyPrg) -> Summary {
    Summary {
        label: "round",
        payload: draw_noise(prg),
    }
}

/// Sink: formats a local bound (transitively) from a secret-returning
/// call. VIOLATION — cross-function-taint.
pub fn report(prg: &mut PartyPrg) -> String {
    let stats = collect_summary(prg);
    format!("{:?}", stats)
}

/// Sink via inline capture of a moved local. VIOLATION —
/// cross-function-taint.
pub fn report_inline(prg: &mut PartyPrg) {
    let stats = collect_summary(prg);
    let renamed = stats;
    println!("{renamed:?}");
}

/// Clean: the chain passes an audited open before formatting, so the
/// formatted value is public by construction.
pub fn report_opened(ctx: &mut PartyCtx, prg: &mut PartyPrg) -> Result<String, MpcError> {
    let shares = draw_noise(prg);
    let total = ctx.open_local(shares, Some("noise-total"));
    Ok(format!("total = {:?}", total))
}

/// Clean: formatting a count is fine — the local is not bound from a
/// tainted call.
pub fn report_count(prg: &mut PartyPrg) -> String {
    let n = prg.rounds();
    format!("{n} rounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_format_freely() {
        let mut prg = PartyPrg::seeded(7);
        let stats = collect_summary(&mut prg);
        println!("{stats:?}");
    }
}
