//! Seeded violation: field-projection leak through a secret-bearing
//! wrapper struct.
//!
//! `Pkt` never mentions `Secret` in any function signature here, so the
//! token-stream taint engine has nothing to seed on and misses the leak
//! entirely. The AST engine closes the struct-field index transitively
//! (`Pkt.share_vec: Secret<…>`), tracks the projection per-path, and
//! flags exactly the secret field — the public sibling stays clean.

pub struct Pkt {
    pub label: String,
    pub share_vec: Secret<Vec<R64>>,
}

/// Clean: formats only the public metadata field of the same value.
fn describe_label(pkt: &Pkt, out: &mut Vec<String>) {
    out.push(format!("packet {}", pkt.label));
}

/// LEAK: projects the `Secret`-bearing field into a formatter without an
/// audited open.
fn describe_payload(pkt: &Pkt, out: &mut Vec<String>) {
    out.push(format!("payload {:?}", pkt.share_vec));
}
