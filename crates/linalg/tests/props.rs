//! Property-based tests for the linear-algebra substrate.

use dash_linalg::{
    cholesky_upper, combine_r_factors, gemm_at_b, invert_upper, qr_r_factor, qr_thin, solve_upper,
    tsqr_r, Matrix,
};
use proptest::prelude::*;

/// Strategy: a tall matrix with n in [k, k+16], k in [1, 6], entries in
/// [-10, 10].
fn tall_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=6).prop_flat_map(|k| {
        (k..k + 17).prop_flat_map(move |n| {
            proptest::collection::vec(-10.0f64..10.0, n * k)
                .prop_map(move |data| Matrix::from_column_major(n, k, data).unwrap())
        })
    })
}

/// Strategy: an SPD matrix built as BᵀB + I.
fn spd_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5).prop_flat_map(|k| {
        proptest::collection::vec(-3.0f64..3.0, (k + 3) * k).prop_map(move |data| {
            let b = Matrix::from_column_major(k + 3, k, data).unwrap();
            let mut g = gemm_at_b(&b, &b).unwrap();
            for i in 0..k {
                let v = g.get(i, i);
                g.set(i, i, v + 1.0);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstruction_and_orthonormality(a in tall_matrix()) {
        let f = qr_thin(&a).unwrap();
        // QᵀQ = I
        let qtq = gemm_at_b(&f.q, &f.q).unwrap();
        let eye = Matrix::identity(a.cols());
        prop_assert!(qtq.max_abs_diff(&eye).unwrap() < 1e-9);
        // QR = A (relative to the magnitude of A)
        let qr = dash_linalg::ops::gemm(&f.q, &f.r).unwrap();
        let scale = 1.0 + dash_linalg::frobenius_norm(&a);
        prop_assert!(qr.max_abs_diff(&a).unwrap() / scale < 1e-10);
        // diag(R) >= 0
        for i in 0..a.cols() {
            prop_assert!(f.r.get(i, i) >= 0.0);
        }
    }

    #[test]
    fn r_factor_matches_gram_cholesky(a in tall_matrix()) {
        let r = qr_r_factor(&a).unwrap();
        let gram = gemm_at_b(&a, &a).unwrap();
        // Cholesky can legitimately fail when the random matrix is
        // near-rank-deficient; only compare when it succeeds.
        if let Ok(u) = cholesky_upper(&gram) {
            let scale = 1.0 + dash_linalg::frobenius_norm(&gram);
            prop_assert!(r.max_abs_diff(&u).unwrap() / scale < 1e-7);
        }
    }

    #[test]
    fn tsqr_agrees_with_pooled_qr(a in tall_matrix(), splits in 2usize..5) {
        let n = a.rows();
        let k = a.cols();
        // Only split when each part can stay tall.
        prop_assume!(n >= splits * k);
        let per = n / splits;
        let mut blocks = Vec::new();
        let mut start = 0;
        for i in 0..splits {
            let end = if i + 1 == splits { n } else { start + per };
            blocks.push(a.row_block(start, end));
            start = end;
        }
        let tree = tsqr_r(&blocks).unwrap();
        let direct = qr_r_factor(&a).unwrap();
        let scale = 1.0 + dash_linalg::frobenius_norm(&direct);
        prop_assert!(tree.max_abs_diff(&direct).unwrap() / scale < 1e-8);
    }

    #[test]
    fn combine_r_commutes(a in tall_matrix(), b_seed in 0u64..1000) {
        // R factor of [A; B] equals that of [B; A]: the paper's claim that
        // the R factors depend only on the product-preserving isometry orbit.
        let k = a.cols();
        let n = a.rows();
        let mut s = b_seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let b = Matrix::from_fn(n.max(k), k, |_, _| next());
        let ra = qr_r_factor(&a).unwrap();
        let rb = qr_r_factor(&b).unwrap();
        let ab = combine_r_factors(&ra, &rb).unwrap();
        let ba = combine_r_factors(&rb, &ra).unwrap();
        let scale = 1.0 + dash_linalg::frobenius_norm(&ab);
        prop_assert!(ab.max_abs_diff(&ba).unwrap() / scale < 1e-8);
    }

    #[test]
    fn upper_inverse_solves(u_src in spd_matrix()) {
        let u = cholesky_upper(&u_src).unwrap();
        let inv = invert_upper(&u).unwrap();
        let prod = dash_linalg::ops::gemm(&u, &inv).unwrap();
        let eye = Matrix::identity(u.rows());
        prop_assert!(prod.max_abs_diff(&eye).unwrap() < 1e-8);
    }

    #[test]
    fn solve_upper_residual(g in spd_matrix(), seed in 0u64..100) {
        let u = cholesky_upper(&g).unwrap();
        let n = u.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let x = solve_upper(&u, &b).unwrap();
        // U x should reproduce b.
        for (i, &bi) in b.iter().enumerate() {
            let mut s = 0.0;
            for (j, &xj) in x.iter().enumerate().take(n).skip(i) {
                s += u.get(i, j) * xj;
            }
            prop_assert!((s - bi).abs() < 1e-8 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn cholesky_diag_positive(g in spd_matrix()) {
        let u = cholesky_upper(&g).unwrap();
        for i in 0..u.rows() {
            prop_assert!(u.get(i, i) > 0.0);
        }
    }

    #[test]
    fn vstack_row_block_roundtrip(a in tall_matrix(), cut_frac in 0.0f64..1.0) {
        let n = a.rows();
        let cut = ((n as f64) * cut_frac) as usize;
        let top = a.row_block(0, cut);
        let bot = a.row_block(cut, n);
        let back = Matrix::vstack(&[&top, &bot]).unwrap();
        prop_assert_eq!(back, a);
    }
}
