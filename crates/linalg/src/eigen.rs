//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Needed by the kinship/LMM path (§5 assumes "an eigendecomposition of
//! the kinship kernel can be shared" — someone has to compute it) and as
//! the plaintext reference for the secure PCA extension. Jacobi is
//! simple, backward-stable, and for the matrix sizes here (kinship blocks
//! and K×K/R×R Gram matrices up to a few thousand) its O(n³) sweeps are
//! perfectly adequate.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix by cyclic Jacobi
/// rotations.
///
/// `a` must be square and (numerically) symmetric — asymmetry beyond a
/// small tolerance is reported as an error rather than silently
/// symmetrized, because it usually indicates a caller bug.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    // Symmetry check, scaled.
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    for i in 0..n {
        for j in 0..i {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-8 * scale {
                return Err(LinalgError::DimensionMismatch {
                    op: "symmetric_eigen (matrix not symmetric)",
                    lhs: (i, j),
                    rhs: (j, i),
                });
            }
        }
    }

    let mut m = a.clone();
    // Enforce exact symmetry so rotations stay consistent.
    for i in 0..n {
        for j in 0..i {
            let avg = 0.5 * (m.get(i, j) + m.get(j, i));
            m.set(i, j, avg);
            m.set(j, i, avg);
        }
    }
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j).powi(2);
            }
        }
        if off.sqrt() <= 1e-14 * scale * n as f64 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle (Golub & Van Loan, sym. Schur 2x2).
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply J(p,q,θ)ᵀ M J(p,q,θ) in place.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Extract and sort descending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, (_, src)) in pairs.iter().enumerate() {
        vectors.col_mut(dst).copy_from_slice(v.col(*src));
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm, gemm_at_b};

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        // V diag(λ) Vᵀ
        let n = e.values.len();
        let mut vl = e.vectors.clone();
        for j in 0..n {
            for val in vl.col_mut(j) {
                *val *= e.values[j];
            }
        }
        gemm(&vl, &e.vectors.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn random_spd_reconstruction_and_orthogonality() {
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [3usize, 8, 20] {
            let b = Matrix::from_fn(n + 2, n, |_, _| next());
            let a = gemm_at_b(&b, &b).unwrap();
            let e = symmetric_eigen(&a).unwrap();
            // Descending, non-negative (SPD up to round-off).
            for w in e.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            assert!(e.values[n - 1] > -1e-9);
            // VᵀV = I.
            let vtv = gemm_at_b(&e.vectors, &e.vectors).unwrap();
            assert!(
                vtv.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-10,
                "n={n}"
            );
            // Reconstruction.
            let rec = reconstruct(&e);
            let scale = 1.0 + crate::ops::frobenius_norm(&a);
            assert!(rec.max_abs_diff(&a).unwrap() / scale < 1e-10, "n={n}");
        }
    }

    #[test]
    fn indefinite_matrix_supported() {
        // Symmetric but indefinite: eigenvalues of opposite signs.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!((e.values[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5][..],
            &[1.0, 3.0, -1.0][..],
            &[0.5, -1.0, 2.0][..],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = e.values.iter().sum();
        assert!((trace - 9.0).abs() < 1e-10);
        let sumsq: f64 = e.values.iter().map(|v| v * v).sum();
        let frob2 = crate::ops::self_dot(a.as_slice());
        assert!((sumsq - frob2).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&a).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn identity_eigen() {
        let e = symmetric_eigen(&Matrix::identity(5)).unwrap();
        assert!(e.values.iter().all(|&v| (v - 1.0).abs() < 1e-14));
    }
}
