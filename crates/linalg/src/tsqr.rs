//! TSQR — tall-and-skinny QR by tree reduction over row blocks.
//!
//! This is the "Tall and skinny QR factorizations in MapReduce
//! architectures" construction from the paper's footnote 2, and it is also
//! the mathematical heart of the multi-party QR step (§3): if the rows of
//! `C` are partitioned into blocks `C_1 … C_P` and each block has thin-QR
//! factor `R_k`, then the `R` factor of the stacked `S = [R_1; …; R_P]`
//! equals the `R` factor of `C` itself. The parties therefore only ever
//! exchange k×k triangles — never rows.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::qr_r_factor;

/// Combines two k×k (or generally tall) R factors into the R factor of
/// their vertical stack. One level of the TSQR tree; also the pairwise
/// combine of the paper's footnote-3 binary tree.
pub fn combine_r_factors(ra: &Matrix, rb: &Matrix) -> Result<Matrix, LinalgError> {
    let stacked = Matrix::vstack(&[ra, rb])?;
    qr_r_factor(&stacked)
}

/// Computes the R factor of the virtual vertical stack of `blocks` by
/// binary tree reduction.
///
/// Each block must have the same column count k and at least k rows.
/// The result is identical (to rounding, with the positive-diagonal
/// convention making signs exact) to `qr_r_factor(vstack(blocks))`.
pub fn tsqr_r(blocks: &[Matrix]) -> Result<Matrix, LinalgError> {
    if blocks.is_empty() {
        return Err(LinalgError::EmptyInput { op: "tsqr_r" });
    }
    // Leaf factorizations.
    let mut level: Vec<Matrix> = blocks.iter().map(qr_r_factor).collect::<Result<_, _>>()?;
    // Tree reduction: pair up, factor the stacks, repeat.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => next.push(combine_r_factors(a, b)?),
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1 or 2 items"),
            }
        }
        level = next;
    }
    Ok(level.pop().expect("non-empty by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(n: usize, k: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        Matrix::from_fn(n, k, |_, _| next())
    }

    #[test]
    fn tsqr_matches_direct_qr() {
        for (parts, seed) in [(2usize, 5u64), (3, 6), (4, 7), (7, 8)] {
            let k = 4;
            let blocks: Vec<Matrix> = (0..parts)
                .map(|i| rand_matrix(10 + 3 * i, k, seed + i as u64))
                .collect();
            let tree_r = tsqr_r(&blocks).unwrap();
            let refs: Vec<&Matrix> = blocks.iter().collect();
            let direct_r = qr_r_factor(&Matrix::vstack(&refs).unwrap()).unwrap();
            assert!(
                tree_r.max_abs_diff(&direct_r).unwrap() < 1e-10,
                "parts={parts}: diff {}",
                tree_r.max_abs_diff(&direct_r).unwrap()
            );
        }
    }

    #[test]
    fn single_block_is_plain_qr() {
        let a = rand_matrix(12, 3, 42);
        let via_tree = tsqr_r(std::slice::from_ref(&a)).unwrap();
        let direct = qr_r_factor(&a).unwrap();
        assert!(via_tree.max_abs_diff(&direct).unwrap() < 1e-14);
    }

    #[test]
    fn combine_is_associative_up_to_rounding() {
        let k = 3;
        let r1 = qr_r_factor(&rand_matrix(8, k, 1)).unwrap();
        let r2 = qr_r_factor(&rand_matrix(9, k, 2)).unwrap();
        let r3 = qr_r_factor(&rand_matrix(10, k, 3)).unwrap();
        let left = combine_r_factors(&combine_r_factors(&r1, &r2).unwrap(), &r3).unwrap();
        let right = combine_r_factors(&r1, &combine_r_factors(&r2, &r3).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            tsqr_r(&[]),
            Err(LinalgError::EmptyInput { op: "tsqr_r" })
        ));
    }

    #[test]
    fn mismatched_widths_rejected() {
        let a = rand_matrix(5, 2, 1);
        let b = rand_matrix(5, 3, 2);
        assert!(tsqr_r(&[a, b]).is_err());
    }

    #[test]
    fn short_block_rejected() {
        // A block with fewer rows than columns cannot be leaf-factored.
        let a = rand_matrix(2, 3, 1);
        assert!(tsqr_r(std::slice::from_ref(&a)).is_err());
    }
}
