//! Thin Householder QR.
//!
//! For a tall matrix `A` (n×k, n ≥ k) computes `A = Q R` with `Q` n×k having
//! orthonormal columns and `R` k×k upper triangular. The factorization uses
//! Householder reflections (backward-stable, unlike classical Gram-Schmidt)
//! and then normalizes signs so that `diag(R) ≥ 0`.
//!
//! The sign convention matters for the multi-party protocol: every party
//! derives `Q_k = C_k R⁻¹` from the *same* combined `R`, and the
//! aggregate-only secure mode recovers `R` as the Cholesky factor of
//! `CᵀC`, whose diagonal is positive by construction. Fixing
//! `diag(R) ≥ 0` everywhere makes all three derivations (direct QR, TSQR
//! tree, Cholesky) agree exactly instead of "up to column signs".

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::ops::dot;

/// Result of a thin QR factorization.
#[derive(Debug, Clone)]
pub struct ThinQr {
    /// n×k matrix with orthonormal columns.
    pub q: Matrix,
    /// k×k upper triangular factor with non-negative diagonal.
    pub r: Matrix,
}

/// In-place Householder factorization of `work` (n×k).
///
/// On return the upper triangle of the first k rows holds `R`; the strict
/// lower part of column `j` holds the tail of the Householder vector `v_j`
/// (with implicit `v_j[j] = 1`), and `betas[j]` its scaling.
fn householder_inplace(work: &mut Matrix, betas: &mut Vec<f64>) {
    let k = work.cols();
    betas.clear();
    for j in 0..k {
        // Build the reflector from work[j.., j].
        let col = work.col_mut(j);
        let (alpha, beta) = {
            let x = &col[j..];
            let sigma = dot(&x[1..], &x[1..]);
            let x0 = x[0];
            if sigma == 0.0 {
                // Already upper triangular in this column; identity reflector.
                (x0, 0.0)
            } else {
                let mu = (x0 * x0 + sigma).sqrt();
                // v0 = x0 - mu, computed without cancellation when x0 > 0;
                // with this choice H x = +mu e1 in both branches.
                let v0 = if x0 <= 0.0 {
                    x0 - mu
                } else {
                    -sigma / (x0 + mu)
                };
                let beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
                // Normalize so v[0] == 1.
                for xi in &mut col[j + 1..] {
                    *xi /= v0;
                }
                (mu, beta)
            }
        };
        betas.push(beta);
        work.set(j, j, alpha);
        if beta == 0.0 {
            continue;
        }
        // Apply (I - beta v vᵀ) to the trailing columns.
        let (vcol_full, rest_start) = (j, j + 1);
        for c in rest_start..k {
            // w = vᵀ a  (v has implicit leading 1 at row j)
            let (vcol, acol) = work.two_cols_mut(vcol_full, c);
            let v_tail = &vcol[j + 1..];
            let mut w = acol[j];
            w += dot(v_tail, &acol[j + 1..]);
            let bw = beta * w;
            acol[j] -= bw;
            for (ai, vi) in acol[j + 1..].iter_mut().zip(v_tail) {
                *ai -= bw * vi;
            }
        }
    }
}

/// Extracts the k×k upper-triangular `R` from the factored workspace.
fn extract_r(work: &Matrix) -> Matrix {
    let k = work.cols();
    Matrix::from_fn(k, k, |i, j| if i <= j { work.get(i, j) } else { 0.0 })
}

/// Forms the thin `Q` (n×k) by applying the stored reflectors to the first
/// k columns of the identity, in reverse order.
fn form_q(work: &Matrix, betas: &[f64]) -> Matrix {
    let n = work.rows();
    let k = work.cols();
    let mut q = Matrix::zeros(n, k);
    for j in 0..k {
        q.set(j, j, 1.0);
    }
    for j in (0..k).rev() {
        let beta = betas[j];
        if beta == 0.0 {
            continue;
        }
        let v_tail: &[f64] = &work.col(j)[j + 1..];
        for c in 0..k {
            let qc = q.col_mut(c);
            let mut w = qc[j];
            w += dot(v_tail, &qc[j + 1..]);
            let bw = beta * w;
            qc[j] -= bw;
            for (qi, vi) in qc[j + 1..].iter_mut().zip(v_tail) {
                *qi -= bw * vi;
            }
        }
    }
    q
}

/// Flips signs so `diag(R) ≥ 0`, adjusting `Q` to keep `QR` unchanged.
fn normalize_signs(q: Option<&mut Matrix>, r: &mut Matrix) {
    let k = r.cols();
    let mut flips = Vec::new();
    for i in 0..k {
        if r.get(i, i) < 0.0 {
            flips.push(i);
            for j in i..k {
                let v = r.get(i, j);
                r.set(i, j, -v);
            }
        }
    }
    if let Some(q) = q {
        for &i in &flips {
            for v in q.col_mut(i) {
                *v = -*v;
            }
        }
    }
}

/// Thin QR factorization `A = QR` with `diag(R) ≥ 0`.
///
/// Errors with [`LinalgError::NotTall`] when `A` has more columns than rows.
/// Rank deficiency is *not* an error here — it surfaces as a (near-)zero
/// diagonal entry of `R`, which downstream triangular inversion reports as
/// [`LinalgError::Singular`].
pub fn qr_thin(a: &Matrix) -> Result<ThinQr, LinalgError> {
    if a.rows() < a.cols() {
        return Err(LinalgError::NotTall {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut work = a.clone();
    let mut betas = Vec::new();
    householder_inplace(&mut work, &mut betas);
    let mut r = extract_r(&work);
    let mut q = form_q(&work, &betas);
    normalize_signs(Some(&mut q), &mut r);
    Ok(ThinQr { q, r })
}

/// Computes only the `R` factor of the thin QR (what each party publishes
/// or secret-shares in the multi-party protocol — `Q` never leaves the
/// party).
pub fn qr_r_factor(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() < a.cols() {
        return Err(LinalgError::NotTall {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut work = a.clone();
    let mut betas = Vec::new();
    householder_inplace(&mut work, &mut betas);
    let mut r = extract_r(&work);
    normalize_signs(None, &mut r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm, gemm_at_b};

    fn rand_matrix(n: usize, k: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so this module does not need `rand`.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        Matrix::from_fn(n, k, |_, _| next())
    }

    fn assert_orthonormal(q: &Matrix, tol: f64) {
        let qtq = gemm_at_b(q, q).unwrap();
        let eye = Matrix::identity(q.cols());
        assert!(
            qtq.max_abs_diff(&eye).unwrap() < tol,
            "QᵀQ deviates from I by {}",
            qtq.max_abs_diff(&eye).unwrap()
        );
    }

    #[test]
    fn qr_reconstructs_input() {
        for (n, k, seed) in [(5, 3, 1), (10, 1, 2), (8, 8, 3), (200, 6, 4)] {
            let a = rand_matrix(n, k, seed);
            let ThinQr { q, r } = qr_thin(&a).unwrap();
            let qr = gemm(&q, &r).unwrap();
            assert!(
                qr.max_abs_diff(&a).unwrap() < 1e-10,
                "n={n} k={k}: |QR - A| = {}",
                qr.max_abs_diff(&a).unwrap()
            );
            assert_orthonormal(&q, 1e-12);
        }
    }

    #[test]
    fn r_is_upper_triangular_with_nonneg_diag() {
        let a = rand_matrix(20, 5, 7);
        let ThinQr { r, .. } = qr_thin(&a).unwrap();
        for i in 0..5 {
            assert!(r.get(i, i) >= 0.0, "diag {i} = {}", r.get(i, i));
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn r_only_matches_full_factorization() {
        let a = rand_matrix(30, 4, 11);
        let full = qr_thin(&a).unwrap();
        let r_only = qr_r_factor(&a).unwrap();
        assert!(full.r.max_abs_diff(&r_only).unwrap() < 1e-13);
    }

    #[test]
    fn wide_input_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(qr_thin(&a), Err(LinalgError::NotTall { .. })));
        assert!(qr_r_factor(&a).is_err());
    }

    #[test]
    fn already_triangular_input() {
        // Upper-triangular input with positive diagonal: R should equal it.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[0.0, 0.0]]).unwrap();
        let ThinQr { q, r } = qr_thin(&a).unwrap();
        assert!(
            r.max_abs_diff(&Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap())
                .unwrap()
                < 1e-14
        );
        assert_orthonormal(&q, 1e-14);
    }

    #[test]
    fn rank_deficient_produces_zero_diagonal_not_error() {
        // Two identical columns.
        let c0 = [1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_cols(&[&c0, &c0]).unwrap();
        let r = qr_r_factor(&a).unwrap();
        assert!(r.get(1, 1).abs() < 1e-12);
    }

    #[test]
    fn single_column_norm() {
        let a = Matrix::from_cols(&[&[3.0, 4.0]]).unwrap();
        let ThinQr { q, r } = qr_thin(&a).unwrap();
        assert!((r.get(0, 0) - 5.0).abs() < 1e-14);
        assert!((q.get(0, 0) - 0.6).abs() < 1e-14);
        assert!((q.get(1, 0) - 0.8).abs() < 1e-14);
    }

    #[test]
    fn qr_matches_cholesky_of_gram() {
        // R from QR must equal chol(AᵀA) given the positive-diagonal
        // convention — the identity the aggregate-only secure mode relies on.
        let a = rand_matrix(50, 4, 23);
        let r = qr_r_factor(&a).unwrap();
        let gram = gemm_at_b(&a, &a).unwrap();
        let u = crate::chol::cholesky_upper(&gram).unwrap();
        assert!(r.max_abs_diff(&u).unwrap() < 1e-10);
    }
}
