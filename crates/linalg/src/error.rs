//! Error type shared by all linear-algebra kernels.

use std::fmt;

/// Errors produced by the `dash-linalg` kernels.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger; shape errors name both operands.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Name of the operation that failed, e.g. `"gemv_t"`.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`; vectors are
        /// reported as `(len, 1)`.
        rhs: (usize, usize),
    },
    /// A factorization required more rows than columns (tall input) but the
    /// input was wide.
    NotTall { rows: usize, cols: usize },
    /// A matrix expected to be square was not.
    NotSquare { rows: usize, cols: usize },
    /// A triangular solve or inversion hit a (near-)zero pivot; the matrix is
    /// singular to working precision.
    Singular { pivot_index: usize, pivot: f64 },
    /// Cholesky hit a non-positive pivot: the input is not positive definite
    /// (e.g. the permanent covariates are collinear).
    NotPositiveDefinite { pivot_index: usize, pivot: f64 },
    /// An input that must be non-empty (e.g. the block list fed to TSQR) was
    /// empty.
    EmptyInput { op: &'static str },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotTall { rows, cols } => {
                write!(f, "factorization requires rows >= cols, got {rows}x{cols}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot_index, pivot } => write!(
                f,
                "matrix is singular to working precision (pivot {pivot_index} = {pivot:e})"
            ),
            LinalgError::NotPositiveDefinite { pivot_index, pivot } => write!(
                f,
                "matrix is not positive definite (pivot {pivot_index} = {pivot:e}); \
                 are the permanent covariates collinear?"
            ),
            LinalgError::EmptyInput { op } => write!(f, "{op}: empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation_and_shapes() {
        let e = LinalgError::DimensionMismatch {
            op: "gemv",
            lhs: (3, 4),
            rhs: (5, 1),
        };
        let s = e.to_string();
        assert!(s.contains("gemv"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x1"));
    }

    #[test]
    fn display_singular_names_pivot() {
        let e = LinalgError::Singular {
            pivot_index: 2,
            pivot: 0.0,
        };
        assert!(e.to_string().contains("pivot 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
