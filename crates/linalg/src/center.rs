//! Mean-centering utilities.
//!
//! §3 of the paper observes that adding an intercept covariate is equivalent
//! to translating `y` and each column of `C` to zero mean, and that adding a
//! *per-party* intercept (P batch-effect indicators) is equivalent to each
//! party centering its own rows independently. These helpers implement that
//! translation so callers can drop the intercept column and keep `C`
//! full-rank.

use crate::matrix::Matrix;

/// Returns the mean of each column.
pub fn column_means(a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    if n == 0 {
        return vec![0.0; a.cols()];
    }
    (0..a.cols())
        .map(|j| a.col(j).iter().sum::<f64>() / n as f64)
        .collect()
}

/// Subtracts each column's mean in place and returns the means that were
/// removed (useful for later un-centering or for auditing).
pub fn center_columns(a: &mut Matrix) -> Vec<f64> {
    let means = column_means(a);
    for (j, &m) in means.iter().enumerate() {
        for v in a.col_mut(j) {
            *v -= m;
        }
    }
    means
}

/// Subtracts the mean of a vector in place and returns it.
pub fn center_vector(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= m;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centering_zeroes_column_sums() {
        let mut a = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap();
        let means = center_columns(&mut a);
        assert_eq!(means, vec![2.0, 20.0]);
        for j in 0..2 {
            let s: f64 = a.col(j).iter().sum();
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(a.col(0), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn center_vector_returns_mean() {
        let mut v = vec![1.0, 3.0, 5.0];
        let m = center_vector(&mut v);
        assert_eq!(m, 3.0);
        assert_eq!(v, vec![-2.0, 0.0, 2.0]);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut v: Vec<f64> = vec![];
        assert_eq!(center_vector(&mut v), 0.0);
        let a = Matrix::zeros(0, 2);
        assert_eq!(column_means(&a), vec![0.0, 0.0]);
    }

    #[test]
    fn centering_is_idempotent() {
        let mut a = Matrix::from_fn(5, 2, |r, c| (r * (c + 1)) as f64);
        center_columns(&mut a);
        let before = a.clone();
        let second = center_columns(&mut a);
        assert!(second.iter().all(|m| m.abs() < 1e-12));
        assert!(a.max_abs_diff(&before).unwrap() < 1e-12);
    }
}
