//! Level-1/2/3 kernels used by the scan.
//!
//! These are deliberately simple loops: with contiguous column slices the
//! compiler auto-vectorizes them, and for the scan's shapes (K ≤ ~24,
//! N up to 10⁶) the memory traffic of reading `X` dominates anyway — see
//! Eq. (5) of the paper.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Dot product of two equal-length slices.
///
/// Accumulates in four independent partial sums so the loop pipelines well
/// and the result is deterministic for a given input (unlike a parallel
/// reduction).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..n {
        tail += a[j] * b[j];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// `x · x` — the paper's `dot(x)` helper from the R demo.
#[inline]
pub fn self_dot(a: &[f64]) -> f64 {
    dot(a, a)
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dense matrix–vector product `A v` (`A` is rows×cols, `v` has len cols).
///
/// Walks `A` column by column (its contiguous direction) accumulating
/// `Σ_j v_j A_:,j`.
pub fn gemv(a: &Matrix, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if v.len() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (v.len(), 1),
        });
    }
    let mut out = vec![0.0; a.rows()];
    for (j, &vj) in v.iter().enumerate() {
        if vj != 0.0 {
            axpy(vj, a.col(j), &mut out);
        }
    }
    Ok(out)
}

/// Transposed matrix–vector product `Aᵀ v` (`v` has len rows).
///
/// Each output element is a dot with a contiguous column — this is the
/// `Qᵀy` / `QᵀX_m` kernel at the heart of the scan.
pub fn gemv_t(a: &Matrix, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if v.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemv_t",
            lhs: a.shape(),
            rhs: (v.len(), 1),
        });
    }
    Ok((0..a.cols()).map(|j| dot(a.col(j), v)).collect())
}

/// `AᵀB` for column-major `A` (n×k) and `B` (n×m), producing k×m.
///
/// Every entry is a dot of two contiguous columns; the loop order streams
/// each column of `B` once against all columns of `A`, which for the scan's
/// `QᵀX` (k small, m large) reads `X` exactly once.
pub fn gemm_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemm_at_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let k = a.cols();
    let m = b.cols();
    let mut out = Matrix::zeros(k, m);
    for j in 0..m {
        let bj = b.col(j);
        let oj = out.col_mut(j);
        for (i, oij) in oj.iter_mut().enumerate() {
            *oij = dot(a.col(i), bj);
        }
    }
    Ok(out)
}

/// General product `A B` (rows_a×cols_a times cols_a×cols_b).
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for j in 0..b.cols() {
        let bj = b.col(j);
        let oj = out.col_mut(j);
        for (l, &blj) in bj.iter().enumerate() {
            if blj != 0.0 {
                axpy(blj, a.col(l), oj);
            }
        }
    }
    Ok(out)
}

/// Frobenius norm.
pub fn frobenius_norm(a: &Matrix) -> f64 {
    self_dot(a.as_slice()).sqrt()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    self_dot(a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn dot_matches_naive_all_lengths() {
        // Cover every tail length of the 4-way unrolled loop.
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(approx(dot(&a, &b), naive, 1e-12), "n={n}");
        }
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn gemv_and_gemv_t_agree_with_definition() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let av = gemv(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(av, vec![-1.0, -1.0, -1.0]);
        let atv = gemv_t(&a, &[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(atv, vec![-4.0, -4.0]);
    }

    #[test]
    fn gemv_shape_checked() {
        let a = Matrix::zeros(3, 2);
        assert!(gemv(&a, &[0.0; 3]).is_err());
        assert!(gemv_t(&a, &[0.0; 2]).is_err());
    }

    #[test]
    fn gemm_at_b_matches_transpose_gemm() {
        let a = Matrix::from_fn(4, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(4, 3, |r, c| (r as f64) - (c as f64));
        let fast = gemm_at_b(&a, &b).unwrap();
        let slow = gemm(&a.transpose(), &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::identity(3);
        assert!(gemm(&a, &i).unwrap().max_abs_diff(&a).unwrap() < 1e-15);
        assert!(gemm(&i, &a).unwrap().max_abs_diff(&a).unwrap() < 1e-15);
    }

    #[test]
    fn gemm_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(gemm(&a, &b).is_err());
        assert!(gemm_at_b(&a, &Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn frobenius_of_identity() {
        assert!(approx(frobenius_norm(&Matrix::identity(4)), 2.0, 1e-15));
    }

    #[test]
    fn norm2_pythagoras() {
        assert!(approx(norm2(&[3.0, 4.0]), 5.0, 1e-15));
    }
}
