//! Cholesky factorization (upper form).
//!
//! The aggregate-only secure mode never sees any party's `R_k`; it
//! secure-sums the k×k Gram summands `C_kᵀC_k = R_kᵀR_k` and opens only the
//! total `G = CᵀC`. The combined `R` is then `cholesky_upper(G)`, which by
//! the positive-diagonal convention equals the `R` that direct QR of the
//! pooled `C` would produce.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Computes the upper-triangular `U` with `UᵀU = A` for symmetric positive
/// definite `A`.
///
/// Errors with [`LinalgError::NotPositiveDefinite`] when a pivot is
/// non-positive (up to a relative tolerance), which for the scan means the
/// pooled permanent covariates are collinear.
pub fn cholesky_upper(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let scale = (0..n).map(|i| a.get(i, i).abs()).fold(0.0, f64::max);
    let tol = 1e-12 * scale.max(f64::MIN_POSITIVE);
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        // Diagonal pivot.
        let mut d = a.get(i, i);
        for k in 0..i {
            let uki = u.get(k, i);
            d -= uki * uki;
        }
        if d <= tol {
            return Err(LinalgError::NotPositiveDefinite {
                pivot_index: i,
                pivot: d,
            });
        }
        let uii = d.sqrt();
        u.set(i, i, uii);
        // Row i of U to the right of the diagonal.
        for j in i + 1..n {
            let mut s = a.get(i, j);
            for k in 0..i {
                s -= u.get(k, i) * u.get(k, j);
            }
            u.set(i, j, s / uii);
        }
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gemm, gemm_at_b};

    #[test]
    fn factor_reconstructs_spd_matrix() {
        // A = BᵀB + I is SPD for any B.
        let b = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f64).sin());
        let mut a = gemm_at_b(&b, &b).unwrap();
        for i in 0..3 {
            let v = a.get(i, i);
            a.set(i, i, v + 1.0);
        }
        let u = cholesky_upper(&a).unwrap();
        let utu = gemm(&u.transpose(), &u).unwrap();
        assert!(utu.max_abs_diff(&a).unwrap() < 1e-12);
        // Upper triangular with positive diagonal.
        for i in 0..3 {
            assert!(u.get(i, i) > 0.0);
            for j in 0..i {
                assert_eq!(u.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn identity_factor() {
        let u = cholesky_upper(&Matrix::identity(4)).unwrap();
        assert_eq!(u, Matrix::identity(4));
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]).unwrap();
        let u = cholesky_upper(&a).unwrap();
        assert!((u.get(0, 0) - 2.0).abs() < 1e-15);
        assert!((u.get(0, 1) - 1.0).abs() < 1e-15);
        assert!((u.get(1, 1) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            cholesky_upper(&a),
            Err(LinalgError::NotPositiveDefinite { pivot_index: 1, .. })
        ));
    }

    #[test]
    fn semidefinite_rejected() {
        // Rank-1 Gram matrix of collinear covariates.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(cholesky_upper(&a).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        assert!(matches!(
            cholesky_upper(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
