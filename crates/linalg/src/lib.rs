//! Dense linear algebra substrate for the DASH secure multi-party linear
//! regression suite.
//!
//! The association-scan algorithm needs a small but carefully chosen set of
//! kernels, all of which are implemented here from scratch (no BLAS/LAPACK):
//!
//! - a column-major [`Matrix`] type whose columns are contiguous slices, so
//!   that streaming over the M transient covariates `X_m` is cache-friendly
//!   ([`matrix`]);
//! - level-1/2/3 kernels: dots, axpy, `Aᵀv`, `Av`, and a blocked `AᵀB`
//!   ([`ops`]);
//! - thin Householder QR with a deterministic positive-diagonal sign
//!   convention ([`qr`]), the backbone of both the plaintext scan and the
//!   per-party `R_k` factors of the secure protocol;
//! - TSQR tree reduction over row blocks ([`tsqr`]), the "tall and skinny QR"
//!   of the paper's footnote 2 and the combine step of its multi-party QR;
//! - triangular solves and inversion ([`tri`]) for `Q_k = C_k R⁻¹`;
//! - Cholesky ([`chol`]) for the aggregate-only secure mode where only
//!   `G = CᵀC` is opened and `R = chol(G)`;
//! - column centering utilities ([`center`]) implementing the paper's
//!   intercept-as-centering observation.
//!
//! All fallible operations return [`LinalgError`]; nothing panics on bad
//! shapes in release builds.
//!
//! # Example: the multi-party QR identity
//!
//! ```
//! use dash_linalg::{qr_r_factor, tsqr_r, Matrix};
//!
//! // Two parties' covariate blocks…
//! let c1 = Matrix::from_rows(&[&[1.0, 0.5], &[1.0, -0.5], &[1.0, 2.0]]).unwrap();
//! let c2 = Matrix::from_rows(&[&[1.0, 1.5], &[1.0, 0.0]]).unwrap();
//! // …have the same combined R factor whether pooled or tree-reduced:
//! let pooled = Matrix::vstack(&[&c1, &c2]).unwrap();
//! let direct = qr_r_factor(&pooled).unwrap();
//! let tree = tsqr_r(&[c1, c2]).unwrap();
//! assert!(tree.max_abs_diff(&direct).unwrap() < 1e-12);
//! ```

pub mod center;
pub mod chol;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod ops;
pub mod qr;
pub mod tri;
pub mod tsqr;

pub use center::{center_columns, center_vector, column_means};
pub use chol::cholesky_upper;
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use ops::{axpy, dot, frobenius_norm, gemm_at_b, gemv, gemv_t, self_dot};
pub use qr::{qr_r_factor, qr_thin, ThinQr};
pub use tri::{invert_upper, solve_lower, solve_upper};
pub use tsqr::{combine_r_factors, tsqr_r};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
