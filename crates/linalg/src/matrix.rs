//! Column-major dense matrix.
//!
//! The association scan streams over the columns of the N×M transient
//! covariate matrix `X`, computing `X_m · y`, `X_m · X_m` and `Qᵀ X_m` for
//! each variant `m`. Column-major storage makes each `X_m` a contiguous
//! `&[f64]`, which keeps the hot loops branch-free and vectorizable and lets
//! the parallel scan hand disjoint column blocks to worker threads without
//! copying.

use crate::error::LinalgError;

/// A dense, column-major, `f64` matrix.
///
/// Element `(r, c)` lives at `data[r + c * rows]`. Columns are contiguous;
/// use [`Matrix::col`] to borrow one as a slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            for r in 0..rows {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_column_major(
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_column_major",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row-major data (convenient for literals in
    /// tests), transposing into the internal column-major layout.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::EmptyInput { op: "from_rows" });
        }
        let c = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, c),
                    rhs: (i, row.len()),
                });
            }
        }
        Ok(Matrix::from_fn(r, c, |i, j| rows[i][j]))
    }

    /// Builds a matrix whose columns are the given slices (all the same
    /// length).
    pub fn from_cols(cols: &[&[f64]]) -> Result<Self, LinalgError> {
        let c = cols.len();
        if c == 0 {
            return Err(LinalgError::EmptyInput { op: "from_cols" });
        }
        let r = cols[0].len();
        let mut data = Vec::with_capacity(r * c);
        for (j, col) in cols.iter().enumerate() {
            if col.len() != r {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_cols",
                    lhs: (r, 1),
                    rhs: (col.len(), j),
                });
            }
            data.extend_from_slice(col);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor; panics on out-of-range indices (debug-friendly —
    /// the scan kernels use slices, not this).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r + c * self.rows]
    }

    /// Element setter; panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r + c * self.rows] = v;
    }

    /// Borrows column `c` as a contiguous slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "column {c} out of range");
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrows column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.cols, "column {c} out of range");
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Borrows two distinct columns mutably at once (used by in-place QR).
    pub fn two_cols_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "columns must be distinct");
        assert!(a < self.cols && b < self.cols, "column out of range");
        let n = self.rows;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * n);
            (&mut lo[a * n..(a + 1) * n], &mut hi[..n])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * n);
            let col_b = &mut lo[b * n..(b + 1) * n];
            (&mut hi[..n], col_b)
        }
    }

    /// The full column-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The full column-major backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Copies row `r` into a new vector.
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row {r} out of range");
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// Returns a new matrix containing the given half-open row range.
    pub fn row_block(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        Matrix::from_fn(end - start, self.cols, |i, j| self.get(start + i, j))
    }

    /// Returns a new matrix containing the given half-open column range.
    ///
    /// Columns are contiguous, so this is a single memcpy.
    pub fn col_block(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column range out of bounds"
        );
        Matrix {
            rows: self.rows,
            cols: end - start,
            data: self.data[start * self.rows..end * self.rows].to_vec(),
        }
    }

    /// Vertically stacks matrices (they must agree on column count).
    pub fn vstack(blocks: &[&Matrix]) -> Result<Matrix, LinalgError> {
        if blocks.is_empty() {
            return Err(LinalgError::EmptyInput { op: "vstack" });
        }
        let cols = blocks[0].cols;
        for b in blocks {
            if b.cols != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "vstack",
                    lhs: (blocks[0].rows, cols),
                    rhs: b.shape(),
                });
            }
        }
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for b in blocks {
            for c in 0..cols {
                out.col_mut(c)[offset..offset + b.rows].copy_from_slice(b.col(c));
            }
            offset += b.rows;
        }
        Ok(out)
    }

    /// Maximum absolute element-wise difference to another matrix of the
    /// same shape; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(m.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(m.col(1), &[2.0, 4.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn from_cols_roundtrip() {
        let m = Matrix::from_cols(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.row(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_column_major_validates_len() {
        assert!(Matrix::from_column_major(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_column_major(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn ragged_from_rows_rejected() {
        let r0: &[f64] = &[1.0, 2.0];
        let r1: &[f64] = &[3.0];
        assert!(Matrix::from_rows(&[r0, r1]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn blocks_and_vstack_roundtrip() {
        let m = Matrix::from_fn(5, 2, |r, c| (r + 10 * c) as f64);
        let top = m.row_block(0, 2);
        let bot = m.row_block(2, 5);
        let back = Matrix::vstack(&[&top, &bot]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn col_block_is_contiguous_copy() {
        let m = Matrix::from_fn(3, 4, |r, c| (r + 10 * c) as f64);
        let b = m.col_block(1, 3);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(b.col(0), m.col(1));
        assert_eq!(b.col(1), m.col(2));
    }

    #[test]
    fn vstack_shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(Matrix::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn two_cols_mut_both_orders() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (r + 10 * c) as f64);
        {
            let (a, b) = m.two_cols_mut(0, 2);
            assert_eq!(a, &[0.0, 1.0]);
            assert_eq!(b, &[20.0, 21.0]);
            a[0] = -1.0;
            b[1] = -2.0;
        }
        {
            let (b, a) = m.two_cols_mut(2, 0);
            assert_eq!(a, &[-1.0, 1.0]);
            assert_eq!(b, &[20.0, -2.0]);
        }
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(a.max_abs_diff(&b).is_none());
        let mut c = Matrix::zeros(2, 2);
        c.set(1, 1, 0.5);
        assert_eq!(a.max_abs_diff(&c), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
