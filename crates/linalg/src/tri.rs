//! Triangular solves and inversion.
//!
//! The multi-party protocol needs exactly one triangular operation: each
//! party privately forms `Q_k = C_k R⁻¹` from the combined k×k factor `R`.
//! `R` is tiny (K ≤ ~24 in GWAS practice) so a dense inverse is cheap and
//! lets `C_k R⁻¹` be computed as one pass over `C_k`.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Relative pivot threshold below which a triangular matrix is reported
/// singular. Scaled by the largest diagonal magnitude.
const PIVOT_RTOL: f64 = 1e-12;

fn check_square(a: &Matrix) -> Result<usize, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    Ok(a.rows())
}

fn max_diag(a: &Matrix) -> f64 {
    (0..a.rows()).map(|i| a.get(i, i).abs()).fold(0.0, f64::max)
}

/// Solves `U x = b` for upper-triangular `U` by back substitution.
#[allow(clippy::needless_range_loop)] // index loops mirror the math
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = check_square(u)?;
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_upper",
            lhs: u.shape(),
            rhs: (b.len(), 1),
        });
    }
    let scale = max_diag(u);
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= u.get(i, j) * x[j];
        }
        let p = u.get(i, i);
        if p.abs() <= PIVOT_RTOL * scale || p == 0.0 {
            return Err(LinalgError::Singular {
                pivot_index: i,
                pivot: p,
            });
        }
        x[i] = s / p;
    }
    Ok(x)
}

/// Solves `L x = b` for lower-triangular `L` by forward substitution.
#[allow(clippy::needless_range_loop)] // index loops mirror the math
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = check_square(l)?;
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let scale = max_diag(l);
    let mut x = b.to_vec();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= l.get(i, j) * x[j];
        }
        let p = l.get(i, i);
        if p.abs() <= PIVOT_RTOL * scale || p == 0.0 {
            return Err(LinalgError::Singular {
                pivot_index: i,
                pivot: p,
            });
        }
        x[i] = s / p;
    }
    Ok(x)
}

/// Inverts an upper-triangular matrix.
///
/// Column `j` of the inverse solves `U x = e_j`; the result is again upper
/// triangular. Errors with [`LinalgError::Singular`] on a (near-)zero
/// diagonal — for the scan this means the permanent covariates are
/// collinear and the model is unidentifiable.
#[allow(clippy::needless_range_loop)] // index loops mirror the math
pub fn invert_upper(u: &Matrix) -> Result<Matrix, LinalgError> {
    let n = check_square(u)?;
    let scale = max_diag(u);
    let mut inv = Matrix::zeros(n, n);
    for i in 0..n {
        let p = u.get(i, i);
        if p.abs() <= PIVOT_RTOL * scale || p == 0.0 {
            return Err(LinalgError::Singular {
                pivot_index: i,
                pivot: p,
            });
        }
    }
    for j in 0..n {
        // Back substitution for e_j, exploiting that entries below j are 0.
        let col = inv.col_mut(j);
        col[j] = 1.0 / u.get(j, j);
        for i in (0..j).rev() {
            let mut s = 0.0;
            for l in i + 1..=j {
                s -= u.get(i, l) * col[l];
            }
            col[i] = s / u.get(i, i);
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm;

    fn upper(vals: &[&[f64]]) -> Matrix {
        Matrix::from_rows(vals).unwrap()
    }

    #[test]
    fn solve_upper_known() {
        let u = upper(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let x = solve_upper(&u, &[4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn solve_lower_known() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 4.0]]).unwrap();
        let x = solve_lower(&l, &[4.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 1.75]);
    }

    #[test]
    fn invert_upper_roundtrip() {
        let u = upper(&[&[3.0, 1.0, 2.0], &[0.0, 2.0, -1.0], &[0.0, 0.0, 5.0]]);
        let inv = invert_upper(&u).unwrap();
        let prod = gemm(&u, &inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-14);
        // Inverse of upper triangular stays upper triangular.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(inv.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn singular_detected() {
        let u = upper(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(matches!(
            invert_upper(&u),
            Err(LinalgError::Singular { pivot_index: 1, .. })
        ));
        assert!(solve_upper(&u, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn near_singular_relative_to_scale_detected() {
        // Diagonal entry 14 orders of magnitude below the largest one.
        let u = upper(&[&[1e8, 0.0], &[0.0, 1e-7]]);
        assert!(invert_upper(&u).is_err());
    }

    #[test]
    fn shape_errors() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            invert_upper(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
        let u = Matrix::identity(3);
        assert!(solve_upper(&u, &[1.0, 2.0]).is_err());
        assert!(solve_lower(&u, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_inverse_is_identity() {
        let i = Matrix::identity(4);
        assert!(invert_upper(&i).unwrap().max_abs_diff(&i).unwrap().eq(&0.0));
    }
}
